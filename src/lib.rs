//! # surrogate-parenthood
//!
//! Facade crate for the workspace reproducing *Surrogate Parenthood:
//! Protected and Informative Graphs* (Blaustein et al., PVLDB 4(8), 2011).
//!
//! * [`surrogate_core`] — the paper's contribution: protected accounts,
//!   surrogate nodes/edges, utility and opacity measures;
//! * [`plus_store`] — the PLUS-like provenance store substrate;
//! * [`graphgen`] — evaluation workload generators.
//!
//! See the `examples/` directory for runnable walkthroughs and the
//! `surrogate-bench` crate for the experiment harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use graphgen;
pub use plus_store;
pub use surrogate_core;

/// The most used types across the workspace.
pub mod prelude {
    pub use surrogate_core::prelude::*;
}
