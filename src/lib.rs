//! # surrogate-parenthood
//!
//! Facade crate for the workspace reproducing *Surrogate Parenthood:
//! Protected and Informative Graphs* (Blaustein et al., PVLDB 4(8), 2011).
//!
//! * [`surrogate_core`] — the paper's contribution: protected accounts,
//!   surrogate nodes/edges, utility and opacity measures;
//! * [`plus_store`] — the PLUS-like provenance store substrate;
//! * [`graphgen`] — evaluation workload generators.
//!
//! See the `examples/` directory for runnable walkthroughs and the
//! `surrogate-bench` crate for the experiment harness.
//!
//! ## Quick start
//!
//! Ingest provenance into the PLUS-like store, state the protection
//! policy, and serve a protected-but-informative account (paper §3/§5):
//!
//! ```
//! use plus_store::{EdgeKind, NodeKind, PolicyStatement, Store};
//! use surrogate_parenthood::prelude::*;
//!
//! # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
//! // A chain lattice: "Trusted" (index 1) dominates "Public" (index 0).
//! let store = Store::new(&["Public", "Trusted"], &[(1, 0)])?;
//! let public = store.predicate("Public").unwrap();
//! let trusted = store.predicate("Trusted").unwrap();
//!
//! // A tiny lineage: informant → analysis → report, where the
//! // informant's identity is Trusted-only.
//! let informant = store.append_node("informant", NodeKind::Agent, Features::new(), trusted);
//! let analysis = store.append_node("analysis", NodeKind::Process, Features::new(), public);
//! let report = store.append_node("report", NodeKind::Data, Features::new(), public);
//! store.append_edge(informant, analysis, EdgeKind::InputTo)?;
//! store.append_edge(analysis, report, EdgeKind::GeneratedBy)?;
//!
//! // Policy: show the public a coarse surrogate instead of the informant.
//! store.apply_policy(PolicyStatement::MarkNode {
//!     node: informant,
//!     predicate: Some(public),
//!     marking: Marking::Surrogate,
//! })?;
//! store.apply_policy(PolicyStatement::AddSurrogate {
//!     node: informant,
//!     label: "a trusted source".into(),
//!     features: Features::new(),
//!     lowest: public,
//!     info_score: 0.3,
//! })?;
//!
//! // Materialize and generate the public's maximally informative account.
//! let materialized = store.materialize();
//! let account = generate(&materialized.context(), public)?;
//! assert_eq!(account.graph().node_count(), 3);
//! assert!(path_utility(&materialized.graph, &account) > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use graphgen;
pub use plus_store;
pub use surrogate_core;

/// The most used types across the workspace.
pub mod prelude {
    pub use surrogate_core::prelude::*;
}
