//! # surrogate-parenthood
//!
//! Facade crate for the workspace reproducing *Surrogate Parenthood:
//! Protected and Informative Graphs* (Blaustein et al., PVLDB 4(8), 2011).
//!
//! * [`surrogate_core`] — the paper's contribution: protected accounts,
//!   surrogate nodes/edges, utility and opacity measures, and the
//!   pluggable [`ProtectionStrategy`] trait;
//! * [`plus_store`] — the PLUS-like provenance store substrate and the
//!   concurrent, epoch-versioned [`AccountService`] serving layer;
//! * [`server`] — the network edge: a std-only threaded TCP server that
//!   exposes *only* the protected query surface over a checksummed
//!   binary protocol, the blocking [`Client`]/[`ClientPool`]
//!   (`spgraph serve` / `spgraph query --remote`), and WAL-shipping
//!   [`Replica`]s that scale reads horizontally
//!   (`spgraph serve --replicate-from`);
//! * [`graphgen`] — evaluation workload generators.
//!
//! See the `examples/` directory for runnable walkthroughs and the
//! `surrogate-bench` crate for the experiment harness.
//!
//! ## Quick start
//!
//! Ingest provenance into the PLUS-like store, state the protection
//! policy, and stand up an [`AccountService`] — the one concurrent,
//! epoch-versioned surface that materializes the graph, caches each
//! consumer's protected account per `(epoch, predicate, strategy)`, and
//! answers batched lineage queries (paper §3/§5/§6.4):
//!
//! ```
//! use std::sync::Arc;
//!
//! use plus_store::{
//!     AccountService, Direction, EdgeKind, NodeKind, PolicyStatement, QueryRequest, Store,
//! };
//! use surrogate_parenthood::prelude::*;
//!
//! # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
//! // A chain lattice: "Trusted" (index 1) dominates "Public" (index 0).
//! let store = Arc::new(Store::new(&["Public", "Trusted"], &[(1, 0)])?);
//! let public = store.predicate("Public").unwrap();
//! let trusted = store.predicate("Trusted").unwrap();
//!
//! // A tiny lineage: informant → analysis → report, where the
//! // informant's identity is Trusted-only.
//! let informant = store.append_node("informant", NodeKind::Agent, Features::new(), trusted);
//! let analysis = store.append_node("analysis", NodeKind::Process, Features::new(), public);
//! let report = store.append_node("report", NodeKind::Data, Features::new(), public);
//! store.append_edge(informant, analysis, EdgeKind::InputTo)?;
//! store.append_edge(analysis, report, EdgeKind::GeneratedBy)?;
//!
//! // Policy: show the public a coarse surrogate instead of the informant.
//! store.apply_policy(PolicyStatement::AddSurrogate {
//!     node: informant,
//!     label: "a trusted source".into(),
//!     features: Features::new(),
//!     lowest: public,
//!     info_score: 0.3,
//! })?;
//!
//! // Serve. The service owns materialization and caching; its epoch
//! // tracks the store, so policy edits invalidate accounts automatically.
//! let service = AccountService::new(store.clone());
//! let consumer = Consumer::public(&service.snapshot().lattice);
//!
//! // One call, many lineage queries, one consistent epoch.
//! let responses = service.query_batch(
//!     &consumer,
//!     &[
//!         QueryRequest::new(report, Direction::Backward, u32::MAX, Strategy::Surrogate),
//!         QueryRequest::new(analysis, Direction::Forward, u32::MAX, Strategy::Surrogate),
//!     ],
//! )?;
//! assert_eq!(responses[0].epoch, store.version());
//! assert_eq!(responses[0].rows[1].label, "a trusted source");
//! assert!(responses[0].rows[1].surrogate);
//!
//! // The cached account is also directly available for measures.
//! let account = service.get_account(&consumer, &Strategy::Surrogate)?;
//! let snapshot = service.snapshot();
//! assert_eq!(account.graph().node_count(), 3);
//! assert!(path_utility(&snapshot.graph, &account) > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Durability
//!
//! For crash safety, create the store durably: every append is then
//! written to a segmented, checksummed write-ahead log *before* it is
//! applied, and reopening replays the log (truncating any torn tail)
//! so the service resumes at exactly the epoch the log ends at:
//!
//! ```
//! use plus_store::{AccountService, NodeKind, Store};
//! use surrogate_parenthood::prelude::*;
//!
//! # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
//! # let dir = std::env::temp_dir().join(format!("sp-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let store = Store::create_durable(&dir, &["Public"], &[])?;
//! let public = store.predicate("Public").unwrap();
//! store.append_node("report", NodeKind::Data, Features::new(), public);
//! store.checkpoint()?; // fold the log into a snapshot, prune segments
//! drop(store); // …or crash: the log has every acknowledged append
//!
//! let service = AccountService::open_durable(&dir)?; // recover + serve
//! assert_eq!(service.epoch(), 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```
//!
//! See the `plus_store` crate docs (and its `wal` module) for the frame
//! format, recovery protocol, and checkpoint policy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use graphgen;
pub use plus_store;
pub use server;
pub use surrogate_core;

pub use plus_store::{AccountService, QueryRequest, QueryResponse, Session, Snapshot};
pub use server::{Client, ClientPool, Replica, Server};
pub use surrogate_core::strategy::ProtectionStrategy;

/// The most used types across the workspace.
pub mod prelude {
    pub use plus_store::{AccountService, QueryRequest, QueryResponse, Session, Snapshot};
    pub use server::{Client, ClientPool, Replica, Server};
    pub use surrogate_core::prelude::*;
}
