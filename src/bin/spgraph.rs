//! `spgraph` — inspect, protect, query, measure, and administer PLUS
//! stores: single snapshot files *or* durable write-ahead-logged store
//! directories.
//!
//! ```text
//! spgraph demo <snapshot>                      write the paper's Figure 1 example
//! spgraph demo <dir> --durable                 the same example as a durable store
//! spgraph info <store>                         counts, lattice, high-water set, epoch
//! spgraph protect <store> -p <predicate> [--strategy surrogate|hide|naive]
//!                                  [--dot <file>]   summarize/export an account
//! spgraph query <store> -p <predicate> --root <id> [--direction up|down|both]
//!                                  [--depth <n>] [--strategy <s>]   protected lineage
//! spgraph measure <store> -p <predicate> [--threshold <t>]
//!                                              utilities, opacity, risk report
//! spgraph checkpoint <dir>                     snapshot the log, prune segments
//! spgraph recover <dir> [--verify]             recover; report what was replayed,
//!                                              truncated, or pruned
//! spgraph serve <store> [--addr a:p] [--threads n] [--allow-checkpoint]
//!               [--allow-replication] [--churn <ops/s>] [--max-conns n]
//!               [--rate-limit req/s] [--metrics-addr a:p]
//!                                              serve the protected query
//!                                              surface over TCP (trust boundary)
//!                                              with admission control and an
//!                                              optional Prometheus endpoint
//! spgraph serve <dir> --replicate-from <addr> [--addr a:p] [--threads n]
//!               [--allow-replication] [--churn <ops/s>]
//!                                              serve as a READ REPLICA: tail the
//!                                              primary's WAL into <dir> and serve
//!                                              the same queries at a lagging epoch
//!                                              (--churn arms a standby writer that
//!                                              activates on promotion)
//! spgraph promote <dir | addr>                 promote a replica to primary: bump
//!                                              the fencing term (live via its
//!                                              server, or offline on its directory)
//! spgraph replica-status <addr> [--wait] [--timeout <secs>]
//!                                              a server's replication status: role,
//!                                              epochs, lag, term, link health
//! spgraph serve <dir> --shard <i>/<n> [--peers spec] [--addr a:p] [...]
//!                                              serve as SHARD i of an n-way
//!                                              partitioned deployment: owns the ids
//!                                              ≡ i (mod n), accepts remote writes
//!                                              for them, refuses the rest with
//!                                              typed redirects (implies
//!                                              --allow-replication, which feeds
//!                                              the gather); a vacant <dir> is
//!                                              seeded with an empty Public store
//! spgraph serve <dir> --shard <i>/<n> --replicate-from <addr> [...]
//!                                              serve as shard i's standby: tail
//!                                              the shard primary's WAL, refuse
//!                                              writes with a redirect breadcrumb,
//!                                              flip to writable shard primary on
//!                                              `spgraph promote`
//! spgraph serve --gather --peers spec [--addr a:p] [...]
//!                                              serve cross-shard queries: follow
//!                                              every shard's feed, merge into one
//!                                              order-canonical graph, stamp each
//!                                              answer with the per-shard epoch
//!                                              vector; refuse (never truncate)
//!                                              while any shard feed is down; a
//!                                              spec entry's +replicas are the
//!                                              slot's failover candidates
//!
//! The --peers spec names the whole deployment, one comma-separated
//! entry per shard in shard order; each entry is the shard's primary
//! optionally followed by +-joined replicas:
//! `primary0+standby0,primary1+standby1,...`.
//! spgraph shard-status <addr>                  a server's shard topology and
//!                                              per-shard epochs
//! spgraph write <addr> --node <label> [-p <predicate>]
//! spgraph write <addr> --edge <from>,<to> [--kind <k>]
//!                                              one remote write (the server must
//!                                              allow it); mis-routed writes follow
//!                                              one WrongShard redirect
//! spgraph query --remote <addr> -p <predicate> --root <id> [...]
//!                                              the same lineage query, answered
//!                                              by a remote spgraph serve
//! ```
//!
//! `<store>` is a snapshot file or a durable store directory — directory
//! arguments are recovered via the write-ahead log before serving. All
//! commands route through the `AccountService` serving layer, the same
//! concurrent surface a deployment would put in front of the store;
//! `serve` binds that surface to a socket so the unprotected store never
//! leaves this process, and `query --remote` produces byte-identical
//! output to a local `query` against the same store state.
//! Argument parsing is deliberately dependency-free.

use std::process::ExitCode;
use std::sync::Arc;

use surrogate_parenthood::plus_store::{
    ingest, AccountService, Direction, IngestKinds, QueryRequest, Snapshot, Store,
};
use surrogate_parenthood::prelude::*;

/// CLI-level result: user-facing error strings.
type CliResult<T> = std::result::Result<T, String>;
use surrogate_parenthood::surrogate_core::dot::{account_to_dot, graph_to_dot};
use surrogate_parenthood::surrogate_core::hw::high_water_set;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  spgraph demo <snapshot | dir --durable>\n  spgraph info <store>\n  \
         spgraph protect <store> -p <predicate> [--strategy surrogate|hide|naive] [--dot <file>]\n  \
         spgraph query <store> -p <predicate> --root <id> [--direction up|down|both] [--depth <n>] [--strategy <s>]\n  \
         spgraph measure <store> -p <predicate> [--threshold <t>]\n  \
         spgraph checkpoint <dir>\n  spgraph recover <dir> [--verify]\n  \
         spgraph serve <store> [--addr <addr:port>] [--threads <n>] [--allow-checkpoint] [--allow-replication] [--churn <ops/s>]\n  \
         \u{20}             [--max-conns <n>] [--rate-limit <req/s>] [--metrics-addr <addr:port>]\n  \
         spgraph serve <dir> --replicate-from <addr:port> [--addr <addr:port>] [--threads <n>] [--allow-replication] [--churn <ops/s>]\n  \
         spgraph serve <dir> --shard <i>/<n> [--peers <primary[+replica...],...>] [--replicate-from <addr:port>] [--addr <addr:port>] [--threads <n>]\n  \
         spgraph serve --gather --peers <primary[+replica...],...> [--addr <addr:port>] [--threads <n>]\n  \
         spgraph promote <dir | addr:port>\n  \
         spgraph replica-status <addr:port> [--wait] [--timeout <secs>]\n  \
         spgraph shard-status <addr:port>\n  \
         spgraph write <addr:port> (--node <label> [-p <predicate>] | --edge <from>,<to> [--kind input-to|generated-by|triggered-by|related])\n  \
         spgraph query --remote <addr:port> -p <predicate> --root <id> [--direction up|down|both] [--depth <n>] [--strategy <s>]\n\
         <store> is a snapshot file or a durable (write-ahead-logged) store directory"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses the `--peers` deployment spec into a
/// [`Topology`](surrogate_parenthood::server::Topology); `None`
/// when the flag is absent. One comma-separated entry per shard, in
/// shard order; each entry is the shard's primary optionally followed
/// by `+`-joined replica addresses (the shard's failover candidates):
/// `primary0+replica0a+replica0b,primary1,...`.
fn parse_peers(args: &[String]) -> CliResult<Option<surrogate_parenthood::server::Topology>> {
    let Some(raw) = flag_value(args, "--peers") else {
        return Ok(None);
    };
    surrogate_parenthood::server::Topology::parse(&raw)
        .map(Some)
        .map_err(|e| format!("bad --peers {raw:?}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let result = match command.as_str() {
        "demo" => cmd_demo(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "protect" => cmd_protect(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "measure" => cmd_measure(&args[1..]),
        "checkpoint" => cmd_checkpoint(&args[1..]),
        "recover" => cmd_recover(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "promote" => cmd_promote(&args[1..]),
        "replica-status" => cmd_replica_status(&args[1..]),
        "shard-status" => cmd_shard_status(&args[1..]),
        "write" => cmd_write(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Loads a snapshot file — or recovers a durable store directory,
/// read-only, so inspecting a store never mutates it (and is safe next
/// to a live writer) — and stands the serving layer up in front of it.
fn serve(args: &[String]) -> CliResult<(AccountService, String)> {
    let path = args.first().ok_or("missing store path")?;
    let store = if std::path::Path::new(path).is_dir() {
        Store::open_read_only(path).map_err(|e| format!("cannot load {path}: {e}"))?
    } else {
        Store::load(path).map_err(|e| format!("cannot load {path}: {e}"))?
    };
    Ok((AccountService::new(Arc::new(store)), path.clone()))
}

fn resolve_predicate(snapshot: &Snapshot, args: &[String]) -> CliResult<PrivilegeId> {
    let name = flag_value(args, "-p")
        .or_else(|| flag_value(args, "--predicate"))
        .ok_or("missing -p <predicate>")?;
    snapshot
        .lattice
        .by_name(&name)
        .ok_or_else(|| format!("unknown predicate {name:?}"))
}

fn resolve_strategy(args: &[String]) -> CliResult<Strategy> {
    match flag_value(args, "--strategy") {
        None => Ok(Strategy::Surrogate),
        Some(name) => Strategy::parse(&name).ok_or_else(|| format!("unknown strategy {name:?}")),
    }
}

/// Writes the paper's Figure 1 example (graph, lattice, scenario (d)
/// policy) as a snapshot — or, with `--durable`, as a durable store
/// directory whose appends are write-ahead logged.
fn cmd_demo(args: &[String]) -> CliResult<()> {
    let path = args.first().ok_or("missing snapshot path")?;
    let durable = args.iter().any(|a| a == "--durable");
    let fig = surrogate_parenthood::graphgen::Figure2::new(
        surrogate_parenthood::graphgen::Figure2Scenario::D,
    );
    let store = ingest(
        &fig.base.graph,
        &fig.base.lattice,
        &fig.markings,
        &fig.catalog,
        IngestKinds::default(),
    )
    .map_err(|e| e.to_string())?;
    if durable {
        store.save_durable(path).map_err(|e| e.to_string())?;
        // Opening attaches the write-ahead log, so the directory is
        // immediately ready for durable appends and `recover --verify`.
        Store::open(path).map_err(|e| e.to_string())?;
    } else {
        store.save(path).map_err(|e| e.to_string())?;
    }
    println!(
        "wrote the Figure 1/2(d) example to {path}: {} nodes, {} edges{}",
        store.node_count(),
        store.edge_count(),
        if durable { " (durable)" } else { "" }
    );
    println!("try: spgraph info {path}");
    println!("     spgraph protect {path} -p High-2");
    println!("     spgraph query {path} -p High-2 --root 7 --direction up");
    println!("     spgraph measure {path} -p High-2");
    if durable {
        println!("     spgraph checkpoint {path}");
        println!("     spgraph recover {path} --verify");
    }
    Ok(())
}

/// Folds the write-ahead log into a fresh snapshot and prunes what it
/// supersedes.
fn cmd_checkpoint(args: &[String]) -> CliResult<()> {
    let dir = args.first().ok_or("missing store directory")?;
    let store = Store::open(dir).map_err(|e| format!("cannot open {dir}: {e}"))?;
    let stats = store.checkpoint().map_err(|e| e.to_string())?;
    println!(
        "checkpointed {dir} at clock {}: {} snapshot bytes, pruned {} segment(s) and {} snapshot(s)",
        stats.clock, stats.snapshot_bytes, stats.pruned_segments, stats.pruned_snapshots
    );
    Ok(())
}

/// Recovers a durable store directory and reports what recovery found;
/// with `--verify`, additionally proves the recovered state is
/// self-consistent and servable.
fn cmd_recover(args: &[String]) -> CliResult<()> {
    let dir = args.first().ok_or("missing store directory")?;
    let verify = args.iter().any(|a| a == "--verify");
    let (store, report) = Store::open_reporting(dir, Default::default())
        .map_err(|e| format!("cannot recover {dir}: {e}"))?;

    match &report.snapshot {
        Some((path, clock)) => println!(
            "recovered {dir} from snapshot {} (clock {clock})",
            path.display()
        ),
        None => println!("recovered {dir}"),
    }
    for path in &report.corrupt_snapshots {
        println!("  skipped corrupt snapshot {}", path.display());
    }
    println!(
        "  replayed {} record(s) from {} segment(s); clock {}",
        report.records_replayed, report.segments_scanned, report.clock
    );
    if let Some(t) = &report.truncated {
        println!(
            "  truncated {} at byte {} ({} byte(s) dropped): {}",
            t.segment.display(),
            t.offset,
            t.dropped_bytes,
            t.reason
        );
    }
    for path in &report.orphaned_segments {
        println!("  removed unreachable segment {}", path.display());
    }

    if verify {
        // Clock arithmetic: recovered clock = snapshot clock + replay.
        let snapshot_clock = report.snapshot.as_ref().map_or(0, |&(_, c)| c);
        if store.clock() != snapshot_clock + report.records_replayed {
            return Err(format!(
                "verify failed: clock {} != snapshot {} + {} replayed",
                store.clock(),
                snapshot_clock,
                report.records_replayed
            ));
        }
        // The recovered state re-encodes to a decodable, stable snapshot.
        let bytes = store.to_bytes();
        let reencoded = Store::from_bytes(&bytes)
            .map_err(|e| format!("verify failed: recovered state does not re-encode: {e}"))?;
        if reencoded.to_bytes() != bytes {
            return Err("verify failed: re-encoding is not stable".to_string());
        }
        // The recovered store materializes and serves a protected account
        // at the recovered epoch.
        let service = AccountService::new(Arc::new(store));
        let snapshot = service.snapshot();
        if snapshot.epoch() != reencoded.clock() {
            return Err("verify failed: serving epoch diverges from recovered clock".to_string());
        }
        let consumer = Consumer::public(&snapshot.lattice);
        let account = service
            .get_account(&consumer, &Strategy::Surrogate)
            .map_err(|e| format!("verify failed: cannot serve a public account: {e}"))?;
        println!(
            "verify: ok — epoch {}, {} node(s) materialized, {} visible to Public",
            snapshot.epoch(),
            snapshot.graph.node_count(),
            account.graph().node_count()
        );
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> CliResult<()> {
    let (service, path) = serve(args)?;
    let snapshot = service.snapshot();
    let store = service.store().expect("serve() fronts a live store");
    println!("snapshot {path}");
    println!(
        "  {} node records, {} edge records, {} policy statements (epoch {})",
        store.node_count(),
        store.edge_count(),
        store.policy_count(),
        snapshot.epoch()
    );
    println!("  predicates:");
    for p in snapshot.lattice.ids() {
        let dominated: Vec<&str> = snapshot
            .lattice
            .ids()
            .filter(|&q| q != p && snapshot.lattice.dominates(p, q))
            .map(|q| snapshot.lattice.name(q))
            .collect();
        println!(
            "    {} {}",
            snapshot.lattice.name(p),
            if dominated.is_empty() {
                String::new()
            } else {
                format!("(dominates {})", dominated.join(", "))
            }
        );
    }
    let hw = high_water_set(&snapshot.graph, &snapshot.lattice);
    let names: Vec<&str> = hw.iter().map(|&p| snapshot.lattice.name(p)).collect();
    println!("  high-water set: {{{}}}", names.join(", "));
    println!(
        "  connected: {}, acyclic: {}",
        snapshot.graph.is_connected(),
        snapshot.graph.is_acyclic()
    );
    println!(
        "  strategies registered: {}",
        service.strategy_names().join(", ")
    );
    Ok(())
}

fn cmd_protect(args: &[String]) -> CliResult<()> {
    let (service, _) = serve(args)?;
    let snapshot = service.snapshot();
    let predicate = resolve_predicate(&snapshot, args)?;
    let strategy = resolve_strategy(args)?;
    let account = service
        .protect(&[predicate], &strategy)
        .map_err(|e| e.to_string())?;
    println!(
        "protected account for {:?} ({strategy}), epoch {}:",
        snapshot.lattice.name(predicate),
        snapshot.epoch()
    );
    println!(
        "  {} of {} nodes visible ({} surrogate)",
        account.graph().node_count(),
        snapshot.graph.node_count(),
        account.surrogate_node_count()
    );
    println!(
        "  {} edges ({} surrogate)",
        account.graph().edge_count(),
        account.surrogate_edge_count()
    );
    println!(
        "  path utility {:.3}, node utility {:.3}",
        path_utility(&snapshot.graph, &account),
        node_utility(&snapshot.graph, &account)
    );
    if let Some(dot_path) = flag_value(args, "--dot") {
        std::fs::write(&dot_path, account_to_dot(&account, "protected account"))
            .map_err(|e| e.to_string())?;
        println!("  DOT written to {dot_path}");
    }
    if let Some(dot_path) = flag_value(args, "--dot-original") {
        std::fs::write(&dot_path, graph_to_dot(&snapshot.graph, "original"))
            .map_err(|e| e.to_string())?;
        println!("  original DOT written to {dot_path}");
    }
    Ok(())
}

/// The query flags shared by the local and remote paths: root,
/// direction, depth bound, strategy.
fn parse_query_shape(args: &[String]) -> CliResult<(u32, Direction, u32, Strategy)> {
    let root: u32 = flag_value(args, "--root")
        .ok_or("missing --root <record id>")?
        .parse()
        .map_err(|_| "bad --root: expected a record index".to_string())?;
    let direction = match flag_value(args, "--direction").as_deref() {
        None | Some("up") | Some("upstream") => Direction::Backward,
        Some("down") | Some("downstream") => Direction::Forward,
        Some("both") => Direction::Both,
        Some(other) => return Err(format!("unknown direction {other:?}")),
    };
    let max_depth: u32 = flag_value(args, "--depth")
        .map(|d| d.parse().map_err(|_| format!("bad depth {d:?}")))
        .transpose()?
        .unwrap_or(u32::MAX);
    let strategy = resolve_strategy(args)?;
    Ok((root, direction, max_depth, strategy))
}

/// Renders a lineage answer — one shared renderer, so a remote query is
/// byte-identical to a local one against the same store state.
fn print_lineage(
    root: u32,
    predicate_name: &str,
    strategy: Strategy,
    response: &surrogate_parenthood::plus_store::QueryResponse,
) {
    println!(
        "lineage of record {root} for {predicate_name:?} ({strategy}), epoch {}:",
        response.epoch
    );
    if response.rows.is_empty() {
        println!("  (root invisible to this consumer, or nothing reachable)");
    }
    for row in &response.rows {
        println!(
            "  depth {} | record {} | {}{}",
            row.depth,
            row.record.0,
            row.label,
            if row.surrogate { "  [surrogate]" } else { "" }
        );
    }
}

/// Protected lineage through the batch query API: what a consumer holding
/// the predicate actually sees upstream/downstream of a record. With
/// `--remote <addr>`, the same question is answered by an `spgraph serve`
/// across the wire instead of a locally opened store.
fn cmd_query(args: &[String]) -> CliResult<()> {
    if let Some(addr) = flag_value(args, "--remote") {
        return cmd_query_remote(&addr, args);
    }
    let (service, _) = serve(args)?;
    let snapshot = service.snapshot();
    let predicate = resolve_predicate(&snapshot, args)?;
    let (root, direction, max_depth, strategy) = parse_query_shape(args)?;

    let consumer = Consumer::new("spgraph", &snapshot.lattice, &[predicate]);
    let request = QueryRequest::new(
        surrogate_parenthood::plus_store::RecordId(root),
        direction,
        max_depth,
        strategy,
    )
    .with_predicate(predicate);
    let response = service
        .query(&consumer, &request)
        .map_err(|e| e.to_string())?;
    print_lineage(root, snapshot.lattice.name(predicate), strategy, &response);
    Ok(())
}

/// The remote arm of `query`: connect to an `spgraph serve`, claim the
/// predicate by name, resolve it against the handshake lattice, and
/// render through the same printer as the local arm.
fn cmd_query_remote(addr: &str, args: &[String]) -> CliResult<()> {
    let name = flag_value(args, "-p")
        .or_else(|| flag_value(args, "--predicate"))
        .ok_or("missing -p <predicate>")?;
    let (root, direction, max_depth, strategy) = parse_query_shape(args)?;
    let mut client = surrogate_parenthood::Client::connect(addr, "spgraph", &[name.as_str()])
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    let predicate = client
        .predicate(&name)
        .ok_or_else(|| format!("unknown predicate {name:?}"))?;
    let request = QueryRequest::new(
        surrogate_parenthood::plus_store::RecordId(root),
        direction,
        max_depth,
        strategy,
    )
    .with_predicate(predicate);
    let response = client.query(&request).map_err(|e| e.to_string())?;
    print_lineage(root, &name, strategy, &response);
    Ok(())
}

/// Binds the protected query surface to a TCP socket: the trust
/// boundary. The unprotected store stays in this process; remote
/// consumers only ever receive protected `QueryResponse` rows.
///
/// With `--replicate-from`, this process is a **read replica** instead:
/// it tails the named primary's write-ahead log into its own durable
/// directory and re-serves the same queries at a coherent (possibly
/// lagging) epoch.
fn cmd_serve(args: &[String]) -> CliResult<()> {
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7654".to_string());
    let threads: Option<usize> = flag_value(args, "--threads")
        .map(|t| t.parse().map_err(|_| format!("bad --threads {t:?}")))
        .transpose()?;
    let mut config = surrogate_parenthood::server::ServerConfig::default();
    if let Some(threads) = threads {
        config.threads = threads.max(1);
    }
    if let Some(cap) = flag_value(args, "--max-conns") {
        config.max_conns = cap
            .parse::<usize>()
            .map_err(|_| format!("bad --max-conns {cap:?}"))?
            .max(1);
    }
    if let Some(rate) = flag_value(args, "--rate-limit") {
        let rate: u64 = rate
            .parse()
            .map_err(|_| format!("bad --rate-limit {rate:?}"))?;
        config.rate_limit = (rate > 0).then_some(rate);
    }
    if let Some(metrics) = flag_value(args, "--metrics-addr") {
        config.metrics_addr = Some(
            metrics
                .parse()
                .map_err(|_| format!("bad --metrics-addr {metrics:?}"))?,
        );
    }
    // Idle connections cost a file descriptor each; ask the kernel for
    // enough headroom to actually reach the configured cap. Best effort:
    // a refusal leaves the default limit, it does not stop the server.
    let fd_limit =
        surrogate_parenthood::server::raise_nofile_limit(config.max_conns as u64 + 512).ok();

    // A gather node owns no store: it follows every shard's replication
    // feed into an in-memory merged graph and serves cross-shard
    // queries over it.
    if args.iter().any(|a| a == "--gather") {
        let topology = parse_peers(args)?.ok_or(
            "--gather needs --peers <primary[+replica...],...> (one entry per shard, in shard order)",
        )?;
        let gather = Arc::new(
            surrogate_parenthood::server::Gather::start_topology(
                &topology,
                surrogate_parenthood::server::GatherConfig::default(),
            )
            .map_err(|e| format!("cannot start gather: {e}"))?,
        );
        let synced = gather.wait_synced(std::time::Duration::from_secs(10));
        config.role = surrogate_parenthood::server::Role::Gather {
            gather: gather.clone(),
        };
        let server = Server::bind(gather.service().clone(), &addr as &str, &config)
            .map_err(|e| format!("cannot bind {addr}: {e}"))?;
        println!(
            "gather over {} shard(s) [{topology}] serving on {} ({})",
            gather.shard_count(),
            server.local_addr(),
            if synced {
                "all feeds synced".to_string()
            } else {
                "still syncing; queries are refused until every feed connects".to_string()
            }
        );
        println!("read-only: writes are redirected to the owning shard");
        // Machine-parseable: scripts resolve `--addr :0` from this line.
        println!("listening on {}", server.local_addr());
        if let Some(metrics) = server.metrics_local_addr() {
            println!("metrics listening on {metrics}");
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        loop {
            std::thread::park();
        }
    }

    let path = args.first().ok_or("missing store path")?;

    // One shard node of a partitioned deployment: a durable store over
    // this shard's residue class, remote writes on, replication on (the
    // gather follows the shard feeds). With `--replicate-from` it is the
    // shard's standby instead: it tails the shard primary's WAL and
    // refuses writes (with a redirect breadcrumb) until promoted.
    if let Some(spec) = flag_value(args, "--shard") {
        let (index, count) = spec
            .split_once('/')
            .and_then(|(i, n)| Some((i.parse::<u32>().ok()?, n.parse::<u32>().ok()?)))
            .ok_or_else(|| format!("bad --shard {spec:?}: expected <i>/<n>, e.g. 0/2"))?;
        let partition = surrogate_parenthood::surrogate_core::shard::Partition::new(index, count)
            .ok_or_else(|| format!("bad --shard {spec:?}: need i < n and n > 0"))?;
        let topology = parse_peers(args)?.unwrap_or_default();
        // The gather follows this shard's WAL feed; without replication
        // the deployment has writes but no cross-shard reads.
        config.allow_replication = true;
        config.allow_remote_checkpoint = args.iter().any(|a| a == "--allow-checkpoint");

        // Shard replica: tail the shard primary, serve read-only,
        // flip to writable shard primary on `spgraph promote`.
        if let Some(primary) = flag_value(args, "--replicate-from") {
            let replica = surrogate_parenthood::Replica::start(&primary, path).map_err(|e| {
                format!("cannot replicate shard {index}/{count} from {primary}: {e}")
            })?;
            if replica.store().partition() != Some(partition) {
                return Err(format!(
                    "{primary} ships a store partitioned {:?}, not shard {index}/{count}: \
                     --replicate-from must name this shard's primary",
                    replica.store().partition()
                ));
            }
            let epoch = replica.epoch();
            config.role = surrogate_parenthood::server::Role::Shard {
                index,
                count,
                topology,
                feed: Some(replica.monitor()),
            };
            let server = Server::bind(replica.service().clone(), &addr as &str, &config)
                .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            println!(
                "shard {index}/{count} REPLICA of {primary} serving {path} on {} (epoch {epoch}, lag {})",
                server.local_addr(),
                replica.lag()
            );
            println!(
                "read-only until promoted (spgraph promote {}); writes are redirected to the primary",
                server.local_addr()
            );
            // Machine-parseable: scripts resolve `--addr :0` from this line.
            println!("listening on {}", server.local_addr());
            if let Some(metrics) = server.metrics_local_addr() {
                println!("metrics listening on {metrics}");
            }
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            loop {
                std::thread::park();
            }
        }

        let vacant = match std::fs::read_dir(path) {
            Ok(mut entries) => entries.next().is_none(),
            Err(_) => !std::path::Path::new(path).exists(),
        };
        let store = if vacant {
            Store::create_durable_partitioned(path, &["Public"], &[], Default::default(), partition)
                .map_err(|e| format!("cannot create shard store {path}: {e}"))?
        } else {
            let store = Store::open(path).map_err(|e| format!("cannot load {path}: {e}"))?;
            if store.partition() != Some(partition) {
                return Err(format!(
                    "{path} is partitioned {:?}, not shard {index}/{count}; a shard's slice is fixed at creation",
                    store.partition()
                ));
            }
            store
        };
        let service = Arc::new(AccountService::new(Arc::new(store)));
        let epoch = service.epoch();
        config.role = surrogate_parenthood::server::Role::Shard {
            index,
            count,
            topology,
            feed: None,
        };
        let server = Server::bind(service, &addr as &str, &config)
            .map_err(|e| format!("cannot bind {addr}: {e}"))?;
        println!(
            "shard {index}/{count} serving {path} on {} (epoch {epoch}, owns ids \u{2261} {index} mod {count})",
            server.local_addr()
        );
        println!(
            "remote writes on (trust-domain socket); point reads only — traversals go to a gather"
        );
        // Machine-parseable: scripts resolve `--addr :0` from this line.
        println!("listening on {}", server.local_addr());
        if let Some(metrics) = server.metrics_local_addr() {
            println!("metrics listening on {metrics}");
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        loop {
            std::thread::park();
        }
    }

    if let Some(primary) = flag_value(args, "--replicate-from") {
        if args.iter().any(|a| a == "--allow-checkpoint") {
            return Err("--allow-checkpoint applies to a primary, not a replica".to_string());
        }
        // Opting in up front lets a promoted replica feed rejoining
        // peers (and accept `spgraph promote`) without a restart.
        config.allow_replication = args.iter().any(|a| a == "--allow-replication");
        let standby_churn: Option<u64> = flag_value(args, "--churn")
            .map(|c| c.parse().map_err(|_| format!("bad --churn {c:?}")))
            .transpose()?;
        let replica = surrogate_parenthood::Replica::start(&primary, path)
            .map_err(|e| format!("cannot replicate from {primary}: {e}"))?;
        let epoch = replica.epoch();
        config.role = surrogate_parenthood::server::Role::Replica {
            feed: replica.monitor(),
        };
        let server = Server::bind(replica.service().clone(), &addr as &str, &config)
            .map_err(|e| format!("cannot bind {addr}: {e}"))?;
        println!(
            "replica of {primary} serving {path} on {} (epoch {epoch}, lag {}, {} worker threads)",
            server.local_addr(),
            replica.lag(),
            config.threads
        );
        println!("read-only: this replica applies the primary's log and serves queries");
        // A standby writer: inert while the node is a replica, it starts
        // appending the moment the node is promoted — so a failover
        // smoke can prove writes land on the new primary.
        if let Some(rate) = standby_churn.filter(|&r| r > 0) {
            let monitor = replica.monitor();
            let store = replica.store().clone();
            let pause = std::time::Duration::from_nanos(1_000_000_000 / rate.min(1_000_000));
            std::thread::spawn(move || {
                while !monitor.is_promoted() {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                let Some(public) = store.predicate("Public") else {
                    return; // no Public predicate: nothing safe to append
                };
                let mut i = 0u64;
                loop {
                    if store
                        .try_append_node(
                            format!("churn-promoted-{i}"),
                            surrogate_parenthood::plus_store::NodeKind::Data,
                            Features::new().with("churn", i as i64),
                            public,
                        )
                        .is_err()
                    {
                        return; // poisoned log: stop writing, keep serving
                    }
                    i += 1;
                    std::thread::sleep(pause);
                }
            });
        }
        // Machine-parseable: scripts resolve `--addr :0` from this line.
        println!("listening on {}", server.local_addr());
        if let Some(metrics) = server.metrics_local_addr() {
            println!("metrics listening on {metrics}");
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        loop {
            std::thread::park();
        }
    }

    // Writable open (unlike the read-only inspection commands): a serving
    // process is the store's single attached writer, so remote
    // `Checkpoint` requests can fold the log.
    let vacant = match std::fs::read_dir(path) {
        Ok(mut entries) => entries.next().is_none(),
        Err(_) => !std::path::Path::new(path).exists(),
    };
    let store = if args.iter().any(|a| a == "--create") && vacant {
        Store::create_durable(path, &["Public"], &[])
            .map_err(|e| format!("cannot create {path}: {e}"))?
    } else if std::path::Path::new(path).is_dir() {
        Store::open(path).map_err(|e| format!("cannot load {path}: {e}"))?
    } else {
        Store::load(path).map_err(|e| format!("cannot load {path}: {e}"))?
    };
    let store = Arc::new(store);
    let service = Arc::new(AccountService::new(store.clone()));
    // Remote checkpoints drive owner-side disk I/O; an operator must
    // opt in to expose them on the socket.
    config.allow_remote_checkpoint = args.iter().any(|a| a == "--allow-checkpoint");
    // Replication ships RAW records — owner-side trust domain only.
    config.allow_replication = args.iter().any(|a| a == "--allow-replication");
    // Remote writes mutate the store — same opt-in discipline.
    config.allow_remote_write = args.iter().any(|a| a == "--allow-write");
    let churn: Option<u64> = flag_value(args, "--churn")
        .map(|c| c.parse().map_err(|_| format!("bad --churn {c:?}")))
        .transpose()?;
    // Validate churn preconditions *before* binding: a server that
    // prints its banner and then dies on a usage error strands scripts
    // that background it after seeing the banner.
    let churn_writer = match churn.filter(|&r| r > 0) {
        Some(rate) => {
            if !store.is_durable() {
                return Err("--churn needs a durable store directory".to_string());
            }
            let public = store
                .predicate("Public")
                .ok_or("--churn needs a 'Public' predicate in the lattice")?;
            Some((rate, public))
        }
        None => None,
    };
    let epoch = service.epoch();
    let nodes = service.snapshot().graph.node_count();
    let server = Server::bind(service, &addr as &str, &config)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "serving {path} on {} (epoch {epoch}, {nodes} nodes, {} worker threads{}{})",
        server.local_addr(),
        config.threads,
        if config.allow_replication {
            ", replication on"
        } else {
            ""
        },
        if churn.is_some() { ", churn on" } else { "" },
    );
    println!("only protected query responses cross this socket; stop with ^C");
    println!(
        "admission: {} connections max{}{}",
        config.max_conns,
        match config.rate_limit {
            Some(rate) => format!(", {rate} req/s per consumer"),
            None => String::new(),
        },
        match fd_limit {
            Some(limit) => format!(", fd limit {limit}"),
            None => String::new(),
        },
    );
    // Machine-parseable: scripts resolve `--addr :0` from this line.
    println!("listening on {}", server.local_addr());
    if let Some(metrics) = server.metrics_local_addr() {
        println!("metrics listening on {metrics}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    // A synthetic writer, for exercising replication under load (the CI
    // replication-smoke drives it): append `churn` Public nodes per
    // second from inside the single-writer process.
    if let Some((rate, public)) = churn_writer {
        let pause = std::time::Duration::from_nanos(1_000_000_000 / rate.min(1_000_000));
        std::thread::spawn(move || {
            let mut i = 0u64;
            loop {
                if store
                    .try_append_node(
                        format!("churn-{i}"),
                        surrogate_parenthood::plus_store::NodeKind::Data,
                        Features::new().with("churn", i as i64),
                        public,
                    )
                    .is_err()
                {
                    return; // poisoned log: stop writing, keep serving
                }
                i += 1;
                std::thread::sleep(pause);
            }
        });
    }
    // Serve until killed. The worker threads own all the work; this
    // thread only keeps the process (and the Server it owns) alive.
    loop {
        std::thread::park();
    }
}

/// Promotes a replica to primary, durably bumping the fencing term so
/// frames from the deposed primary are refused from that instant on.
/// The target is either a live replica server's address (preferred: the
/// running process flips role in place) or a stopped replica's store
/// directory (offline bump; serve it writable afterwards).
fn cmd_promote(args: &[String]) -> CliResult<()> {
    let target = args
        .first()
        .ok_or("missing target: a replica server address or a stopped replica's store directory")?;
    if std::path::Path::new(target).is_dir() {
        let store =
            Store::open(target).map_err(|e| format!("cannot open {target} for promotion: {e}"))?;
        let term = store
            .promote_term()
            .map_err(|e| format!("cannot promote {target}: {e}"))?;
        println!("{target} promoted offline: fencing term {term}");
        println!("serve it writable (spgraph serve {target} ...) to accept appends");
    } else {
        let mut client = surrogate_parenthood::Client::connect(target as &str, "spgraph", &[])
            .map_err(|e| format!("cannot reach {target}: {e}"))?;
        let term = client
            .promote()
            .map_err(|e| format!("cannot promote {target}: {e}"))?;
        println!("{target} promoted: fencing term {term}, accepting writes");
    }
    Ok(())
}

/// Asks any server for its replication status; with `--wait`, polls
/// until the server reports a connected, fully caught-up state (lag 0).
fn cmd_replica_status(args: &[String]) -> CliResult<()> {
    let addr = args.first().ok_or("missing server address")?;
    let wait = args.iter().any(|a| a == "--wait");
    let timeout_secs: u64 = flag_value(args, "--timeout")
        .map(|t| t.parse().map_err(|_| format!("bad --timeout {t:?}")))
        .transpose()?
        .unwrap_or(30);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(timeout_secs);
    let status = loop {
        let status = surrogate_parenthood::Client::connect(addr as &str, "spgraph", &[])
            .map_err(|e| format!("cannot reach {addr}: {e}"))
            .and_then(|mut client| client.replica_status().map_err(|e| e.to_string()));
        match status {
            Ok(status) => {
                let caught_up = status.connected && status.lag() == 0;
                if !wait || caught_up {
                    break status;
                }
                if std::time::Instant::now() >= deadline {
                    return Err(format!(
                        "timed out after {timeout_secs}s waiting for catch-up: \
                         epoch {} vs primary {} (lag {}), connected: {}{}",
                        status.local_epoch,
                        status.primary_epoch,
                        status.lag(),
                        status.connected,
                        status
                            .last_error
                            .as_deref()
                            .map(|e| format!(", last error: {e}"))
                            .unwrap_or_default()
                    ));
                }
            }
            Err(e) => {
                if !wait || std::time::Instant::now() >= deadline {
                    return Err(e);
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    };
    println!("{addr} is a {}", status.role);
    println!(
        "  epoch {} | primary epoch {} | lag {} | term {}",
        status.local_epoch,
        status.primary_epoch,
        status.lag(),
        status.term
    );
    if let Some(primary) = &status.primary_addr {
        println!("  primary: {primary}");
    }
    println!(
        "  link: {}",
        if status.connected {
            "connected"
        } else {
            "disconnected"
        }
    );
    if let Some(error) = &status.last_error {
        println!("  last error: {error}");
    }
    Ok(())
}

/// Asks any server where it sits in the shard topology and how much of
/// each shard's history it reflects.
fn cmd_shard_status(args: &[String]) -> CliResult<()> {
    let addr = args.first().ok_or("missing server address")?;
    let mut client = surrogate_parenthood::Client::connect(addr as &str, "spgraph", &[])
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    let status = client.shard_status().map_err(|e| e.to_string())?;
    if status.count == 0 {
        println!("{addr} is unsharded");
    } else {
        match status.index {
            Some(index) => println!("{addr} is shard {index}/{}", status.count),
            None => println!("{addr} is a gather over {} shard(s)", status.count),
        }
    }
    for (slot, epoch) in status.epochs.iter().enumerate() {
        let replicas = status
            .replicas
            .get(slot)
            .filter(|r| !r.is_empty())
            .map(|r| format!("  replicas: {}", r.join(", ")))
            .unwrap_or_default();
        println!(
            "  shard {slot}: epoch {epoch}{}{replicas}",
            if status.index == Some(slot as u32) {
                "  [this server]"
            } else {
                ""
            }
        );
    }
    Ok(())
}

/// One remote write: a node append or an edge append, sent to `addr`.
/// A `WrongShard` refusal that names the owner's address is followed
/// once (the redirect discipline [`server::ShardRouter`] applies
/// programmatically).
fn cmd_write(args: &[String]) -> CliResult<()> {
    use surrogate_parenthood::plus_store::{EdgeKind, NodeKind, RecordId, WriteOp};
    let addr = args.first().ok_or("missing server address")?;
    let mut client = surrogate_parenthood::Client::connect(addr as &str, "spgraph", &[])
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    let op = if let Some(label) = flag_value(args, "--node") {
        let name = flag_value(args, "-p")
            .or_else(|| flag_value(args, "--predicate"))
            .unwrap_or_else(|| "Public".to_string());
        let lowest = client
            .predicate(&name)
            .ok_or_else(|| format!("unknown predicate {name:?}"))?;
        WriteOp::AppendNode {
            label,
            kind: NodeKind::Data,
            features: Features::new(),
            lowest,
        }
    } else if let Some(edge) = flag_value(args, "--edge") {
        let (from, to) = edge
            .split_once(',')
            .and_then(|(f, t)| Some((f.trim().parse::<u32>().ok()?, t.trim().parse::<u32>().ok()?)))
            .ok_or_else(|| format!("bad --edge {edge:?}: expected <from>,<to>"))?;
        let kind = match flag_value(args, "--kind").as_deref() {
            None | Some("generated-by") => EdgeKind::GeneratedBy,
            Some("input-to") => EdgeKind::InputTo,
            Some("triggered-by") => EdgeKind::TriggeredBy,
            Some("related") => EdgeKind::Related,
            Some(other) => return Err(format!("unknown edge kind {other:?}")),
        };
        WriteOp::AppendEdge {
            from: RecordId(from),
            to: RecordId(to),
            kind,
        }
    } else {
        return Err("write needs --node <label> or --edge <from>,<to>".to_string());
    };
    let (clock, id) = match client.write(op.clone()) {
        Ok(ack) => ack,
        Err(e) => {
            // A WrongShard refusal whose message is the owner's address
            // is a redirect: retry there, once.
            let target = match &e {
                surrogate_parenthood::server::ClientError::Remote(remote)
                    if remote.kind
                        == surrogate_parenthood::plus_store::WireErrorKind::WrongShard
                        && remote.message.contains(':') =>
                {
                    remote.message.clone()
                }
                _ => return Err(e.to_string()),
            };
            let mut owner = surrogate_parenthood::Client::connect(target.as_str(), "spgraph", &[])
                .map_err(|e| format!("cannot reach redirect target {target}: {e}"))?;
            println!("redirected to owning shard {target}");
            owner.write(op).map_err(|e| e.to_string())?
        }
    };
    match id {
        Some(id) => println!("appended node {} at clock {clock}", id.0),
        None => println!("applied at clock {clock}"),
    }
    Ok(())
}

fn cmd_measure(args: &[String]) -> CliResult<()> {
    let (service, _) = serve(args)?;
    let snapshot = service.snapshot();
    let predicate = resolve_predicate(&snapshot, args)?;
    let threshold: f64 = flag_value(args, "--threshold")
        .map(|t| t.parse().map_err(|_| format!("bad threshold {t:?}")))
        .transpose()?
        .unwrap_or(0.5);
    let model = OpacityModel::default();
    let account = service
        .protect(&[predicate], &Strategy::Surrogate)
        .map_err(|e| e.to_string())?;
    println!(
        "measures for {:?} (surrogate strategy):",
        snapshot.lattice.name(predicate)
    );
    println!(
        "  path utility {:.3}",
        path_utility(&snapshot.graph, &account)
    );
    println!(
        "  node utility {:.3}",
        node_utility(&snapshot.graph, &account)
    );
    match average_protected_opacity(&snapshot.graph, &account, model) {
        Some(avg) => {
            let min = min_protected_opacity(&snapshot.graph, &account, model).expect("same set");
            println!("  opacity over protected edges: avg {avg:.3}, worst {min:.3}");
        }
        None => println!("  no protected edges: nothing to infer"),
    }
    let risky = edges_at_risk(&snapshot.graph, &account, model, threshold);
    println!(
        "  {} protected edge(s) below the {threshold} opacity bar",
        risky.len()
    );
    for entry in risky.iter().take(10) {
        let (u, v) = entry.edge;
        println!(
            "    {:.3}  {} -> {}",
            entry.opacity,
            snapshot.graph.node(u).label,
            snapshot.graph.node(v).label
        );
    }
    Ok(())
}
