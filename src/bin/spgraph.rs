//! `spgraph` — inspect, protect, and measure PLUS snapshot files.
//!
//! ```text
//! spgraph demo <snapshot>                      write the paper's Figure 1 example
//! spgraph info <snapshot>                      counts, lattice, high-water set
//! spgraph protect <snapshot> -p <predicate> [--strategy surrogate|hide|naive]
//!                                  [--dot <file>]   summarize/export an account
//! spgraph measure <snapshot> -p <predicate> [--threshold <t>]
//!                                              utilities, opacity, risk report
//! ```
//!
//! Argument parsing is deliberately dependency-free.

use std::process::ExitCode;

use surrogate_parenthood::plus_store::{ingest, IngestKinds, Store};
use surrogate_parenthood::prelude::*;

/// CLI-level result: user-facing error strings.
type CliResult<T> = std::result::Result<T, String>;
use surrogate_parenthood::surrogate_core::dot::{account_to_dot, graph_to_dot};
use surrogate_parenthood::surrogate_core::hw::high_water_set;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  spgraph demo <snapshot>\n  spgraph info <snapshot>\n  \
         spgraph protect <snapshot> -p <predicate> [--strategy surrogate|hide|naive] [--dot <file>]\n  \
         spgraph measure <snapshot> -p <predicate> [--threshold <t>]"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let result = match command.as_str() {
        "demo" => cmd_demo(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "protect" => cmd_protect(&args[1..]),
        "measure" => cmd_measure(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn load(args: &[String]) -> CliResult<(Store, String)> {
    let path = args.first().ok_or("missing snapshot path")?;
    let store = Store::load(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    Ok((store, path.clone()))
}

fn resolve_predicate(
    m: &surrogate_parenthood::plus_store::Materialized,
    args: &[String],
) -> CliResult<PrivilegeId> {
    let name = flag_value(args, "-p")
        .or_else(|| flag_value(args, "--predicate"))
        .ok_or("missing -p <predicate>")?;
    m.lattice
        .by_name(&name)
        .ok_or_else(|| format!("unknown predicate {name:?}"))
}

/// Writes the paper's Figure 1 example (graph, lattice, scenario (d)
/// policy) as a snapshot — a ready-made playground.
fn cmd_demo(args: &[String]) -> CliResult<()> {
    let path = args.first().ok_or("missing snapshot path")?;
    let fig = surrogate_parenthood::graphgen::Figure2::new(
        surrogate_parenthood::graphgen::Figure2Scenario::D,
    );
    let store = ingest(
        &fig.base.graph,
        &fig.base.lattice,
        &fig.markings,
        &fig.catalog,
        IngestKinds::default(),
    )
    .map_err(|e| e.to_string())?;
    store.save(path).map_err(|e| e.to_string())?;
    println!(
        "wrote the Figure 1/2(d) example to {path}: {} nodes, {} edges",
        store.node_count(),
        store.edge_count()
    );
    println!("try: spgraph info {path}");
    println!("     spgraph protect {path} -p High-2");
    println!("     spgraph measure {path} -p High-2");
    Ok(())
}

fn cmd_info(args: &[String]) -> CliResult<()> {
    let (store, path) = load(args)?;
    let m = store.materialize();
    println!("snapshot {path}");
    println!(
        "  {} node records, {} edge records, {} policy statements",
        store.node_count(),
        store.edge_count(),
        store.policy_count()
    );
    println!("  predicates:");
    for p in m.lattice.ids() {
        let dominated: Vec<&str> = m
            .lattice
            .ids()
            .filter(|&q| q != p && m.lattice.dominates(p, q))
            .map(|q| m.lattice.name(q))
            .collect();
        println!(
            "    {} {}",
            m.lattice.name(p),
            if dominated.is_empty() {
                String::new()
            } else {
                format!("(dominates {})", dominated.join(", "))
            }
        );
    }
    let hw = high_water_set(&m.graph, &m.lattice);
    let names: Vec<&str> = hw.iter().map(|&p| m.lattice.name(p)).collect();
    println!("  high-water set: {{{}}}", names.join(", "));
    println!(
        "  connected: {}, acyclic: {}",
        m.graph.is_connected(),
        m.graph.is_acyclic()
    );
    Ok(())
}

fn cmd_protect(args: &[String]) -> CliResult<()> {
    let (store, _) = load(args)?;
    let m = store.materialize();
    let predicate = resolve_predicate(&m, args)?;
    let strategy = match flag_value(args, "--strategy").as_deref() {
        None | Some("surrogate") => Strategy::Surrogate,
        Some("hide") => Strategy::HideEdges,
        Some("naive") => Strategy::HideNodes,
        Some(other) => return Err(format!("unknown strategy {other:?}")),
    };
    let account = m
        .context()
        .protect(predicate, strategy)
        .map_err(|e| e.to_string())?;
    println!(
        "protected account for {:?} ({:?}):",
        m.lattice.name(predicate),
        strategy
    );
    println!(
        "  {} of {} nodes visible ({} surrogate)",
        account.graph().node_count(),
        m.graph.node_count(),
        account.surrogate_node_count()
    );
    println!(
        "  {} edges ({} surrogate)",
        account.graph().edge_count(),
        account.surrogate_edge_count()
    );
    println!(
        "  path utility {:.3}, node utility {:.3}",
        path_utility(&m.graph, &account),
        node_utility(&m.graph, &account)
    );
    if let Some(dot_path) = flag_value(args, "--dot") {
        std::fs::write(&dot_path, account_to_dot(&account, "protected account"))
            .map_err(|e| e.to_string())?;
        println!("  DOT written to {dot_path}");
    }
    if let Some(dot_path) = flag_value(args, "--dot-original") {
        std::fs::write(&dot_path, graph_to_dot(&m.graph, "original")).map_err(|e| e.to_string())?;
        println!("  original DOT written to {dot_path}");
    }
    Ok(())
}

fn cmd_measure(args: &[String]) -> CliResult<()> {
    let (store, _) = load(args)?;
    let m = store.materialize();
    let predicate = resolve_predicate(&m, args)?;
    let threshold: f64 = flag_value(args, "--threshold")
        .map(|t| t.parse().map_err(|_| format!("bad threshold {t:?}")))
        .transpose()?
        .unwrap_or(0.5);
    let model = OpacityModel::default();
    let account = m
        .context()
        .protect(predicate, Strategy::Surrogate)
        .map_err(|e| e.to_string())?;
    println!(
        "measures for {:?} (surrogate strategy):",
        m.lattice.name(predicate)
    );
    println!("  path utility {:.3}", path_utility(&m.graph, &account));
    println!("  node utility {:.3}", node_utility(&m.graph, &account));
    match average_protected_opacity(&m.graph, &account, model) {
        Some(avg) => {
            let min = min_protected_opacity(&m.graph, &account, model).expect("same set");
            println!("  opacity over protected edges: avg {avg:.3}, worst {min:.3}");
        }
        None => println!("  no protected edges: nothing to infer"),
    }
    let risky = edges_at_risk(&m.graph, &account, model, threshold);
    println!(
        "  {} protected edge(s) below the {threshold} opacity bar",
        risky.len()
    );
    for entry in risky.iter().take(10) {
        let (u, v) = entry.edge;
        println!(
            "    {:.3}  {} -> {}",
            entry.opacity,
            m.graph.node(u).label,
            m.graph.node(v).label
        );
    }
    Ok(())
}
