//! Vendored, registry-free subset of the `bytes` API.
//!
//! [`BytesMut`] is a growable byte buffer over `Vec<u8>`, and [`BufMut`]
//! carries the little-endian `put_*` writers the snapshot codec uses.
//! [`Bytes`] is an immutable, cheaply cloneable (`Arc`-backed) byte
//! slice — the currency of the sealed-frame cache, where one encoded
//! response frame is shared between the cache and many concurrent
//! socket writers. Unlike the real crate there is no split machinery —
//! the codec only appends, freezes, and shares.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, reference-counted byte slice.
///
/// Cloning is an `Arc` bump, never a copy, so one frozen buffer can be
/// held by a cache and written by many connections concurrently.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bytes {
    inner: Arc<[u8]>,
}

impl Bytes {
    /// An empty slice.
    pub fn new() -> Self {
        Bytes {
            inner: Arc::from(Vec::new()),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            inner: Arc::from(v),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes {
            inner: Arc::from(v),
        }
    }
}

/// A growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer, returning the contents without copying
    /// (stands in for the real crate's `freeze().to_vec()` pattern).
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Vec<u8> {
        buf.inner
    }
}

/// Append-only byte sink with little-endian primitive writers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writers_append_little_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16_le(0x0102);
        buf.put_u32_le(0x03040506);
        buf.put_u64_le(0x0708090A0B0C0D0E);
        buf.put_i64_le(-2);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xy");
        let v = buf.to_vec();
        assert_eq!(&v[..3], &[0xAB, 0x02, 0x01]);
        assert_eq!(&v[3..7], &[0x06, 0x05, 0x04, 0x03]);
        assert_eq!(v.len(), 1 + 2 + 4 + 8 + 8 + 8 + 2);
        assert_eq!(&v[v.len() - 2..], b"xy");
    }
}
