//! Vendored, registry-free subset of the `criterion` benchmark API.
//!
//! Provides the surface the workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! calibrate-then-measure wall-clock harness instead of criterion's
//! statistical machinery. Each benchmark is calibrated to roughly
//! [`TARGET_MEASURE_TIME`], then reports mean ns/iter on stdout.
//!
//! Filters passed by `cargo bench <filter>` are honored with substring
//! matching; `--bench`/`--profile-time` style flags are accepted and
//! ignored so `cargo bench` invocations behave.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Time budget each benchmark's measured phase aims for.
pub const TARGET_MEASURE_TIME: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards its trailing args; the first token that
        // is not a flag is the name filter. Flags are treated as boolean
        // (a value-taking flag's value would be mistaken for the filter,
        // but the only invocation shape this stub serves is
        // `cargo bench [filter]`, where cargo appends `--bench`).
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted for API parity).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendering, formatted `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.criterion.matches(&full) {
            run_benchmark(&full, &mut f);
        }
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it for the calibrated iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(full_name: &str, f: &mut F) {
    // Calibration pass: one iteration to estimate per-iter cost.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let estimate = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_MEASURE_TIME.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u64;

    // Measurement pass.
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() as f64 / iters as f64;
    println!("bench: {full_name:<48} {per_iter:>14.1} ns/iter (x{iters})");
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("encode", 100).id, "encode/100");
        assert_eq!(BenchmarkId::from_parameter("50%").id, "50%");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn groups_run_benchmarks() {
        let mut criterion = Criterion { filter: None };
        let mut group = criterion.benchmark_group("demo");
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filters_skip_nonmatching() {
        let mut criterion = Criterion {
            filter: Some("other".into()),
        };
        let mut group = criterion.benchmark_group("demo");
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| ());
        });
        group.finish();
        assert!(!ran);
    }
}
