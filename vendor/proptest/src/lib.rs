//! Vendored, registry-free subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the slice of
//! proptest this workspace's property suites use is reimplemented here
//! with the same surface:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, `#[test]`
//!   functions taking `pattern in strategy` arguments;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * [`any`] for the integer primitives and `bool`;
//! * range strategies (`1usize..12`, `0.05f64..0.5`);
//! * [`collection::vec`].
//!
//! Design differences from the real crate, chosen for auditability:
//!
//! * **Deterministic by default.** Every case's RNG seed is derived from
//!   the test name and case index, so failures reproduce without a
//!   persistence file. `proptest-regressions/` directories are therefore
//!   never written (and are `.gitignore`d in case the real crate is
//!   swapped back in).
//! * **No shrinking.** A failing case reports its exact inputs instead;
//!   with fully derived scenarios (the style all three suites use) the
//!   inputs are already minimal descriptions.
//! * **`PROPTEST_CASES`** overrides every suite's case count, exactly
//!   like the real crate's env-var handling. `PROPTEST_MAX_REJECTS`
//!   bounds `prop_assume!` discards (default 1024 per case budget).

#![forbid(unsafe_code)]

use std::env;
use std::fmt::Debug;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Everything the property suites import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions were not met; it is discarded, not failed.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Per-suite configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum number of `prop_assume!` discards before the suite fails.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases, unless the `PROPTEST_CASES`
    /// environment variable overrides the count.
    pub fn with_cases(cases: u32) -> Self {
        let cases = env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cases);
        let max_global_rejects = env::var("PROPTEST_MAX_REJECTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1024);
        ProptestConfig {
            cases,
            max_global_rejects,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value produced.
    type Value: Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias towards structurally interesting extremes the way
                // the real crate's integer strategies do.
                match rng.gen_range(0u32..16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1,
                    _ => rng.gen::<$t>(),
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// An unconstrained strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Derives a per-case RNG seed from the suite name and case index.
fn case_seed(name: &str, case: u64) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Drives one property: draws inputs, runs the case, panics with the
/// reproducing inputs on failure. Used by the [`proptest!`] expansion;
/// not part of the public proptest API.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        let mut rng = TestRng::seed_from_u64(case_seed(name, attempt));
        let (result, inputs) = case(&mut rng);
        match result {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{name}: too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "{name}: property failed at case #{attempt} \
                     with inputs [{inputs}]: {message}"
                );
            }
        }
        attempt += 1;
    }
}

/// Declares property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_proptest(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),*),
                        $(&$arg),*
                    );
                    let __outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    (__outcome, __inputs)
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($arg in $strategy),+) $body )*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)*),
            )));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)*),
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn assume_discards(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(v.len() < 16);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_inputs() {
        crate::run_proptest(
            &ProptestConfig::with_cases(4),
            "failures_panic_with_inputs",
            |_rng| (Err(TestCaseError::fail("boom")), "x = 1; ".into()),
        );
    }
}
