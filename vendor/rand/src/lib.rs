//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` items the sources use are reimplemented here with
//! identical signatures: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the workspace's seeded workload
//! generators and property tests require. Streams do **not** match the
//! real `rand` crate's `StdRng` (ChaCha12); nothing in this workspace
//! depends on specific stream values, only on determinism.
//!
//! Swapping back to the real crate is a one-line change in the workspace
//! manifest once a registry is reachable.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator producing 64-bit output.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw output, mirroring
/// `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw 64-bit draw onto `[0, width)` with a fixed-point multiply.
fn bounded(raw: u64, width: u64) -> u64 {
    ((u128::from(raw) * u128::from(width)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as $u).wrapping_sub(self.start as $u);
                let v = bounded(rng.next_u64(), u64::from(width));
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as $u).wrapping_sub(start as $u);
                if u64::from(width) == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = bounded(rng.next_u64(), u64::from(width) + 1);
                start.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64
);

macro_rules! impl_sample_range_size {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                let v = bounded(rng.next_u64(), width);
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as u64).wrapping_sub(start as u64);
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = bounded(rng.next_u64(), width + 1);
                start.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_range_size!(usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ behind the same
    /// name and seeding entry point as `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=10);
            assert!((0..=10).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
    }

    #[test]
    fn range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
