//! Vendored, registry-free subset of the `parking_lot` API.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! signatures (`lock`/`read`/`write` return guards directly). A thread
//! that panics while holding a std lock poisons it; matching
//! `parking_lot`'s semantics, the poison flag is cleared and the guard
//! handed out anyway.

#![forbid(unsafe_code)]

use std::sync;

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn read_survives_holder_panic() {
        let lock = std::sync::Arc::new(RwLock::new(7));
        let held = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = held.write();
            panic!("poison the std lock");
        })
        .join();
        assert_eq!(*lock.read(), 7);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
