//! Guards the experiment harness against silent rot: the criterion bench
//! targets must keep compiling and every `repro_*` reproduction binary
//! must keep building. Runs the real cargo commands so the check is
//! exactly what a developer would type.

use std::env;
use std::path::Path;
use std::process::Command;

/// The criterion bench targets declared in this crate's manifest.
const BENCH_TARGETS: &[&str] = &["protect", "measures", "query", "store"];

/// The paper-reproduction binaries (§6 artifacts plus the all-in-one).
const REPRO_BINS: &[&str] = &[
    "repro_table1",
    "repro_fig3",
    "repro_fig7",
    "repro_fig8",
    "repro_fig9",
    "repro_fig10",
    "repro_serve",
    "repro_replica",
    "repro_shard",
    "repro_check",
    "repro_all",
];

fn cargo() -> Command {
    let cargo = env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let mut cmd = Command::new(cargo);
    // Run against this crate regardless of the test's working directory.
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

/// Runs cargo with JSON output and returns the produced executables.
fn executables(args: &[&str]) -> Vec<String> {
    let output = cargo()
        .args(args)
        .arg("--message-format=json")
        .output()
        .expect("cargo invokes");
    assert!(
        output.status.success(),
        "`cargo {}` failed:\n{}",
        args.join(" "),
        String::from_utf8_lossy(&output.stderr),
    );
    // Each compiler-artifact message carries `"executable":"/path"`;
    // pull the paths out without a JSON dependency.
    let stdout = String::from_utf8_lossy(&output.stdout);
    stdout
        .lines()
        .filter_map(|line| {
            let (_, rest) = line.split_once("\"executable\":\"")?;
            let (path, _) = rest.split_once('"')?;
            Some(path.to_owned())
        })
        .collect()
}

fn file_stem(path: &str) -> &str {
    Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default()
}

#[test]
fn criterion_benches_compile() {
    let built = executables(&["bench", "--no-run"]);
    for target in BENCH_TARGETS {
        assert!(
            built
                .iter()
                .any(|exe| file_stem(exe).starts_with(&format!("{target}-"))),
            "bench target `{target}` did not compile; built: {built:?}"
        );
    }
}

#[test]
fn repro_binaries_build() {
    let built = executables(&["build", "--bins"]);
    for bin in REPRO_BINS {
        assert!(
            built.iter().any(|exe| file_stem(exe) == *bin),
            "repro binary `{bin}` did not build; built: {built:?}"
        );
    }
}
