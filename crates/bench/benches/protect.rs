//! Criterion benches for protected-account generation — the hot path
//! behind Fig. 10's "protect via hide / protect via surrogate" bars —
//! swept over graph size and protection fraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen::{synthetic, EdgeProtection, SyntheticConfig};
use surrogate_core::account::{
    generate_for_set, generate_hide_for_set, generate_with_options, GenerateOptions,
    ProtectionContext,
};
use surrogate_core::surrogate::SurrogateCatalog;

fn bench_protect(c: &mut Criterion) {
    let mut group = c.benchmark_group("protect");
    for &nodes in &[50usize, 200, 500] {
        let config = SyntheticConfig {
            nodes,
            target_connected_pairs: nodes as f64 / 4.0,
            protect_fraction: 0.3,
            seed: 1,
        };
        let data = synthetic::generate(config);
        let catalog = SurrogateCatalog::new();
        let public = data.lattice.public();
        let sur_markings = data.markings(EdgeProtection::Surrogate);
        let hide_markings = data.markings(EdgeProtection::Hide);

        group.bench_with_input(BenchmarkId::new("surrogate", nodes), &nodes, |b, _| {
            let ctx = ProtectionContext::new(&data.graph, &data.lattice, &sur_markings, &catalog);
            b.iter(|| generate_for_set(&ctx, &[public]).expect("generates"));
        });
        group.bench_with_input(BenchmarkId::new("hide", nodes), &nodes, |b, _| {
            let ctx = ProtectionContext::new(&data.graph, &data.lattice, &hide_markings, &catalog);
            b.iter(|| generate_hide_for_set(&ctx, &[public]).expect("generates"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("protect/fraction");
    for &fraction in &[0.1f64, 0.5, 0.9] {
        let config = SyntheticConfig {
            nodes: 200,
            target_connected_pairs: 50.0,
            protect_fraction: fraction,
            seed: 2,
        };
        let data = synthetic::generate(config);
        let catalog = SurrogateCatalog::new();
        let public = data.lattice.public();
        let markings = data.markings(EdgeProtection::Surrogate);
        group.bench_with_input(
            BenchmarkId::new("surrogate", format!("{:.0}%", fraction * 100.0)),
            &fraction,
            |b, _| {
                let ctx = ProtectionContext::new(&data.graph, &data.lattice, &markings, &catalog);
                b.iter(|| generate_for_set(&ctx, &[public]).expect("generates"));
            },
        );
    }
    group.finish();

    // Ablation: the "no shorter HW-permitted path" redundancy filter
    // (DESIGN.md §3.1 item 3, step 2). Disabling it skips the pair
    // decomposition at the cost of many redundant surrogate edges.
    let mut group = c.benchmark_group("protect/ablation");
    let config = SyntheticConfig {
        nodes: 200,
        target_connected_pairs: 50.0,
        protect_fraction: 0.5,
        seed: 3,
    };
    let data = synthetic::generate(config);
    let catalog = SurrogateCatalog::new();
    let public = data.lattice.public();
    let markings = data.markings(EdgeProtection::Surrogate);
    let ctx = ProtectionContext::new(&data.graph, &data.lattice, &markings, &catalog);
    for (name, options) in [
        (
            "redundancy_filter_on",
            GenerateOptions {
                redundancy_filter: true,
            },
        ),
        (
            "redundancy_filter_off",
            GenerateOptions {
                redundancy_filter: false,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| generate_with_options(&ctx, &[public], options).expect("generates"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protect);
criterion_main!(benches);
