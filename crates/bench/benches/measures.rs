//! Criterion benches for the utility and opacity measures (§4) that back
//! Table 1 and Figs. 7–9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen::{synthetic, EdgeProtection, SyntheticConfig};
use surrogate_core::account::{generate_for_set, ProtectedAccount, ProtectionContext};
use surrogate_core::graph::Graph;
use surrogate_core::measures::{
    average_protected_opacity, node_utility, path_utility, OpacityEvaluator, OpacityModel,
};
use surrogate_core::surrogate::SurrogateCatalog;

fn protected_fixture(nodes: usize) -> (Graph, ProtectedAccount) {
    let config = SyntheticConfig {
        nodes,
        target_connected_pairs: nodes as f64 / 4.0,
        protect_fraction: 0.3,
        seed: 7,
    };
    let data = synthetic::generate(config);
    let catalog = SurrogateCatalog::new();
    let markings = data.markings(EdgeProtection::Surrogate);
    let account = {
        let ctx = ProtectionContext::new(&data.graph, &data.lattice, &markings, &catalog);
        generate_for_set(&ctx, &[data.lattice.public()]).expect("generates")
    };
    (data.graph, account)
}

fn bench_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("measures");
    for &nodes in &[200usize, 500] {
        let (graph, account) = protected_fixture(nodes);
        group.bench_with_input(BenchmarkId::new("path_utility", nodes), &nodes, |b, _| {
            b.iter(|| path_utility(&graph, &account));
        });
        group.bench_with_input(BenchmarkId::new("node_utility", nodes), &nodes, |b, _| {
            b.iter(|| node_utility(&graph, &account));
        });
        group.bench_with_input(BenchmarkId::new("avg_opacity", nodes), &nodes, |b, _| {
            b.iter(|| average_protected_opacity(&graph, &account, OpacityModel::default()));
        });
        group.bench_with_input(
            BenchmarkId::new("edge_opacity_amortized", nodes),
            &nodes,
            |b, _| {
                let evaluator = OpacityEvaluator::new(&account, OpacityModel::default());
                let edges: Vec<_> = graph.edges().collect();
                b.iter(|| {
                    edges
                        .iter()
                        .map(|&e| evaluator.edge_opacity(e))
                        .sum::<f64>()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_measures);
criterion_main!(benches);
