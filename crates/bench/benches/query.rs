//! Criterion benches for path-traversal queries over original graphs and
//! protected accounts — the workload the paper's motivation (§1) centers
//! on, and the per-query cost Fig. 10 claims is unaffected by protection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen::{synthetic, EdgeProtection, SyntheticConfig};
use surrogate_core::account::{generate_for_set, ProtectionContext};
use surrogate_core::graph::NodeId;
use surrogate_core::query::{ancestors, descendants, shortest_path};
use surrogate_core::surrogate::SurrogateCatalog;

fn bench_query(c: &mut Criterion) {
    let config = SyntheticConfig {
        nodes: 500,
        target_connected_pairs: 120.0,
        protect_fraction: 0.3,
        seed: 23,
    };
    let data = synthetic::generate(config);
    let catalog = SurrogateCatalog::new();
    let markings = data.markings(EdgeProtection::Surrogate);
    let account = {
        let ctx = ProtectionContext::new(&data.graph, &data.lattice, &markings, &catalog);
        generate_for_set(&ctx, &[data.lattice.public()]).expect("generates")
    };

    let root = NodeId(0);
    let sink = NodeId((data.graph.node_count() - 1) as u32);
    let account_root = account.account_node(root).expect("all nodes public");
    let account_sink = account.account_node(sink).expect("all nodes public");

    let mut group = c.benchmark_group("query");
    group.bench_with_input(BenchmarkId::new("descendants", "original"), &(), |b, _| {
        b.iter(|| descendants(&data.graph, root));
    });
    group.bench_with_input(BenchmarkId::new("descendants", "protected"), &(), |b, _| {
        b.iter(|| descendants(account.graph(), account_root));
    });
    group.bench_with_input(BenchmarkId::new("ancestors", "original"), &(), |b, _| {
        b.iter(|| ancestors(&data.graph, sink));
    });
    group.bench_with_input(BenchmarkId::new("ancestors", "protected"), &(), |b, _| {
        b.iter(|| ancestors(account.graph(), account_sink));
    });
    group.bench_with_input(
        BenchmarkId::new("shortest_path", "original"),
        &(),
        |b, _| {
            b.iter(|| shortest_path(&data.graph, root, sink));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("shortest_path", "protected"),
        &(),
        |b, _| {
            b.iter(|| shortest_path(account.graph(), account_root, account_sink));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
