//! Criterion benches for the store substrate: snapshot encode/decode
//! ("DB access") and materialization ("build graph") — Fig. 10's
//! non-protection bars.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plus_store::Store;
use surrogate_bench::experiments::fig10::{build_store, Fig10Config};

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    for &(stages, width) in &[(5usize, 5usize), (25, 20)] {
        let store = build_store(Fig10Config {
            stages,
            width,
            sensitive_fraction: 0.15,
            iterations: 1,
            seed: 11,
            simulated_db_roundtrip_us: None,
        });
        let records = store.node_count();
        let bytes = store.to_bytes();

        group.bench_with_input(BenchmarkId::new("encode", records), &records, |b, _| {
            b.iter(|| store.to_bytes());
        });
        group.bench_with_input(BenchmarkId::new("decode", records), &records, |b, _| {
            b.iter(|| Store::from_bytes(&bytes).expect("decodes"));
        });
        group.bench_with_input(
            BenchmarkId::new("materialize", records),
            &records,
            |b, _| {
                b.iter(|| store.materialize());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
