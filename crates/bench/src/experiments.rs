//! Drivers regenerating every table and figure of the paper's §6, shared
//! by the `repro_*` binaries and the criterion benches.

pub mod durable;
pub mod fig10;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod replica;
pub mod serve;
pub mod service;
pub mod shard;
pub mod table1;
