//! Plain-text table rendering for the `repro_*` binaries.

/// Renders an aligned table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Formats a float with three decimals (the paper's precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a signed delta with three decimals.
pub fn d3(x: f64) -> String {
    format!("{x:+.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.000".into()],
                vec!["longer".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.000"));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f3(0.12), "0.120");
        assert_eq!(d3(0.25), "+0.250");
        assert_eq!(d3(-0.25), "-0.250");
    }
}
