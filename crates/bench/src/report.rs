//! Plain-text table rendering for the `repro_*` binaries.

/// Renders an aligned table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Formats a float with three decimals (the paper's precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a signed delta with three decimals.
pub fn d3(x: f64) -> String {
    format!("{x:+.3}")
}

/// Minimal JSON assembly for the `BENCH_*.json` perf-trajectory files —
/// no serde in the tree, and the shapes are flat enough to hand-write.
pub mod json {
    use std::fmt::Write;

    /// Escapes a string for a JSON literal.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }

    /// A JSON number from an `f64` (finite values only; millisecond and
    /// ratio payloads, 6 significant decimals).
    pub fn num(x: f64) -> String {
        debug_assert!(x.is_finite(), "JSON numbers must be finite");
        format!("{x:.6}")
    }

    /// An object from rendered `(key, value)` pairs (values must already
    /// be valid JSON).
    pub fn object(pairs: &[(&str, String)]) -> String {
        let body: Vec<String> = pairs
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", escape(k)))
            .collect();
        format!("{{{}}}", body.join(", "))
    }

    /// An array from rendered values.
    pub fn array(values: &[String]) -> String {
        format!("[{}]", values.join(", "))
    }

    /// Splices `"key": record` into a flat JSON object's top level,
    /// replacing any previous entry of that name — how the `repro_*`
    /// binaries merge their records into one shared `BENCH_*.json`
    /// without a JSON dependency (re-running against the same file must
    /// not produce duplicate keys). `None` when `existing` is not a
    /// JSON object.
    pub fn merge_key(existing: &str, key: &str, record: &str) -> Option<String> {
        let without_old = strip_top_level_key(existing, key)?;
        let body = without_old
            .strip_prefix('{')?
            .strip_suffix('}')?
            .trim()
            .trim_end_matches(',')
            .trim_end();
        Some(if body.is_empty() {
            format!("{{\"{key}\": {record}}}")
        } else {
            format!("{{{body}, \"{key}\": {record}}}")
        })
    }

    /// Overlays `pairs` field-by-field onto the object at
    /// `existing[key]`, creating it if absent — so two runs that measure
    /// different facets of the same record (an in-process run with cache
    /// counters, an external idle-fleet run with tail latencies) can
    /// both contribute to one `"serve"` object instead of the later run
    /// erasing the earlier one. A non-object value under `key` is
    /// replaced wholesale. `None` when `existing` is not a JSON object.
    pub fn merge_fields(existing: &str, key: &str, pairs: &[(&str, String)]) -> Option<String> {
        let mut record = top_level_value(existing, key)
            .filter(|v| v.starts_with('{'))
            .unwrap_or_else(|| "{}".to_string());
        for (field, value) in pairs {
            record = merge_key(&record, field, value)?;
        }
        merge_key(existing, key, &record)
    }

    /// Removes `"key": <value>` (and one adjacent comma) from the top
    /// level of a JSON object, tracking strings and nesting so braces
    /// inside labels cannot confuse the scan. Returns the input
    /// unchanged when the key is absent; `None` when the text is not a
    /// JSON object.
    pub fn strip_top_level_key(text: &str, key: &str) -> Option<String> {
        let text = text.trim();
        if !text.starts_with('{') || !text.ends_with('}') {
            return None;
        }
        let needle = format!("\"{key}\"");
        let bytes = text.as_bytes();
        let (mut depth, mut in_string, mut escaped) = (0i32, false, false);
        let mut key_start = None;
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if in_string {
                match b {
                    _ if escaped => escaped = false,
                    b'\\' => escaped = true,
                    b'"' => in_string = false,
                    _ => {}
                }
            } else {
                match b {
                    b'"' => {
                        // A key, not a value: the quoted name must be
                        // followed by a colon.
                        if depth == 1
                            && key_start.is_none()
                            && text[i..].starts_with(&needle)
                            && text[i + needle.len()..].trim_start().starts_with(':')
                        {
                            key_start = Some(i);
                        }
                        in_string = true;
                    }
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            if let Some(start) = key_start {
                                // Key ran to the object's end: drop it
                                // and a comma before it.
                                let head = text[..start].trim_end().trim_end_matches(',');
                                return Some(format!("{}{}", head.trim_end(), &text[i..]));
                            }
                        }
                    }
                    b',' if depth == 1 => {
                        if let Some(start) = key_start {
                            // Value ended at this top-level comma:
                            // splice the entry (and this comma) out.
                            return Some(format!(
                                "{}{}",
                                &text[..start],
                                text[i + 1..].trim_start()
                            ));
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        Some(text.to_string())
    }

    /// Reads the number at a dotted path (e.g. `"serve.requests_per_sec"`)
    /// out of a flat-ish JSON object — the regression gate's extractor.
    /// `None` when the path is absent or not a number.
    pub fn number_at(text: &str, dotted_path: &str) -> Option<f64> {
        let mut value = text.trim().to_string();
        for segment in dotted_path.split('.') {
            value = top_level_value(&value, segment)?;
        }
        value.trim().parse().ok()
    }

    /// The raw text of `"key"`'s value at the top level of a JSON
    /// object, using the same string/nesting-aware scan as
    /// [`strip_top_level_key`].
    pub fn top_level_value(text: &str, key: &str) -> Option<String> {
        let text = text.trim();
        if !text.starts_with('{') {
            return None;
        }
        let needle = format!("\"{key}\"");
        let bytes = text.as_bytes();
        let (mut depth, mut in_string, mut escaped) = (0i32, false, false);
        let mut value_start: Option<usize> = None;
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if in_string {
                match b {
                    _ if escaped => escaped = false,
                    b'\\' => escaped = true,
                    b'"' => in_string = false,
                    _ => {}
                }
            } else {
                match b {
                    b'"' => {
                        if depth == 1
                            && value_start.is_none()
                            && text[i..].starts_with(&needle)
                            && text[i + needle.len()..].trim_start().starts_with(':')
                        {
                            let after_key = i + needle.len();
                            let colon = after_key + text[after_key..].find(':')?;
                            value_start = Some(colon + 1);
                        }
                        in_string = true;
                    }
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth -= 1;
                        if depth == 0 {
                            if let Some(start) = value_start {
                                if start <= i {
                                    return Some(text[start..i].trim().to_string());
                                }
                            }
                        }
                    }
                    b',' if depth == 1 => {
                        if let Some(start) = value_start {
                            if start <= i {
                                return Some(text[start..i].trim().to_string());
                            }
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_into_fresh_and_existing_objects() {
        assert_eq!(
            json::merge_key("{}", "serve", "{\"a\": 1}").unwrap(),
            "{\"serve\": {\"a\": 1}}"
        );
        assert_eq!(
            json::merge_key("{\"x\": 2}", "serve", "{\"a\": 1}").unwrap(),
            "{\"x\": 2, \"serve\": {\"a\": 1}}"
        );
        assert!(json::merge_key("not json", "serve", "{}").is_none());
    }

    #[test]
    fn remerging_replaces_instead_of_duplicating() {
        let once = json::merge_key("{\"x\": 2}", "replica", "{\"a\": 1}").unwrap();
        let twice = json::merge_key(&once, "replica", "{\"a\": 9}").unwrap();
        assert_eq!(twice, "{\"x\": 2, \"replica\": {\"a\": 9}}");
        assert_eq!(twice.matches("\"replica\"").count(), 1);
    }

    #[test]
    fn merge_fields_overlays_without_erasing() {
        let existing = r#"{"serve": {"requests_per_sec": 100.0, "p99_us": 50.0}, "x": 2}"#;
        let merged = json::merge_fields(
            existing,
            "serve",
            &[
                ("p99_us", "60.0".to_string()),
                ("idle_10k_active_p99_us", "80.0".to_string()),
            ],
        )
        .unwrap();
        // Untouched fields survive, overlaid fields replace, new fields
        // append — and sibling top-level keys are unharmed.
        assert_eq!(
            json::number_at(&merged, "serve.requests_per_sec"),
            Some(100.0)
        );
        assert_eq!(json::number_at(&merged, "serve.p99_us"), Some(60.0));
        assert_eq!(
            json::number_at(&merged, "serve.idle_10k_active_p99_us"),
            Some(80.0)
        );
        assert_eq!(json::number_at(&merged, "x"), Some(2.0));
        assert_eq!(merged.matches("\"serve\"").count(), 1);
        // Absent key: created from scratch.
        let fresh = json::merge_fields("{}", "serve", &[("a", "1".to_string())]).unwrap();
        assert_eq!(json::number_at(&fresh, "serve.a"), Some(1.0));
        // Non-object under the key: replaced wholesale.
        let clobbered =
            json::merge_fields(r#"{"serve": 7}"#, "serve", &[("a", "1".to_string())]).unwrap();
        assert_eq!(json::number_at(&clobbered, "serve.a"), Some(1.0));
    }

    #[test]
    fn strip_handles_mid_object_keys_and_braces_in_strings() {
        let text = "{\"serve\": {\"label\": \"a } tricky { one\"}, \"x\": 2}";
        assert_eq!(
            json::strip_top_level_key(text, "serve").unwrap(),
            "{\"x\": 2}"
        );
        // A nested "serve" key is not top-level and survives.
        let nested = "{\"outer\": {\"serve\": 1}, \"x\": 2}";
        assert_eq!(json::strip_top_level_key(nested, "serve").unwrap(), nested);
    }

    #[test]
    fn number_at_walks_dotted_paths() {
        let text = r#"{"serve": {"requests_per_sec": 77088.7, "p50_us": 45.5}, "flat": 3}"#;
        assert_eq!(
            json::number_at(text, "serve.requests_per_sec"),
            Some(77088.7)
        );
        assert_eq!(json::number_at(text, "serve.p50_us"), Some(45.5));
        assert_eq!(json::number_at(text, "flat"), Some(3.0));
        assert_eq!(json::number_at(text, "serve.missing"), None);
        assert_eq!(json::number_at(text, "missing.path"), None);
        assert_eq!(
            json::number_at(text, "serve"),
            None,
            "objects are not numbers"
        );
        // Braces inside strings cannot derail the scan.
        let tricky = r#"{"label": "a } tricky { one", "n": 7}"#;
        assert_eq!(json::number_at(tricky, "n"), Some(7.0));
    }

    #[test]
    fn shard_vector_records_merge_cleanly() {
        // PR 9's `repro_shard` records carry a per-shard epoch *array* —
        // the scans must treat `[...]` as one value, not a place to find
        // top-level commas, and re-merging must still replace in place.
        let record = json::object(&[
            ("shards", "2".to_string()),
            (
                "shard_epochs",
                json::array(&["41".to_string(), "40".to_string()]),
            ),
            ("write_per_sec", json::num(12345.678901)),
        ]);
        let merged = json::merge_key(r#"{"serve": {"p99_us": 50.0}}"#, "shard", &record).unwrap();
        assert_eq!(json::number_at(&merged, "shard.shards"), Some(2.0));
        assert_eq!(json::number_at(&merged, "serve.p99_us"), Some(50.0));
        assert_eq!(
            json::top_level_value(
                &json::top_level_value(&merged, "shard").unwrap(),
                "shard_epochs"
            )
            .unwrap(),
            "[41, 40]"
        );
        // Replace the record: the epoch vector must not duplicate or
        // leak a stray element into the sibling keys.
        let record2 = json::object(&[(
            "shard_epochs",
            json::array(&["50".to_string(), "52".to_string()]),
        )]);
        let remerged = json::merge_key(&merged, "shard", &record2).unwrap();
        assert_eq!(remerged.matches("shard_epochs").count(), 1);
        assert!(remerged.contains("[50, 52]"));
        assert_eq!(json::number_at(&remerged, "serve.p99_us"), Some(50.0));
        // Overlay one facet of the record; the vector survives.
        let overlaid = json::merge_fields(
            &remerged,
            "shard",
            &[("gather_queries_per_sec", json::num(999.0))],
        )
        .unwrap();
        assert!(overlaid.contains("[50, 52]"));
        assert_eq!(
            json::number_at(&overlaid, "shard.gather_queries_per_sec"),
            Some(999.0)
        );
        // And the regression gate can still read scalars through it.
        assert_eq!(json::number_at(&overlaid, "shard.shard_epochs"), None);
    }

    #[test]
    fn table_is_aligned() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.000".into()],
                vec!["longer".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.000"));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f3(0.12), "0.120");
        assert_eq!(d3(0.25), "+0.250");
        assert_eq!(d3(-0.25), "-0.250");
    }
}
