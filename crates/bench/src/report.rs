//! Plain-text table rendering for the `repro_*` binaries.

/// Renders an aligned table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Formats a float with three decimals (the paper's precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a signed delta with three decimals.
pub fn d3(x: f64) -> String {
    format!("{x:+.3}")
}

/// Minimal JSON assembly for the `BENCH_*.json` perf-trajectory files —
/// no serde in the tree, and the shapes are flat enough to hand-write.
pub mod json {
    use std::fmt::Write;

    /// Escapes a string for a JSON literal.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }

    /// A JSON number from an `f64` (finite values only; millisecond and
    /// ratio payloads, 6 significant decimals).
    pub fn num(x: f64) -> String {
        debug_assert!(x.is_finite(), "JSON numbers must be finite");
        format!("{x:.6}")
    }

    /// An object from rendered `(key, value)` pairs (values must already
    /// be valid JSON).
    pub fn object(pairs: &[(&str, String)]) -> String {
        let body: Vec<String> = pairs
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", escape(k)))
            .collect();
        format!("{{{}}}", body.join(", "))
    }

    /// An array from rendered values.
    pub fn array(values: &[String]) -> String {
        format!("[{}]", values.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.000".into()],
                vec!["longer".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.000"));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f3(0.12), "0.120");
        assert_eq!(d3(0.25), "+0.250");
        assert_eq!(d3(-0.25), "-0.250");
    }
}
