//! # surrogate-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (§6). Each `repro_*` binary prints the same rows or
//! series the paper reports; the criterion benches cover the hot paths
//! (account generation, measures, store, queries).
//!
//! | Paper artifact | Driver | Binary |
//! |---|---|---|
//! | Table 1 | [`experiments::table1`] | `repro_table1` |
//! | Fig. 3 | [`experiments::fig3`] | `repro_fig3` |
//! | Fig. 7 | [`experiments::fig7`] | `repro_fig7` |
//! | Fig. 8 | [`experiments::fig8`] | `repro_fig8` |
//! | Fig. 9 | [`experiments::fig9`] | `repro_fig9` |
//! | Fig. 10 | [`experiments::fig10`] | `repro_fig10` |
//! | — (serving throughput, beyond the paper) | [`experiments::service`] | `repro_table1 --json` |
//! | — (wire-protocol serving edge, beyond the paper) | [`experiments::serve`] | `repro_serve` |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
