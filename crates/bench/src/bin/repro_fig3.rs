//! Regenerates the Fig. 3(b) / §4.1 worked numbers for the naïve account.

use surrogate_bench::experiments::fig3;
use surrogate_bench::report::{f3, render_table};

fn main() {
    let r = fig3::run();
    println!("Figure 3 / §4.1: naively protected account of Figure 1 (High-2 consumer)\n");
    let table = render_table(
        &["quantity", "paper", "ours"],
        &[
            vec!["%P(b')".into(), "0.100".into(), f3(r.pct_b)],
            vec!["%P(h')".into(), "0.300".into(), f3(r.pct_h)],
            vec!["PathUtility".into(), "0.130".into(), f3(r.path_utility)],
            vec![
                "NodeUtility".into(),
                format!("{:.3} (6/11)", 6.0 / 11.0),
                f3(r.node_utility),
            ],
        ],
    );
    println!("{table}");
}
