//! Regenerates Fig. 8: maximum utility at a given opacity rating, hide vs
//! surrogate, over the synthetic set.

use surrogate_bench::experiments::{fig8, fig9};
use surrogate_bench::report::{f3, render_table};
use surrogate_core::measures::OpacityModel;

fn main() {
    let configs = fig9::paper_configs(2011);
    eprintln!(
        "generating + protecting {} synthetic graphs…",
        configs.len()
    );
    let (cells, frontier) = fig8::run(&configs, OpacityModel::default(), 10);
    println!("Figure 8: maximum utility given an opacity rating (synthetic graphs)\n");
    let table = render_table(
        &[
            "opacity bin",
            "max Utility (Hide)",
            "max Utility (Surrogate)",
        ],
        &frontier
            .iter()
            .map(|bin| {
                vec![
                    format!("[{:.1},{:.1})", bin.opacity_lo, bin.opacity_hi),
                    bin.max_utility_hide.map(f3).unwrap_or_else(|| "-".into()),
                    bin.max_utility_surrogate
                        .map(f3)
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");

    // The tradeoff view behind the frontier: per protection level, the
    // mean (opacity, utility) point of each strategy.
    let fractions = [0.1, 0.3, 0.5, 0.7, 0.9];
    let mut rows = Vec::new();
    for &fraction in &fractions {
        let members: Vec<_> = cells
            .iter()
            .filter(|c| (c.protect_fraction - fraction).abs() < 1e-9)
            .collect();
        let mean = |pick: &dyn Fn(&&surrogate_bench::experiments::fig9::Fig9Cell) -> f64| {
            members.iter().map(pick).sum::<f64>() / members.len() as f64
        };
        rows.push(vec![
            format!("{:.0}%", fraction * 100.0),
            f3(mean(&|c| c.opacity_hide)),
            f3(mean(&|c| c.utility_hide)),
            f3(mean(&|c| c.opacity_surrogate)),
            f3(mean(&|c| c.utility_surrogate)),
        ]);
    }
    println!("Per-protection-level tradeoff (means over the connectivity sweep):\n");
    println!(
        "{}",
        render_table(
            &[
                "protect%",
                "Opacity(hide)",
                "Utility(hide)",
                "Opacity(sur)",
                "Utility(sur)",
            ],
            &rows,
        )
    );
    println!("Expected shape: at every opacity level the surrogate strategy offers at");
    println!("least the utility of hiding — \"it is better to use surrogates to");
    println!("maintain a desired opacity while sharing more useful graphs\" (§6.3).");
}
