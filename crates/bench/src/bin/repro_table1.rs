//! Regenerates Table 1: Path Utility and Opacity for the Fig. 2 accounts.
//!
//! With `--json <path>` it additionally runs a timed smoke pass over every
//! figure driver plus the `AccountService` serving benchmark and writes
//! the results as JSON — the per-PR perf-trajectory record (`BENCH_*.json`
//! at the repo root; CI's `bench-smoke` step regenerates it on every
//! push).

use std::time::Instant;

use surrogate_bench::experiments::{durable, fig10, fig3, fig7, fig8, fig9, service, table1};
use surrogate_bench::report::{f3, json, render_table};
use surrogate_core::measures::OpacityModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows = table1::run();
    println!("Table 1: Path Utility and Opacity measures for the Figure 2 accounts");
    println!("(opacity of edge f->g only; three opacity-model variants reported,");
    println!(" see DESIGN.md §3.1 item 2 for the Fig. 4 reconstruction)\n");
    let table = render_table(
        &[
            "account",
            "PathUtility(paper)",
            "PathUtility(ours)",
            "Opacity(paper)",
            "Opacity(default)",
            "Opacity(normalized)",
            "Opacity(fig5-literal)",
            "Opacity(fp-product)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scenario.to_string(),
                    format!("{:.2}", r.paper_path_utility),
                    f3(r.path_utility),
                    format!("{:.3}", r.paper_opacity),
                    f3(r.opacity_default),
                    f3(r.opacity_normalized),
                    f3(r.opacity_fig5),
                    f3(r.opacity_fp_product),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    println!("Expected shape: utilities match the paper to rounding; opacity is 0 for");
    println!("(a), 1 for (b), and strictly ordered (c) < (d) as in the paper.");

    if let Some(flag) = args.iter().position(|a| a == "--json") {
        let path = args
            .get(flag + 1)
            .unwrap_or_else(|| panic!("--json requires a path argument"));
        let json_text = bench_json(&rows);
        std::fs::write(path, json_text).expect("bench JSON writes");
        println!("\nper-figure timings + service throughput written to {path}");
    }
}

/// Times a closure, returning (milliseconds, result).
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t = Instant::now();
    let result = f();
    (t.elapsed().as_secs_f64() * 1e3, result)
}

/// One timed smoke pass over every figure driver (small but representative
/// configs) plus the serving benchmark, rendered as the BENCH json.
fn bench_json(rows: &[table1::Table1Row]) -> String {
    let model = OpacityModel::default;

    let table1_json: Vec<String> = rows
        .iter()
        .map(|r| {
            json::object(&[
                ("scenario", format!("\"{}\"", json::escape(r.scenario))),
                ("path_utility", json::num(r.path_utility)),
                ("opacity_normalized", json::num(r.opacity_normalized)),
            ])
        })
        .collect();

    let (table1_ms, _) = timed(table1::run);
    let (fig3_ms, _) = timed(fig3::run);
    let (fig7_ms, _) = timed(|| fig7::run(model()));
    // Figures 8/9 share the synthetic grid; a subset keeps the smoke fast.
    let grid: Vec<_> = fig9::paper_configs(2011).into_iter().take(6).collect();
    let (fig9_ms, _) = timed(|| fig9::run_grid(&grid, model()));
    let (fig8_ms, _) = timed(|| fig8::run(&grid, model(), 10));
    let (fig10_ms, fig10_result) = timed(|| {
        fig10::run(fig10::Fig10Config {
            stages: 8,
            width: 8,
            sensitive_fraction: 0.15,
            iterations: 3,
            seed: 17,
            simulated_db_roundtrip_us: None,
        })
    });
    let service_result = service::run(service::ServiceConfig::default());
    let durable_on = durable::run(durable::DurableConfig::smoke(true));
    let durable_off = durable::run(durable::DurableConfig::smoke(false));

    let durable_json = |r: &durable::DurableResult| {
        json::object(&[
            ("appends", r.appends.to_string()),
            ("elapsed_ms", json::num(r.elapsed_ms)),
            ("mean_append_us", json::num(r.mean_append_us)),
            ("appends_per_sec", json::num(r.appends_per_sec)),
            ("wal_bytes", r.wal_bytes.to_string()),
            ("segments", r.segments.to_string()),
            ("recovery_ms", json::num(r.recovery_ms)),
            ("recovered_clock", r.recovered_clock.to_string()),
        ])
    };

    json::object(&[
        (
            "generated_by",
            "\"repro_table1 --json (bench-smoke)\"".to_string(),
        ),
        ("table1", json::array(&table1_json)),
        (
            "figure_timings_ms",
            json::object(&[
                ("table1", json::num(table1_ms)),
                ("fig3", json::num(fig3_ms)),
                ("fig7", json::num(fig7_ms)),
                ("fig8_subset", json::num(fig8_ms)),
                ("fig9_subset", json::num(fig9_ms)),
                ("fig10", json::num(fig10_ms)),
            ]),
        ),
        // Latency keys carry a `_ms` suffix so the regression gate knows
        // they are lower-is-better; `repro_check` resolves older records
        // through the legacy `fig10_pipeline_ms.*` alias.
        (
            "fig10",
            json::object(&[
                ("db_access_ms", json::num(fig10_result.db_access_ms)),
                ("build_graph_ms", json::num(fig10_result.build_graph_ms)),
                ("protect_hide_ms", json::num(fig10_result.protect_hide_ms)),
                (
                    "protect_surrogate_ms",
                    json::num(fig10_result.protect_surrogate_ms),
                ),
                ("total_ms", json::num(fig10_result.total_ms)),
            ]),
        ),
        (
            "account_service",
            json::object(&[
                ("nodes", service_result.nodes.to_string()),
                ("edges", service_result.edges.to_string()),
                (
                    "cold_first_batch_ms",
                    json::num(service_result.cold_first_batch_ms),
                ),
                ("warm_queries", service_result.queries.to_string()),
                ("warm_rows", service_result.rows.to_string()),
                ("warm_elapsed_ms", json::num(service_result.warm_elapsed_ms)),
                (
                    "warm_queries_per_sec",
                    json::num(service_result.queries_per_sec),
                ),
            ]),
        ),
        (
            "durable_append",
            json::object(&[
                ("fsync_on", durable_json(&durable_on)),
                ("fsync_off", durable_json(&durable_off)),
            ]),
        ),
    ])
}
