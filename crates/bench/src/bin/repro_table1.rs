//! Regenerates Table 1: Path Utility and Opacity for the Fig. 2 accounts.

use surrogate_bench::experiments::table1;
use surrogate_bench::report::{f3, render_table};

fn main() {
    let rows = table1::run();
    println!("Table 1: Path Utility and Opacity measures for the Figure 2 accounts");
    println!("(opacity of edge f->g only; three opacity-model variants reported,");
    println!(" see DESIGN.md §3.1 item 2 for the Fig. 4 reconstruction)\n");
    let table = render_table(
        &[
            "account",
            "PathUtility(paper)",
            "PathUtility(ours)",
            "Opacity(paper)",
            "Opacity(default)",
            "Opacity(normalized)",
            "Opacity(fig5-literal)",
            "Opacity(fp-product)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scenario.to_string(),
                    format!("{:.2}", r.paper_path_utility),
                    f3(r.path_utility),
                    format!("{:.3}", r.paper_opacity),
                    f3(r.opacity_default),
                    f3(r.opacity_normalized),
                    f3(r.opacity_fig5),
                    f3(r.opacity_fp_product),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    println!("Expected shape: utilities match the paper to rounding; opacity is 0 for");
    println!("(a), 1 for (b), and strictly ordered (c) < (d) as in the paper.");
}
