//! Replication benchmark — cold-replica catch-up rate (WAL frames/s)
//! and aggregate query throughput across 1 primary + 2 read replicas,
//! the PR-over-PR replication record (`BENCH_PR5.json`).
//!
//! ```text
//! repro_replica                       full workload (50k ops, 120k queries)
//! repro_replica --smoke               small workload, same code paths (CI)
//! repro_replica --ops 10000           primary mutations before attach
//! repro_replica --replicas 2          read replicas in the topology
//! repro_replica --threads 6           closed-loop client threads
//! repro_replica --json BENCH_PR5.json record results (merging into an
//!                                     existing bench JSON object)
//! ```

use surrogate_bench::experiments::replica::{self, ReplicaBenchConfig};
use surrogate_bench::report::{json, render_table};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = if args.iter().any(|a| a == "--smoke") {
        ReplicaBenchConfig::smoke()
    } else {
        ReplicaBenchConfig::default()
    };
    if let Some(ops) = flag_value(&args, "--ops") {
        config.ops = ops.parse().expect("--ops takes a number");
    }
    if let Some(replicas) = flag_value(&args, "--replicas") {
        config.replicas = replicas.parse().expect("--replicas takes a number");
    }
    if let Some(threads) = flag_value(&args, "--threads") {
        config.threads = threads.parse().expect("--threads takes a number");
    }
    if let Some(requests) = flag_value(&args, "--requests") {
        config.requests = requests.parse().expect("--requests takes a number");
    }

    println!(
        "replication benchmark: {} ops on the primary, {} cold replica(s), then {} queries over {} threads\n",
        config.ops,
        config.replicas,
        config.requests,
        config.threads
    );

    let result = match replica::run(&config) {
        Ok(result) => result,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    };

    let table = render_table(
        &["metric", "value"],
        &[
            vec!["primary mutations (frames)".into(), result.ops.to_string()],
            vec!["replicas".into(), result.replicas.to_string()],
            vec![
                "cold catch-up (ms)".into(),
                format!("{:.1}", result.catchup_ms),
            ],
            vec![
                "catch-up frames/sec".into(),
                format!("{:.0}", result.catchup_frames_per_sec),
            ],
            vec!["client threads".into(), result.threads.to_string()],
            vec!["queries completed".into(), result.requests.to_string()],
            vec![
                "aggregate queries/sec (1+N)".into(),
                format!("{:.0}", result.aggregate_queries_per_sec),
            ],
            vec!["final replica lag".into(), result.final_lag.to_string()],
        ],
    );
    println!("{table}");

    if let Some(path) = flag_value(&args, "--json") {
        let record = json::object(&[
            ("ops", result.ops.to_string()),
            ("replicas", result.replicas.to_string()),
            ("catchup_ms", json::num(result.catchup_ms)),
            (
                "catchup_frames_per_sec",
                json::num(result.catchup_frames_per_sec),
            ),
            ("threads", result.threads.to_string()),
            ("requests", result.requests.to_string()),
            (
                "aggregate_queries_per_sec",
                json::num(result.aggregate_queries_per_sec),
            ),
            ("final_lag", result.final_lag.to_string()),
        ]);
        let text = match std::fs::read_to_string(&path) {
            // Merge into the shared bench record so one file carries
            // the whole per-PR perf trajectory.
            Ok(existing) => json::merge_key(existing.trim(), "replica", &record)
                .unwrap_or_else(|| panic!("{path} does not hold a JSON object to merge into")),
            Err(_) => format!("{{\"replica\": {record}}}"),
        };
        std::fs::write(&path, text).expect("bench JSON writes");
        println!("replica record written to {path}");
    }
}
