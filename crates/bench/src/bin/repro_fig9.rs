//! Regenerates Fig. 9: surrogate − hide differences in opacity (9a) and
//! utility (9b) across connectedness × protection fraction.

use surrogate_bench::experiments::fig9;
use surrogate_bench::report::{d3, render_table};
use surrogate_core::measures::OpacityModel;

fn main() {
    let configs = fig9::paper_configs(2011);
    eprintln!(
        "generating + protecting {} synthetic graphs…",
        configs.len()
    );
    let cells = fig9::run_grid(&configs, OpacityModel::default());

    // Rows = protection fraction (series); columns = connectivity steps.
    let fractions = [0.1, 0.3, 0.5, 0.7, 0.9];
    let headers: Vec<String> = std::iter::once("protect%".to_string())
        .chain(
            cells
                .iter()
                .take(10)
                .map(|c| format!("cp~{:.0}", c.achieved_connected_pairs)),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    for (title, use_opacity) in [
        ("Figure 9a: OpacitySurrogate - OpacityHide", true),
        ("Figure 9b: UtilitySurrogate - UtilityHide", false),
    ] {
        println!("{title}");
        println!("(columns = connectivity steps, labelled by the first series' achieved connected pairs)\n");
        let rows: Vec<Vec<String>> = fractions
            .iter()
            .enumerate()
            .map(|(fi, &fraction)| {
                let mut row = vec![format!("{:.0}%", fraction * 100.0)];
                for step in 0..10 {
                    let cell = &cells[fi * 10 + step];
                    let delta = if use_opacity {
                        cell.opacity_delta()
                    } else {
                        cell.utility_delta()
                    };
                    row.push(d3(delta));
                }
                row
            })
            .collect();
        println!("{}", render_table(&header_refs, &rows));
    }
    println!("Expected shape (§6.3): all values positive; the opacity advantage grows");
    println!("with the protected fraction; the utility advantage shrinks as more of");
    println!("the graph is protected.");
}
