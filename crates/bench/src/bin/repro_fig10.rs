//! Regenerates Fig. 10: time to produce a graph and transform it into a
//! protected account.

use surrogate_bench::experiments::fig10::{self, Fig10Config};
use surrogate_bench::report::render_table;

fn main() {
    let config = Fig10Config::default();
    let result = fig10::run(config);
    println!("Figure 10: time to produce and protect a provenance graph");
    println!(
        "(workload: {} node records, {} edge records, {} byte snapshot; median of {} runs)\n",
        result.nodes, result.edges, result.snapshot_bytes, config.iterations
    );
    let mut rows = vec![
        vec!["total (embedded)".into(), format!("{:.3}", result.total_ms)],
        vec![
            "DB access (embedded snapshot)".into(),
            format!("{:.3}", result.db_access_ms),
        ],
    ];
    if let Some(simulated) = result.db_access_simulated_ms {
        rows.push(vec![
            "DB access (simulated DBMS round-trips)".into(),
            format!("{:.3}", simulated),
        ]);
    }
    rows.extend([
        vec![
            "build graph".into(),
            format!("{:.3}", result.build_graph_ms),
        ],
        vec![
            "protect via hide".into(),
            format!("{:.3}", result.protect_hide_ms),
        ],
        vec![
            "protect via surrogate".into(),
            format!("{:.3}", result.protect_surrogate_ms),
        ],
    ]);
    let table = render_table(&["activity", "time (ms)"], &rows);
    println!("{table}");
    println!("Expected shape (§6.4): hiding is at most as expensive as surrogating,");
    println!("and against DBMS-backed storage (the paper's PLUS setup, simulated row)");
    println!("protection is subsumed by graph access and construction. Our embedded");
    println!("snapshot store is ~1000x faster than a 2008 DBMS, hence both rows.");
}
