//! Regenerates Fig. 7: surrogate − hide differences per motif.

use surrogate_bench::experiments::fig7;
use surrogate_bench::report::{d3, f3, render_table};
use surrogate_core::measures::OpacityModel;

fn main() {
    let rows = fig7::run(OpacityModel::default());
    println!("Figure 7: difference between surrogating and hiding the first edge of");
    println!("each motif (positive = surrogating better)\n");
    let table = render_table(
        &[
            "motif",
            "Utility(sur)",
            "Utility(hide)",
            "dUtility",
            "Opacity(sur)",
            "Opacity(hide)",
            "dOpacity",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.kind.name().to_string(),
                    f3(r.utility_surrogate),
                    f3(r.utility_hide),
                    d3(r.utility_delta()),
                    f3(r.opacity_surrogate),
                    f3(r.opacity_hide),
                    d3(r.opacity_delta()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    println!("Expected shape (§6.2): both deltas positive for Star, Chain, Diamond,");
    println!("Tree, Inverted Tree; exactly zero for Bipartite and Lattice.");
}
