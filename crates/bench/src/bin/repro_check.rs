//! Bench-regression gate: compares a freshly generated `BENCH_*.json`
//! against the committed record of the previous PR and fails (exit 1)
//! on excessive throughput regression — so the perf claims checked into
//! `BENCH_*.json` stay honest instead of silently decaying.
//!
//! ```text
//! repro_check --baseline BENCH_PR4.json --current BENCH_PR5.json
//!             [--max-regression 0.30]      allowed fractional drop
//!             [--keys a.b,c.d]             dotted throughput keys to gate
//! ```
//!
//! Default keys gate the `repro_table1` service throughput and the
//! `repro_serve` wire throughput (single-query and batched). A key
//! missing from the **baseline** is skipped with a note (older records
//! predate the metric); a key missing from the **current** record fails
//! (the metric stopped being measured — that is itself a regression).
//! Throughputs are higher-is-better: a current value below
//! `baseline * (1 - max_regression)` fails the gate.

use surrogate_bench::report::{json, render_table};

/// Throughput keys gated by default: service-layer and wire-layer.
const DEFAULT_KEYS: &[&str] = &[
    "account_service.warm_queries_per_sec",
    "serve.requests_per_sec",
    "serve.batch_queries_per_sec",
];

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = flag_value(&args, "--baseline").unwrap_or_else(|| {
        eprintln!("usage: repro_check --baseline <json> --current <json> [--max-regression 0.30] [--keys a.b,c.d]");
        std::process::exit(2);
    });
    let current_path = flag_value(&args, "--current").unwrap_or_else(|| {
        eprintln!("repro_check: missing --current <json>");
        std::process::exit(2);
    });
    let max_regression: f64 = flag_value(&args, "--max-regression")
        .map(|m| m.parse().expect("--max-regression takes a fraction"))
        .unwrap_or(0.30);
    let keys: Vec<String> = flag_value(&args, "--keys")
        .map(|k| k.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_else(|| DEFAULT_KEYS.iter().map(|s| s.to_string()).collect());

    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("repro_check: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(&baseline_path);
    let current = read(&current_path);

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for key in &keys {
        let (verdict, detail) = check_key(&baseline, &current, key, max_regression);
        if let Verdict::Fail = verdict {
            failures.push(key.clone());
        }
        rows.push(vec![key.clone(), verdict.label().to_string(), detail]);
    }

    println!(
        "bench gate: {current_path} vs {baseline_path} (allowed regression {:.0}%)\n",
        max_regression * 100.0
    );
    println!("{}", render_table(&["key", "verdict", "detail"], &rows));

    if failures.is_empty() {
        println!("gate passed");
    } else {
        eprintln!("gate FAILED on: {}", failures.join(", "));
        std::process::exit(1);
    }
}

enum Verdict {
    Pass,
    Skip,
    Fail,
}

impl Verdict {
    fn label(&self) -> &'static str {
        match self {
            Verdict::Pass => "ok",
            Verdict::Skip => "skipped",
            Verdict::Fail => "FAIL",
        }
    }
}

/// Gates one higher-is-better key.
fn check_key(baseline: &str, current: &str, key: &str, max_regression: f64) -> (Verdict, String) {
    let Some(base) = json::number_at(baseline, key) else {
        return (
            Verdict::Skip,
            "not in baseline (metric newer than the record)".to_string(),
        );
    };
    let Some(now) = json::number_at(current, key) else {
        return (Verdict::Fail, "missing from the current record".to_string());
    };
    let floor = base * (1.0 - max_regression);
    let delta = (now - base) / base * 100.0;
    let detail = format!("{now:.0} vs {base:.0} ({delta:+.1}%)");
    if now < floor {
        (Verdict::Fail, detail)
    } else {
        (Verdict::Pass, detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{"serve": {"requests_per_sec": 1000.0}, "flat": 500.0}"#;

    #[test]
    fn within_threshold_passes() {
        let current = r#"{"serve": {"requests_per_sec": 800.0}}"#;
        assert!(matches!(
            check_key(BASE, current, "serve.requests_per_sec", 0.30).0,
            Verdict::Pass
        ));
    }

    #[test]
    fn beyond_threshold_fails() {
        let current = r#"{"serve": {"requests_per_sec": 600.0}}"#;
        assert!(matches!(
            check_key(BASE, current, "serve.requests_per_sec", 0.30).0,
            Verdict::Fail
        ));
    }

    #[test]
    fn improvements_always_pass() {
        let current = r#"{"serve": {"requests_per_sec": 5000.0}}"#;
        assert!(matches!(
            check_key(BASE, current, "serve.requests_per_sec", 0.30).0,
            Verdict::Pass
        ));
    }

    #[test]
    fn new_metrics_skip_missing_metrics_fail() {
        let current = r#"{"replica": {"catchup_frames_per_sec": 9.0}}"#;
        assert!(matches!(
            check_key(BASE, current, "replica.catchup_frames_per_sec", 0.30).0,
            Verdict::Skip
        ));
        assert!(matches!(
            check_key(BASE, current, "serve.requests_per_sec", 0.30).0,
            Verdict::Fail
        ));
    }
}
