//! Bench-regression gate: compares a freshly generated `BENCH_*.json`
//! against the committed record of the previous PR and fails (exit 1)
//! on excessive regression — so the perf claims checked into
//! `BENCH_*.json` stay honest instead of silently decaying.
//!
//! ```text
//! repro_check --baseline BENCH_PR5.json --current BENCH_PR6.json
//!             [--max-regression 0.30]      allowed fractional drop
//!             [--keys a.b,c.d]             dotted metric keys to gate
//!             [--allow-missing-baseline]   skip keys the baseline predates
//! ```
//!
//! Default keys gate the `repro_table1` service throughput and
//! protection latency, and the `repro_serve` wire throughput
//! (single-query, batched, and the sealed-frame cache hit rate).
//!
//! The gate fails **loudly** on anything it cannot check: a key missing
//! (or non-numeric) in the *baseline* fails unless
//! `--allow-missing-baseline` explicitly waives it for that run; a key
//! missing from the *current* record always fails (the metric stopped
//! being measured — that is itself a regression); a record that is not a
//! JSON object exits 2. Keys ending in `_ms` / `_us` / `_ns` are
//! latencies and gate lower-is-better (current above
//! `baseline * (1 + max_regression)` fails); every other key is a
//! throughput and gates higher-is-better (current below
//! `baseline * (1 - max_regression)` fails).

use surrogate_bench::report::{json, render_table};

/// Metric keys gated by default: service layer, protection latency, and
/// wire layer.
const DEFAULT_KEYS: &[&str] = &[
    "account_service.warm_queries_per_sec",
    "fig10.protect_surrogate_ms",
    "serve.requests_per_sec",
    "serve.batch_queries_per_sec",
    "serve.frame_cache_hit_rate",
    // The readiness-multiplexing headline: active-set p99 with a 10k
    // mostly-idle fleet connected (repro_serve --connections 10000
    // --active-pct 1). `_us` suffix: gated lower-is-better.
    "serve.idle_10k_active_p99_us",
    // The sharding records: aggregate multi-primary write throughput
    // and scatter-gather traversal throughput (repro_shard), plus the
    // PR-10 failover drill (repro_shard --failover) — recovery wall
    // clock (lower-is-better) and post-failover gather throughput.
    "shard.write_per_sec",
    "shard.gather_queries_per_sec",
    "shard_failover.recovery_ms",
    "shard_failover.post_failover_queries_per_sec",
];

/// Legacy dotted paths for metrics that moved between records. The gate
/// falls back to the old path when the new one is absent, so an older
/// baseline keeps gating newer runs instead of being skipped.
const ALIASES: &[(&str, &str)] = &[(
    "fig10.protect_surrogate_ms",
    "fig10_pipeline_ms.protect_surrogate",
)];

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = flag_value(&args, "--baseline").unwrap_or_else(|| {
        eprintln!(
            "usage: repro_check --baseline <json> --current <json> [--max-regression 0.30] \
             [--keys a.b,c.d] [--allow-missing-baseline]"
        );
        std::process::exit(2);
    });
    let current_path = flag_value(&args, "--current").unwrap_or_else(|| {
        eprintln!("repro_check: missing --current <json>");
        std::process::exit(2);
    });
    let max_regression: f64 = flag_value(&args, "--max-regression")
        .map(|m| m.parse().expect("--max-regression takes a fraction"))
        .unwrap_or(0.30);
    let allow_missing_baseline = args.iter().any(|a| a == "--allow-missing-baseline");
    let keys: Vec<String> = flag_value(&args, "--keys")
        .map(|k| k.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_else(|| DEFAULT_KEYS.iter().map(|s| s.to_string()).collect());

    let read = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("repro_check: cannot read {path}: {e}");
            std::process::exit(2);
        });
        if !looks_like_object(&text) {
            eprintln!("repro_check: {path} is not a JSON object; regenerate the bench record");
            std::process::exit(2);
        }
        text
    };
    let baseline = read(&baseline_path);
    let current = read(&current_path);

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for key in &keys {
        let (verdict, detail) = check_key(
            &baseline,
            &current,
            key,
            max_regression,
            allow_missing_baseline,
        );
        if let Verdict::Fail = verdict {
            failures.push(key.clone());
        }
        rows.push(vec![key.clone(), verdict.label().to_string(), detail]);
    }

    println!(
        "bench gate: {current_path} vs {baseline_path} (allowed regression {:.0}%)\n",
        max_regression * 100.0
    );
    println!("{}", render_table(&["key", "verdict", "detail"], &rows));

    if failures.is_empty() {
        println!("gate passed");
    } else {
        eprintln!("gate FAILED on: {}", failures.join(", "));
        std::process::exit(1);
    }
}

/// Cheap structural sanity check — the extractor needs an object; any
/// other shape means the record generator broke and must not be skipped
/// over quietly.
fn looks_like_object(text: &str) -> bool {
    let t = text.trim();
    t.starts_with('{') && t.ends_with('}')
}

enum Verdict {
    Pass,
    Skip,
    Fail,
}

impl Verdict {
    fn label(&self) -> &'static str {
        match self {
            Verdict::Pass => "ok",
            Verdict::Skip => "skipped",
            Verdict::Fail => "FAIL",
        }
    }
}

/// Reads `key` out of a record, falling back to its legacy alias.
fn lookup(text: &str, key: &str) -> Option<f64> {
    json::number_at(text, key).or_else(|| {
        ALIASES
            .iter()
            .find(|(new, _)| *new == key)
            .and_then(|(_, old)| json::number_at(text, old))
    })
}

/// Gates one key; latencies (`_ms` / `_us` / `_ns` suffix) are
/// lower-is-better, everything else higher-is-better.
fn check_key(
    baseline: &str,
    current: &str,
    key: &str,
    max_regression: f64,
    allow_missing_baseline: bool,
) -> (Verdict, String) {
    let Some(base) = lookup(baseline, key) else {
        return if allow_missing_baseline {
            (
                Verdict::Skip,
                "not in baseline (waived by --allow-missing-baseline)".to_string(),
            )
        } else {
            (
                Verdict::Fail,
                "missing or non-numeric in the baseline record \
                 (pass --allow-missing-baseline to waive new metrics)"
                    .to_string(),
            )
        };
    };
    let Some(now) = lookup(current, key) else {
        return (Verdict::Fail, "missing from the current record".to_string());
    };
    let delta = (now - base) / base * 100.0;
    let lower_is_better = key.ends_with("_ms") || key.ends_with("_us") || key.ends_with("_ns");
    if lower_is_better {
        let ceiling = base * (1.0 + max_regression);
        let detail = format!("{now:.3} vs {base:.3} ({delta:+.1}%, lower is better)");
        if now > ceiling {
            (Verdict::Fail, detail)
        } else {
            (Verdict::Pass, detail)
        }
    } else {
        let floor = base * (1.0 - max_regression);
        let detail = format!("{now:.0} vs {base:.0} ({delta:+.1}%)");
        if now < floor {
            (Verdict::Fail, detail)
        } else {
            (Verdict::Pass, detail)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{"serve": {"requests_per_sec": 1000.0}, "flat": 500.0,
        "fig10_pipeline_ms": {"protect_surrogate": 0.600}}"#;

    #[test]
    fn within_threshold_passes() {
        let current = r#"{"serve": {"requests_per_sec": 800.0}}"#;
        assert!(matches!(
            check_key(BASE, current, "serve.requests_per_sec", 0.30, false).0,
            Verdict::Pass
        ));
    }

    #[test]
    fn beyond_threshold_fails() {
        let current = r#"{"serve": {"requests_per_sec": 600.0}}"#;
        assert!(matches!(
            check_key(BASE, current, "serve.requests_per_sec", 0.30, false).0,
            Verdict::Fail
        ));
    }

    #[test]
    fn improvements_always_pass() {
        let current = r#"{"serve": {"requests_per_sec": 5000.0}}"#;
        assert!(matches!(
            check_key(BASE, current, "serve.requests_per_sec", 0.30, false).0,
            Verdict::Pass
        ));
    }

    #[test]
    fn missing_baseline_keys_fail_loudly_unless_waived() {
        let current = r#"{"replica": {"catchup_frames_per_sec": 9.0}}"#;
        // Silent-skip regression: an absent baseline key used to pass
        // the gate without checking anything.
        let (verdict, detail) =
            check_key(BASE, current, "replica.catchup_frames_per_sec", 0.30, false);
        assert!(matches!(verdict, Verdict::Fail));
        assert!(detail.contains("--allow-missing-baseline"), "{detail}");
        // The escape hatch must be explicit, and skips rather than passes.
        assert!(matches!(
            check_key(BASE, current, "replica.catchup_frames_per_sec", 0.30, true).0,
            Verdict::Skip
        ));
        // A waiver never excuses a metric that stopped being measured.
        assert!(matches!(
            check_key(BASE, current, "serve.requests_per_sec", 0.30, true).0,
            Verdict::Fail
        ));
    }

    #[test]
    fn non_numeric_baseline_values_fail() {
        let base = r#"{"serve": {"requests_per_sec": "fast"}}"#;
        let current = r#"{"serve": {"requests_per_sec": 800.0}}"#;
        assert!(matches!(
            check_key(base, current, "serve.requests_per_sec", 0.30, false).0,
            Verdict::Fail
        ));
    }

    #[test]
    fn latency_keys_gate_lower_is_better() {
        let pass = r#"{"fig10": {"protect_surrogate_ms": 0.100}}"#;
        let fail = r#"{"fig10": {"protect_surrogate_ms": 0.900}}"#;
        // Baseline resolves through the legacy alias
        // `fig10_pipeline_ms.protect_surrogate` (= 0.600).
        assert!(matches!(
            check_key(BASE, pass, "fig10.protect_surrogate_ms", 0.30, false).0,
            Verdict::Pass
        ));
        assert!(matches!(
            check_key(BASE, fail, "fig10.protect_surrogate_ms", 0.30, false).0,
            Verdict::Fail
        ));
    }

    #[test]
    fn malformed_records_are_detected() {
        assert!(looks_like_object(r#"{"a": 1}"#));
        assert!(!looks_like_object("[]"));
        assert!(!looks_like_object("not json at all"));
        assert!(!looks_like_object(r#"{"a": 1"#));
    }
}
