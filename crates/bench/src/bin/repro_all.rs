//! Runs every table/figure reproduction in sequence (the input for
//! EXPERIMENTS.md).

use std::process::Command;

fn main() {
    let bins = [
        "repro_fig3",
        "repro_table1",
        "repro_fig7",
        "repro_fig8",
        "repro_fig9",
        "repro_fig10",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin directory");
    for bin in bins {
        println!("================================================================");
        println!("== {bin}");
        println!("================================================================");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
        println!();
    }
}
