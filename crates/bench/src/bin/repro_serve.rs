//! Closed-loop load test of the wire-protocol query server —
//! p50/p99/p99.9 round-trip latency and requests/sec, the PR-over-PR
//! serving-edge record (`BENCH_PR4.json` onward).
//!
//! ```text
//! repro_serve                         boot an in-process server, full load
//! repro_serve --smoke                 small workload, same code paths (CI)
//! repro_serve --addr 127.0.0.1:7654   drive an external `spgraph serve`
//! repro_serve --threads 4             closed-loop client threads
//! repro_serve --json BENCH_PR4.json   record results (merging into an
//!                                     existing bench JSON object)
//! repro_serve --connections 10000 --active-pct 1
//!                                     idle-fleet mode: open N connections,
//!                                     P% active, and compare the active
//!                                     set's p99 with and without the
//!                                     idle fleet (records
//!                                     serve.idle_10k_active_p99_us at
//!                                     N = 10000)
//! repro_serve --assert-fleet-p99-within 2.0
//!                                     exit 1 if the idle fleet costs the
//!                                     active set more than 2x p99
//! ```
//!
//! JSON records merge **field-by-field** into the `"serve"` object, so
//! an idle-fleet run against an external server does not erase the
//! in-process run's frame-cache counters (or vice versa).

use surrogate_bench::experiments::serve::{self, ServeConfig};
use surrogate_bench::report::{json, render_table};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = if args.iter().any(|a| a == "--smoke") {
        ServeConfig::smoke()
    } else {
        ServeConfig::default()
    };
    config.addr = flag_value(&args, "--addr");
    if let Some(threads) = flag_value(&args, "--threads") {
        config.threads = threads.parse().expect("--threads takes a number");
    }
    if let Some(requests) = flag_value(&args, "--requests") {
        config.requests = requests.parse().expect("--requests takes a number");
    }
    if let Some(depth) = flag_value(&args, "--depth") {
        config.max_depth = match depth.as_str() {
            "max" | "unbounded" => u32::MAX,
            n => n
                .parse()
                .expect("--depth takes a number, 'max', or 'unbounded'"),
        };
    }
    if let Some(connections) = flag_value(&args, "--connections") {
        config.connections = connections.parse().expect("--connections takes a number");
    }
    if let Some(pct) = flag_value(&args, "--active-pct") {
        config.active_pct = pct.parse().expect("--active-pct takes a percentage");
        assert!(
            config.active_pct > 0.0 && config.active_pct <= 100.0,
            "--active-pct must be in (0, 100]"
        );
    }
    if config.connections > 0 {
        return run_fleet_mode(&args, &config);
    }

    let mode = match &config.addr {
        Some(addr) => format!("external server at {addr}"),
        None => "in-process loopback server".to_string(),
    };
    println!(
        "closed-loop wire load test ({mode}): {} threads, {} single-query round trips + {} batched queries\n",
        config.threads, config.requests, config.batch_queries
    );

    let result = match serve::run(&config) {
        Ok(result) => result,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    };

    let f1 = |x: f64| format!("{x:.1}");
    let table = render_table(
        &["metric", "value"],
        &[
            vec!["served nodes".into(), result.nodes.to_string()],
            vec!["epoch".into(), result.epoch.to_string()],
            vec!["client threads".into(), result.threads.to_string()],
            vec![
                "single-query round trips".into(),
                result.requests.to_string(),
            ],
            vec!["rows received".into(), result.rows.to_string()],
            vec![
                "requests/sec".into(),
                format!("{:.0}", result.requests_per_sec),
            ],
            vec!["p50 latency (us)".into(), f1(result.p50_us)],
            vec!["p99 latency (us)".into(), f1(result.p99_us)],
            vec!["p99.9 latency (us)".into(), f1(result.p999_us)],
            vec!["max latency (us)".into(), f1(result.max_us)],
            vec![
                format!("batched ({}/frame) queries/sec", result.batch),
                format!("{:.0}", result.batch_queries_per_sec),
            ],
            vec![
                "sealed-frame cache hit rate".into(),
                match result.frame_cache_hit_rate {
                    Some(rate) => format!("{:.1}%", rate * 100.0),
                    None => "n/a (external server)".into(),
                },
            ],
        ],
    );
    println!("{table}");

    if let Some(path) = flag_value(&args, "--json") {
        let mut pairs = vec![
            ("nodes", result.nodes.to_string()),
            ("epoch", result.epoch.to_string()),
            ("threads", result.threads.to_string()),
            ("max_depth", config.max_depth.to_string()),
            ("requests", result.requests.to_string()),
            ("rows", result.rows.to_string()),
            ("elapsed_ms", json::num(result.elapsed_ms)),
            ("requests_per_sec", json::num(result.requests_per_sec)),
            ("p50_us", json::num(result.p50_us)),
            ("p99_us", json::num(result.p99_us)),
            ("p999_us", json::num(result.p999_us)),
            ("max_us", json::num(result.max_us)),
            ("batch", result.batch.to_string()),
            ("batch_queries", result.batch_queries.to_string()),
            (
                "batch_queries_per_sec",
                json::num(result.batch_queries_per_sec),
            ),
        ];
        // Cache counters exist only when the server ran in-process; an
        // absent key is the honest record for an external run (the gate
        // is told via --allow-missing-baseline on records that predate
        // the metric).
        if let (Some(hits), Some(misses), Some(rate)) = (
            result.frame_cache_hits,
            result.frame_cache_misses,
            result.frame_cache_hit_rate,
        ) {
            pairs.push(("frame_cache_hits", hits.to_string()));
            pairs.push(("frame_cache_misses", misses.to_string()));
            pairs.push(("frame_cache_hit_rate", json::num(rate)));
        }
        write_serve_record(&path, &pairs);
    }
}

/// Merges `pairs` into the `"serve"` object of the bench JSON at
/// `path` (field-by-field — see the module doc), creating the file if
/// it does not exist.
fn write_serve_record(path: &str, pairs: &[(&str, String)]) {
    let text = match std::fs::read_to_string(path) {
        // Merge into an existing bench record (repro_table1 --json
        // writes one flat object) so one file carries the whole
        // per-PR perf trajectory.
        Ok(existing) => json::merge_fields(existing.trim(), "serve", pairs)
            .unwrap_or_else(|| panic!("{path} does not hold a JSON object to merge into")),
        Err(_) => format!("{{\"serve\": {}}}", json::object(pairs)),
    };
    std::fs::write(path, text).expect("bench JSON writes");
    println!("serve record written to {path}");
}

/// The idle-fleet scenario: N open connections, P% active, and the
/// active set's tail latency measured with and without the idle fleet.
fn run_fleet_mode(args: &[String], config: &ServeConfig) {
    let mode = match &config.addr {
        Some(addr) => format!("external server at {addr}"),
        None => "in-process loopback server".to_string(),
    };
    println!(
        "idle-fleet wire load test ({mode}): {} connections, {:.1}% active\n",
        config.connections, config.active_pct
    );

    let fleet = match serve::run_fleet(config) {
        Ok(fleet) => fleet,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    };

    let f1 = |x: f64| format!("{x:.1}");
    let table = render_table(
        &["metric", "value"],
        &[
            vec!["open connections".into(), fleet.connections.to_string()],
            vec!["active connections".into(), fleet.active.to_string()],
            vec!["idle connections".into(), fleet.idle.to_string()],
            vec![
                "probes per active connection".into(),
                fleet.probes_per_conn.to_string(),
            ],
            vec![
                "baseline p50 (us, active set alone)".into(),
                f1(fleet.baseline_p50_us),
            ],
            vec![
                "baseline p99 (us, active set alone)".into(),
                f1(fleet.baseline_p99_us),
            ],
            vec![
                "loaded p50 (us, fleet open)".into(),
                f1(fleet.active_p50_us),
            ],
            vec![
                "loaded p99 (us, fleet open)".into(),
                f1(fleet.active_p99_us),
            ],
            vec![
                "loaded p99.9 (us, fleet open)".into(),
                f1(fleet.active_p999_us),
            ],
            vec![
                "loaded max (us, fleet open)".into(),
                f1(fleet.active_max_us),
            ],
            vec![
                "p99 ratio (loaded / baseline)".into(),
                format!("{:.2}x", fleet.p99_ratio()),
            ],
        ],
    );
    println!("{table}");

    if let Some(path) = flag_value(args, "--json") {
        let mut pairs = vec![
            ("fleet_connections", fleet.connections.to_string()),
            ("fleet_active", fleet.active.to_string()),
            ("fleet_probes_per_conn", fleet.probes_per_conn.to_string()),
            ("fleet_baseline_p50_us", json::num(fleet.baseline_p50_us)),
            ("fleet_baseline_p99_us", json::num(fleet.baseline_p99_us)),
            ("fleet_active_p50_us", json::num(fleet.active_p50_us)),
            ("fleet_active_p99_us", json::num(fleet.active_p99_us)),
            ("fleet_active_p999_us", json::num(fleet.active_p999_us)),
            ("fleet_active_max_us", json::num(fleet.active_max_us)),
        ];
        // The gated headline number carries its scenario in its name so
        // a differently-shaped run can never masquerade as the 10k
        // record.
        if fleet.connections == 10_000 {
            pairs.push(("idle_10k_active_p99_us", json::num(fleet.active_p99_us)));
        }
        write_serve_record(&path, &pairs);
    }

    if let Some(bound) = flag_value(args, "--assert-fleet-p99-within") {
        let bound: f64 = bound
            .parse()
            .expect("--assert-fleet-p99-within takes a ratio");
        let ratio = fleet.p99_ratio();
        if ratio > bound {
            eprintln!(
                "FAIL: idle fleet costs the active set {ratio:.2}x p99 (bound {bound:.2}x): \
                 {:.1}us vs {:.1}us baseline",
                fleet.active_p99_us, fleet.baseline_p99_us
            );
            std::process::exit(1);
        }
        println!("active-set p99 within {bound:.2}x of baseline ({ratio:.2}x)");
    }
}
