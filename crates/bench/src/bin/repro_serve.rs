//! Closed-loop load test of the wire-protocol query server — p50/p99
//! round-trip latency and requests/sec, the PR-over-PR serving-edge
//! record (`BENCH_PR4.json`).
//!
//! ```text
//! repro_serve                         boot an in-process server, full load
//! repro_serve --smoke                 small workload, same code paths (CI)
//! repro_serve --addr 127.0.0.1:7654   drive an external `spgraph serve`
//! repro_serve --threads 4             closed-loop client threads
//! repro_serve --json BENCH_PR4.json   record results (merging into an
//!                                     existing bench JSON object)
//! ```

use surrogate_bench::experiments::serve::{self, ServeConfig};
use surrogate_bench::report::{json, render_table};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = if args.iter().any(|a| a == "--smoke") {
        ServeConfig::smoke()
    } else {
        ServeConfig::default()
    };
    config.addr = flag_value(&args, "--addr");
    if let Some(threads) = flag_value(&args, "--threads") {
        config.threads = threads.parse().expect("--threads takes a number");
    }
    if let Some(requests) = flag_value(&args, "--requests") {
        config.requests = requests.parse().expect("--requests takes a number");
    }
    if let Some(depth) = flag_value(&args, "--depth") {
        config.max_depth = match depth.as_str() {
            "max" | "unbounded" => u32::MAX,
            n => n
                .parse()
                .expect("--depth takes a number, 'max', or 'unbounded'"),
        };
    }

    let mode = match &config.addr {
        Some(addr) => format!("external server at {addr}"),
        None => "in-process loopback server".to_string(),
    };
    println!(
        "closed-loop wire load test ({mode}): {} threads, {} single-query round trips + {} batched queries\n",
        config.threads, config.requests, config.batch_queries
    );

    let result = match serve::run(&config) {
        Ok(result) => result,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    };

    let f1 = |x: f64| format!("{x:.1}");
    let table = render_table(
        &["metric", "value"],
        &[
            vec!["served nodes".into(), result.nodes.to_string()],
            vec!["epoch".into(), result.epoch.to_string()],
            vec!["client threads".into(), result.threads.to_string()],
            vec![
                "single-query round trips".into(),
                result.requests.to_string(),
            ],
            vec!["rows received".into(), result.rows.to_string()],
            vec![
                "requests/sec".into(),
                format!("{:.0}", result.requests_per_sec),
            ],
            vec!["p50 latency (us)".into(), f1(result.p50_us)],
            vec!["p99 latency (us)".into(), f1(result.p99_us)],
            vec!["max latency (us)".into(), f1(result.max_us)],
            vec![
                format!("batched ({}/frame) queries/sec", result.batch),
                format!("{:.0}", result.batch_queries_per_sec),
            ],
        ],
    );
    println!("{table}");

    if let Some(path) = flag_value(&args, "--json") {
        let record = json::object(&[
            ("nodes", result.nodes.to_string()),
            ("epoch", result.epoch.to_string()),
            ("threads", result.threads.to_string()),
            ("max_depth", config.max_depth.to_string()),
            ("requests", result.requests.to_string()),
            ("rows", result.rows.to_string()),
            ("elapsed_ms", json::num(result.elapsed_ms)),
            ("requests_per_sec", json::num(result.requests_per_sec)),
            ("p50_us", json::num(result.p50_us)),
            ("p99_us", json::num(result.p99_us)),
            ("max_us", json::num(result.max_us)),
            ("batch", result.batch.to_string()),
            ("batch_queries", result.batch_queries.to_string()),
            (
                "batch_queries_per_sec",
                json::num(result.batch_queries_per_sec),
            ),
        ]);
        let text = match std::fs::read_to_string(&path) {
            // Merge into an existing bench record (repro_table1 --json
            // writes one flat object) so one file carries the whole
            // per-PR perf trajectory.
            Ok(existing) => merge_serve(existing.trim(), &record)
                .unwrap_or_else(|| panic!("{path} does not hold a JSON object to merge into")),
            Err(_) => format!("{{\"serve\": {record}}}"),
        };
        std::fs::write(&path, text).expect("bench JSON writes");
        println!("serve record written to {path}");
    }
}

/// Splices `"serve": record` into a flat JSON object's top level,
/// replacing any previous `"serve"` entry (re-running against the same
/// file must not produce duplicate keys).
fn merge_serve(existing: &str, record: &str) -> Option<String> {
    let without_old = strip_top_level_key(existing, "serve")?;
    let body = without_old
        .strip_prefix('{')?
        .strip_suffix('}')?
        .trim()
        .trim_end_matches(',')
        .trim_end();
    Some(if body.is_empty() {
        format!("{{\"serve\": {record}}}")
    } else {
        format!("{{{body}, \"serve\": {record}}}")
    })
}

/// Removes `"key": <value>` (and one adjacent comma) from the top level
/// of a JSON object, tracking strings and nesting so braces inside
/// labels cannot confuse the scan. Returns the input unchanged when the
/// key is absent; `None` when the text is not a JSON object.
fn strip_top_level_key(text: &str, key: &str) -> Option<String> {
    let text = text.trim();
    if !text.starts_with('{') || !text.ends_with('}') {
        return None;
    }
    let needle = format!("\"{key}\"");
    let bytes = text.as_bytes();
    let (mut depth, mut in_string, mut escaped) = (0i32, false, false);
    let mut key_start = None;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            match b {
                _ if escaped => escaped = false,
                b'\\' => escaped = true,
                b'"' => in_string = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => {
                    // A key, not a value: the quoted name must be
                    // followed by a colon.
                    if depth == 1
                        && key_start.is_none()
                        && text[i..].starts_with(&needle)
                        && text[i + needle.len()..].trim_start().starts_with(':')
                    {
                        key_start = Some(i);
                    }
                    in_string = true;
                }
                b'{' | b'[' => depth += 1,
                b'}' | b']' => {
                    depth -= 1;
                    if depth == 0 {
                        if let Some(start) = key_start {
                            // Key ran to the object's end: drop it and a
                            // comma before it.
                            let head = text[..start].trim_end().trim_end_matches(',');
                            return Some(format!("{}{}", head.trim_end(), &text[i..]));
                        }
                    }
                }
                b',' if depth == 1 => {
                    if let Some(start) = key_start {
                        // Value ended at this top-level comma: splice the
                        // entry (and this comma) out.
                        return Some(format!("{}{}", &text[..start], text[i + 1..].trim_start()));
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    Some(text.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_into_fresh_and_existing_objects() {
        assert_eq!(
            merge_serve("{}", "{\"a\": 1}").unwrap(),
            "{\"serve\": {\"a\": 1}}"
        );
        assert_eq!(
            merge_serve("{\"x\": 2}", "{\"a\": 1}").unwrap(),
            "{\"x\": 2, \"serve\": {\"a\": 1}}"
        );
        assert!(merge_serve("not json", "{}").is_none());
    }

    #[test]
    fn remerging_replaces_instead_of_duplicating() {
        let once = merge_serve("{\"x\": 2}", "{\"a\": 1}").unwrap();
        let twice = merge_serve(&once, "{\"a\": 9}").unwrap();
        assert_eq!(twice, "{\"x\": 2, \"serve\": {\"a\": 9}}");
        assert_eq!(twice.matches("\"serve\"").count(), 1);
    }

    #[test]
    fn strip_handles_mid_object_keys_and_braces_in_strings() {
        let text = "{\"serve\": {\"label\": \"a } tricky { one\"}, \"x\": 2}";
        assert_eq!(strip_top_level_key(text, "serve").unwrap(), "{\"x\": 2}");
        // A nested "serve" key is not top-level and survives.
        let nested = "{\"outer\": {\"serve\": 1}, \"x\": 2}";
        assert_eq!(strip_top_level_key(nested, "serve").unwrap(), nested);
    }
}
