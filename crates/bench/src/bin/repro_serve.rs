//! Closed-loop load test of the wire-protocol query server — p50/p99
//! round-trip latency and requests/sec, the PR-over-PR serving-edge
//! record (`BENCH_PR4.json`).
//!
//! ```text
//! repro_serve                         boot an in-process server, full load
//! repro_serve --smoke                 small workload, same code paths (CI)
//! repro_serve --addr 127.0.0.1:7654   drive an external `spgraph serve`
//! repro_serve --threads 4             closed-loop client threads
//! repro_serve --json BENCH_PR4.json   record results (merging into an
//!                                     existing bench JSON object)
//! ```

use surrogate_bench::experiments::serve::{self, ServeConfig};
use surrogate_bench::report::{json, render_table};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = if args.iter().any(|a| a == "--smoke") {
        ServeConfig::smoke()
    } else {
        ServeConfig::default()
    };
    config.addr = flag_value(&args, "--addr");
    if let Some(threads) = flag_value(&args, "--threads") {
        config.threads = threads.parse().expect("--threads takes a number");
    }
    if let Some(requests) = flag_value(&args, "--requests") {
        config.requests = requests.parse().expect("--requests takes a number");
    }
    if let Some(depth) = flag_value(&args, "--depth") {
        config.max_depth = match depth.as_str() {
            "max" | "unbounded" => u32::MAX,
            n => n
                .parse()
                .expect("--depth takes a number, 'max', or 'unbounded'"),
        };
    }

    let mode = match &config.addr {
        Some(addr) => format!("external server at {addr}"),
        None => "in-process loopback server".to_string(),
    };
    println!(
        "closed-loop wire load test ({mode}): {} threads, {} single-query round trips + {} batched queries\n",
        config.threads, config.requests, config.batch_queries
    );

    let result = match serve::run(&config) {
        Ok(result) => result,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    };

    let f1 = |x: f64| format!("{x:.1}");
    let table = render_table(
        &["metric", "value"],
        &[
            vec!["served nodes".into(), result.nodes.to_string()],
            vec!["epoch".into(), result.epoch.to_string()],
            vec!["client threads".into(), result.threads.to_string()],
            vec![
                "single-query round trips".into(),
                result.requests.to_string(),
            ],
            vec!["rows received".into(), result.rows.to_string()],
            vec![
                "requests/sec".into(),
                format!("{:.0}", result.requests_per_sec),
            ],
            vec!["p50 latency (us)".into(), f1(result.p50_us)],
            vec!["p99 latency (us)".into(), f1(result.p99_us)],
            vec!["max latency (us)".into(), f1(result.max_us)],
            vec![
                format!("batched ({}/frame) queries/sec", result.batch),
                format!("{:.0}", result.batch_queries_per_sec),
            ],
            vec![
                "sealed-frame cache hit rate".into(),
                match result.frame_cache_hit_rate {
                    Some(rate) => format!("{:.1}%", rate * 100.0),
                    None => "n/a (external server)".into(),
                },
            ],
        ],
    );
    println!("{table}");

    if let Some(path) = flag_value(&args, "--json") {
        let mut pairs = vec![
            ("nodes", result.nodes.to_string()),
            ("epoch", result.epoch.to_string()),
            ("threads", result.threads.to_string()),
            ("max_depth", config.max_depth.to_string()),
            ("requests", result.requests.to_string()),
            ("rows", result.rows.to_string()),
            ("elapsed_ms", json::num(result.elapsed_ms)),
            ("requests_per_sec", json::num(result.requests_per_sec)),
            ("p50_us", json::num(result.p50_us)),
            ("p99_us", json::num(result.p99_us)),
            ("max_us", json::num(result.max_us)),
            ("batch", result.batch.to_string()),
            ("batch_queries", result.batch_queries.to_string()),
            (
                "batch_queries_per_sec",
                json::num(result.batch_queries_per_sec),
            ),
        ];
        // Cache counters exist only when the server ran in-process; an
        // absent key is the honest record for an external run (the gate
        // is told via --allow-missing-baseline on records that predate
        // the metric).
        if let (Some(hits), Some(misses), Some(rate)) = (
            result.frame_cache_hits,
            result.frame_cache_misses,
            result.frame_cache_hit_rate,
        ) {
            pairs.push(("frame_cache_hits", hits.to_string()));
            pairs.push(("frame_cache_misses", misses.to_string()));
            pairs.push(("frame_cache_hit_rate", json::num(rate)));
        }
        let record = json::object(&pairs);
        let text = match std::fs::read_to_string(&path) {
            // Merge into an existing bench record (repro_table1 --json
            // writes one flat object) so one file carries the whole
            // per-PR perf trajectory.
            Ok(existing) => json::merge_key(existing.trim(), "serve", &record)
                .unwrap_or_else(|| panic!("{path} does not hold a JSON object to merge into")),
            Err(_) => format!("{{\"serve\": {record}}}"),
        };
        std::fs::write(&path, text).expect("bench JSON writes");
        println!("serve record written to {path}");
    }
}
