//! Sharding benchmark — aggregate multi-primary write throughput and
//! scatter-gather traversal throughput over a partitioned deployment,
//! the PR-over-PR sharding record (`BENCH_PR9.json`).
//!
//! ```text
//! repro_shard                         full workload (2 shards, 25k writes each)
//! repro_shard --smoke                 small workload, same code paths (CI)
//! repro_shard --shards 4              shard primaries in the deployment
//! repro_shard --ops 10000             wire writes per shard
//! repro_shard --threads 6             closed-loop reader threads
//! repro_shard --requests 50000        traversals against the gather
//! repro_shard --json BENCH_PR9.json   record results (merging into an
//!                                     existing bench JSON object)
//! repro_shard --failover              replicated-shard failover drill:
//!                                     kill shard 0's primary, promote
//!                                     its replica, record the recovery
//!                                     time and post-failover
//!                                     scatter-gather throughput under
//!                                     the `shard_failover` key
//! ```

use surrogate_bench::experiments::shard::{self, ShardBenchConfig};
use surrogate_bench::report::{json, render_table};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = if args.iter().any(|a| a == "--smoke") {
        ShardBenchConfig::smoke()
    } else {
        ShardBenchConfig::default()
    };
    if let Some(shards) = flag_value(&args, "--shards") {
        config.shards = shards.parse().expect("--shards takes a number");
    }
    if let Some(ops) = flag_value(&args, "--ops") {
        config.ops_per_shard = ops.parse().expect("--ops takes a number");
    }
    if let Some(threads) = flag_value(&args, "--threads") {
        config.threads = threads.parse().expect("--threads takes a number");
    }
    if let Some(requests) = flag_value(&args, "--requests") {
        config.requests = requests.parse().expect("--requests takes a number");
    }

    if args.iter().any(|a| a == "--failover") {
        run_failover_mode(&args, &config);
        return;
    }

    println!(
        "sharding benchmark: {} shard(s) x {} wire writes, then {} traversals over {} threads through a gather\n",
        config.shards, config.ops_per_shard, config.requests, config.threads
    );

    let result = match shard::run(&config) {
        Ok(result) => result,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    };

    let table = render_table(
        &["metric", "value"],
        &[
            vec!["shards".into(), result.shards.to_string()],
            vec!["wire writes (total)".into(), result.ops.to_string()],
            vec![
                "aggregate writes/sec".into(),
                format!("{:.0}", result.write_per_sec),
            ],
            vec![
                "gather catch-up (ms)".into(),
                format!("{:.1}", result.gather_catchup_ms),
            ],
            vec!["reader threads".into(), result.threads.to_string()],
            vec!["traversals completed".into(), result.requests.to_string()],
            vec![
                "scatter-gather queries/sec".into(),
                format!("{:.0}", result.gather_queries_per_sec),
            ],
            vec![
                "final shard epochs".into(),
                format!("{:?}", result.shard_epochs),
            ],
        ],
    );
    println!("{table}");

    if let Some(path) = flag_value(&args, "--json") {
        let record = json::object(&[
            ("shards", result.shards.to_string()),
            ("ops", result.ops.to_string()),
            ("write_per_sec", json::num(result.write_per_sec)),
            ("gather_catchup_ms", json::num(result.gather_catchup_ms)),
            ("threads", result.threads.to_string()),
            ("requests", result.requests.to_string()),
            (
                "gather_queries_per_sec",
                json::num(result.gather_queries_per_sec),
            ),
            (
                "shard_epochs",
                json::array(
                    &result
                        .shard_epochs
                        .iter()
                        .map(|e| e.to_string())
                        .collect::<Vec<_>>(),
                ),
            ),
        ]);
        let text = match std::fs::read_to_string(&path) {
            // Merge into the shared bench record so one file carries
            // the whole per-PR perf trajectory.
            Ok(existing) => json::merge_key(existing.trim(), "shard", &record)
                .unwrap_or_else(|| panic!("{path} does not hold a JSON object to merge into")),
            Err(_) => format!("{{\"shard\": {record}}}"),
        };
        std::fs::write(&path, text).expect("bench JSON writes");
        println!("shard record written to {path}");
    }
}

/// The `--failover` drill: replicated shards, a kill, a promotion, and
/// the recovery/throughput record under the `shard_failover` key.
fn run_failover_mode(args: &[String], config: &ShardBenchConfig) {
    println!(
        "replicated-shard failover drill: {} shard(s) x 1 replica, {} wire writes per shard, \
         kill shard 0's primary, promote, then {} traversals over {} threads\n",
        config.shards, config.ops_per_shard, config.requests, config.threads
    );

    let result = match shard::run_failover(config) {
        Ok(result) => result,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    };

    let table = render_table(
        &["metric", "value"],
        &[
            vec![
                "shards (each + 1 replica)".into(),
                result.shards.to_string(),
            ],
            vec!["wire writes before the kill".into(), result.ops.to_string()],
            vec!["recovery (ms)".into(), format!("{:.1}", result.recovery_ms)],
            vec!["promoted term".into(), result.promoted_term.to_string()],
            vec!["reader threads".into(), result.threads.to_string()],
            vec!["traversals completed".into(), result.requests.to_string()],
            vec![
                "post-failover queries/sec".into(),
                format!("{:.0}", result.post_failover_queries_per_sec),
            ],
            vec![
                "final shard epochs".into(),
                format!("{:?}", result.shard_epochs),
            ],
        ],
    );
    println!("{table}");

    if let Some(path) = flag_value(args, "--json") {
        let record = json::object(&[
            ("shards", result.shards.to_string()),
            ("ops", result.ops.to_string()),
            ("recovery_ms", json::num(result.recovery_ms)),
            ("promoted_term", result.promoted_term.to_string()),
            ("threads", result.threads.to_string()),
            ("requests", result.requests.to_string()),
            (
                "post_failover_queries_per_sec",
                json::num(result.post_failover_queries_per_sec),
            ),
            (
                "shard_epochs",
                json::array(
                    &result
                        .shard_epochs
                        .iter()
                        .map(|e| e.to_string())
                        .collect::<Vec<_>>(),
                ),
            ),
        ]);
        let text = match std::fs::read_to_string(&path) {
            Ok(existing) => json::merge_key(existing.trim(), "shard_failover", &record)
                .unwrap_or_else(|| panic!("{path} does not hold a JSON object to merge into")),
            Err(_) => format!("{{\"shard_failover\": {record}}}"),
        };
        std::fs::write(&path, text).expect("bench JSON writes");
        println!("shard_failover record written to {path}");
    }
}
