//! Fig. 8: maximum utility attainable at a given opacity rating, for the
//! hide and surrogate strategies across the synthetic set.
//!
//! Each synthetic cell yields one `(opacity, utility)` point per strategy;
//! the figure plots the per-opacity-bin maxima — the strategy's
//! utility/opacity frontier.

use surrogate_core::measures::OpacityModel;

use super::fig9::{run_grid, Fig9Cell};
use graphgen::SyntheticConfig;

/// A frontier bin.
#[derive(Debug, Clone)]
pub struct FrontierBin {
    /// Inclusive lower edge of the opacity bin.
    pub opacity_lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub opacity_hi: f64,
    /// Best utility the hide strategy achieved in this bin, if any point
    /// landed here.
    pub max_utility_hide: Option<f64>,
    /// Best utility the surrogate strategy achieved in this bin.
    pub max_utility_surrogate: Option<f64>,
}

/// Bins the grid's `(opacity, utility)` points into `bins` opacity bins.
pub fn frontier(cells: &[Fig9Cell], bins: usize) -> Vec<FrontierBin> {
    assert!(bins >= 1);
    let mut result: Vec<FrontierBin> = (0..bins)
        .map(|i| FrontierBin {
            opacity_lo: i as f64 / bins as f64,
            opacity_hi: (i + 1) as f64 / bins as f64,
            max_utility_hide: None,
            max_utility_surrogate: None,
        })
        .collect();
    let bin_of = |opacity: f64| ((opacity * bins as f64) as usize).min(bins - 1);
    for cell in cells {
        let hide_bin = bin_of(cell.opacity_hide);
        let slot = &mut result[hide_bin].max_utility_hide;
        *slot = Some(slot.map_or(cell.utility_hide, |u: f64| u.max(cell.utility_hide)));
        let sur_bin = bin_of(cell.opacity_surrogate);
        let slot = &mut result[sur_bin].max_utility_surrogate;
        *slot = Some(slot.map_or(cell.utility_surrogate, |u: f64| {
            u.max(cell.utility_surrogate)
        }));
    }
    result
}

/// Runs the synthetic grid and bins the frontier.
pub fn run(
    configs: &[SyntheticConfig],
    model: OpacityModel,
    bins: usize,
) -> (Vec<Fig9Cell>, Vec<FrontierBin>) {
    let cells = run_grid(configs, model);
    let frontier = frontier(&cells, bins);
    (cells, frontier)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_cell(op_h: f64, u_h: f64, op_s: f64, u_s: f64) -> Fig9Cell {
        Fig9Cell {
            target_connected_pairs: 0.0,
            achieved_connected_pairs: 0.0,
            protect_fraction: 0.0,
            edges: 0,
            utility_surrogate: u_s,
            utility_hide: u_h,
            opacity_surrogate: op_s,
            opacity_hide: op_h,
        }
    }

    #[test]
    fn frontier_takes_bin_maxima() {
        let cells = vec![
            fake_cell(0.05, 0.3, 0.95, 0.8),
            fake_cell(0.07, 0.5, 0.92, 0.6),
            fake_cell(0.55, 0.2, 0.55, 0.4),
        ];
        let bins = frontier(&cells, 10);
        assert_eq!(bins.len(), 10);
        assert_eq!(bins[0].max_utility_hide, Some(0.5));
        assert_eq!(bins[9].max_utility_surrogate, Some(0.8));
        assert_eq!(bins[5].max_utility_hide, Some(0.2));
        assert_eq!(bins[5].max_utility_surrogate, Some(0.4));
        assert_eq!(bins[3].max_utility_hide, None);
    }

    #[test]
    fn opacity_one_lands_in_last_bin() {
        let cells = vec![fake_cell(1.0, 0.1, 1.0, 0.2)];
        let bins = frontier(&cells, 4);
        assert_eq!(bins[3].max_utility_hide, Some(0.1));
        assert_eq!(bins[3].max_utility_surrogate, Some(0.2));
    }
}
