//! Table 1: Path Utility and Opacity of the Fig. 2 protected accounts.

use graphgen::{Figure2, Figure2Scenario};
use surrogate_core::measures::{edge_opacity, path_utility, OpacityModel};

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Scenario label, `"(a)"` … `"(d)"`.
    pub scenario: &'static str,
    /// PathUtility reported by the paper.
    pub paper_path_utility: f64,
    /// PathUtility measured here.
    pub path_utility: f64,
    /// Opacity of `f→g` reported by the paper.
    pub paper_opacity: f64,
    /// Opacity under the default (raw directional) model.
    pub opacity_default: f64,
    /// Opacity under the candidate-normalized directional model — the
    /// closest fit to the paper's absolute values.
    pub opacity_normalized: f64,
    /// Opacity under the literal Fig. 5 reading.
    pub opacity_fig5: f64,
    /// Opacity under the FP-product combiner.
    pub opacity_fp_product: f64,
}

/// Regenerates Table 1.
pub fn run() -> Vec<Table1Row> {
    let paper = [
        (Figure2Scenario::A, 0.38, 0.0),
        (Figure2Scenario::B, 0.27, 1.0),
        (Figure2Scenario::C, 0.13, 0.882),
        (Figure2Scenario::D, 0.27, 0.948),
    ];
    paper
        .iter()
        .map(|&(scenario, paper_pu, paper_op)| {
            let fig = Figure2::new(scenario);
            let account = fig.account().expect("paper scenario generates");
            let edge = fig.base.sensitive_edge();
            Table1Row {
                scenario: scenario.label(),
                paper_path_utility: paper_pu,
                path_utility: path_utility(&fig.base.graph, &account),
                paper_opacity: paper_op,
                opacity_default: edge_opacity(&account, OpacityModel::directional(), edge),
                opacity_normalized: edge_opacity(
                    &account,
                    OpacityModel::directional_normalized(),
                    edge,
                ),
                opacity_fig5: edge_opacity(&account, OpacityModel::figure5_literal(), edge),
                opacity_fp_product: edge_opacity(&account, OpacityModel::fp_product(), edge),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_utilities_match_paper_to_two_decimals() {
        for row in run() {
            assert!(
                (row.path_utility - row.paper_path_utility).abs() < 0.005,
                "{}: {} vs paper {}",
                row.scenario,
                row.path_utility,
                row.paper_path_utility
            );
        }
    }

    #[test]
    fn opacity_extremes_are_exact_and_order_matches() {
        let rows = run();
        assert_eq!(rows[0].opacity_default, 0.0, "(a): edge present");
        assert_eq!(rows[1].opacity_default, 1.0, "(b): endpoint missing");
        // Paper order: (a) 0 < (c) .882 < (d) .948 < (b) 1, under both the
        // default and the normalized variant.
        for pick in [
            |r: &Table1Row| r.opacity_default,
            |r: &Table1Row| r.opacity_normalized,
        ] {
            assert!(pick(&rows[0]) < pick(&rows[2]));
            assert!(
                pick(&rows[2]) < pick(&rows[3]),
                "(c) {} must be below (d) {}",
                pick(&rows[2]),
                pick(&rows[3])
            );
            assert!(pick(&rows[3]) < pick(&rows[1]));
        }
    }

    #[test]
    fn normalized_variant_approaches_paper_absolutes() {
        let rows = run();
        assert!(
            (rows[2].opacity_normalized - 0.882).abs() < 0.05,
            "(c): {}",
            rows[2].opacity_normalized
        );
        assert!(
            (rows[3].opacity_normalized - 0.948).abs() < 0.02,
            "(d): {}",
            rows[3].opacity_normalized
        );
    }
}
