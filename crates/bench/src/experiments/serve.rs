//! Closed-loop load generation against the wire-protocol query server —
//! the ROADMAP's serving-at-scale metric, measured at the network edge
//! instead of in-process.
//!
//! Each client thread owns one connection and issues single-query round
//! trips as fast as the server answers (closed loop: offered load equals
//! served load, so latency percentiles are honest). A second phase sends
//! the same queries in [`ServeConfig::batch`]-sized `Batch` frames to
//! show what amortizing the round trip buys.
//!
//! Two modes: in-process (`addr: None` — boot a [`server::Server`] over
//! a synthetic workflow store on a loopback port) or external
//! (`addr: Some` — e.g. CI's `spgraph serve` smoke, with connect
//! retries while the server boots).

use std::sync::Arc;
use std::time::{Duration, Instant};

use plus_store::{AccountService, Direction, QueryRequest, RecordId};
use server::{Client, Server, ServerConfig};
use surrogate_core::account::Strategy;

use super::fig10::{build_store, Fig10Config};

/// Workload shape for the wire-serving benchmark.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address of an already-running server; `None` boots one
    /// in-process on a loopback port.
    pub addr: Option<String>,
    /// Closed-loop client threads (one connection each).
    pub threads: usize,
    /// Total single-query round trips across all threads.
    pub requests: usize,
    /// Queries per frame in the batched phase.
    pub batch: usize,
    /// Total queries in the batched phase.
    pub batch_queries: usize,
    /// Hop bound per query. The default (4) is an interactive lineage
    /// probe; pass `u32::MAX` for whole-graph scans (roughly 2-3x more
    /// rows per response on the default workload, and proportionally
    /// fewer round trips per second).
    pub max_depth: u32,
    /// Workflow stages of the synthetic store (in-process mode).
    pub stages: usize,
    /// Artifacts per stage (in-process mode).
    pub width: usize,
    /// Fraction of sensitive nodes (in-process mode).
    pub sensitive_fraction: f64,
    /// RNG seed (in-process mode).
    pub seed: u64,
    /// Total open connections for the idle-fleet phase ([`run_fleet`]);
    /// `0` disables it. The interesting shape is many mostly-idle
    /// consumers: 10 000 connections with `active_pct` 1.0 is the
    /// ROADMAP's readiness-multiplexing scenario.
    pub connections: usize,
    /// Percent of the fleet that actively issues queries (the rest hold
    /// their handshaken connection open and send nothing).
    pub active_pct: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: None,
            threads: 4,
            requests: 200_000,
            batch: 32,
            batch_queries: 400_000,
            max_depth: 4,
            stages: 12,
            width: 12,
            sensitive_fraction: 0.15,
            seed: 23,
            connections: 0,
            active_pct: 1.0,
        }
    }
}

impl ServeConfig {
    /// The CI smoke shape: small enough for a debug build on a busy
    /// runner, same code paths.
    pub fn smoke() -> Self {
        Self {
            requests: 4_000,
            batch_queries: 8_000,
            ..Self::default()
        }
    }
}

/// Measured wire-serving performance.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// Node records served (from the handshake).
    pub nodes: u64,
    /// The server epoch every response carried.
    pub epoch: u64,
    /// Client threads.
    pub threads: usize,
    /// Single-query round trips completed.
    pub requests: usize,
    /// Rows received across all single queries.
    pub rows: usize,
    /// Single-query phase wall clock, milliseconds.
    pub elapsed_ms: f64,
    /// Single-query round trips per second (all threads).
    pub requests_per_sec: f64,
    /// Median single-query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile single-query latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile single-query latency, microseconds — the tail
    /// admission control is supposed to protect.
    pub p999_us: f64,
    /// Worst observed single-query latency, microseconds.
    pub max_us: f64,
    /// Queries per frame in the batched phase.
    pub batch: usize,
    /// Queries completed in the batched phase.
    pub batch_queries: usize,
    /// Batched-phase queries per second (all threads).
    pub batch_queries_per_sec: f64,
    /// Sealed-frame cache hits over the whole run. In-process mode only:
    /// an external server's counters are not observable from here.
    pub frame_cache_hits: Option<u64>,
    /// Sealed-frame cache misses over the whole run (in-process only).
    pub frame_cache_misses: Option<u64>,
    /// `hits / (hits + misses)` — how much of the load was served as
    /// pre-sealed bytes (in-process only).
    pub frame_cache_hit_rate: Option<f64>,
}

/// One load thread's phase-1 outcome: per-request latencies + row count.
type ThreadSamples = Result<(Vec<u64>, usize), String>;

/// Connects with retries, so a server still booting (CI smoke) is not a
/// failure.
fn connect_patiently(addr: &str) -> Result<Client, String> {
    let mut last = String::new();
    for _ in 0..100 {
        match Client::connect(addr, "loadgen", &[]) {
            Ok(client) => return Ok(client),
            Err(e) => last = e.to_string(),
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    Err(format!("cannot reach {addr} after 10s: {last}"))
}

/// In-process mode owns the server for the duration of the run and
/// keeps a service handle so the sealed-frame cache counters can be
/// reported after the load; external mode is just the address.
type Harness = (Option<Server>, String, Option<Arc<AccountService>>);

fn boot(config: &ServeConfig) -> Result<Harness, String> {
    match &config.addr {
        Some(addr) => Ok((None, addr.clone(), None)),
        None => {
            let store = build_store(Fig10Config {
                stages: config.stages,
                width: config.width,
                sensitive_fraction: config.sensitive_fraction,
                seed: config.seed,
                iterations: 1,
                simulated_db_roundtrip_us: None,
            });
            let service = Arc::new(AccountService::new(Arc::new(store)));
            // The server sizes its event-loop shards from the machine
            // (`ServerConfig::default`), exactly as `spgraph serve`
            // does; `config.threads` counts *client* threads. Oversizing
            // shards to the client count thrashes small hosts.
            let server = Server::bind(service.clone(), "127.0.0.1:0", &ServerConfig::default())
                .map_err(|e| format!("cannot bind loopback: {e}"))?;
            let addr = server.local_addr().to_string();
            Ok((Some(server), addr, Some(service)))
        }
    }
}

/// Runs the closed-loop load test. Errors are strings: this is a
/// harness, and every failure is terminal for the run.
pub fn run(config: &ServeConfig) -> Result<ServeResult, String> {
    let (_server, addr, service) = boot(config)?;

    let probe = connect_patiently(&addr)?;
    let nodes = probe.hello().nodes.max(1);
    let epoch = probe.hello().epoch;
    drop(probe);

    let request = |i: usize| {
        let direction = if i % 2 == 0 {
            Direction::Backward
        } else {
            Direction::Forward
        };
        QueryRequest::new(
            RecordId((i as u64 % nodes) as u32),
            direction,
            config.max_depth,
            Strategy::Surrogate,
        )
    };

    // --- Phase 1: single-query round trips, per-request latencies -----
    let per_thread = config.requests / config.threads.max(1);
    // Every thread connects and warms up *before* the clock starts;
    // the barrier keeps connect retries and cold account generation
    // out of the timed window (the +1 participant is the timer below).
    let start_line = std::sync::Barrier::new(config.threads + 1);
    let mut latencies: Vec<u64> = Vec::with_capacity(per_thread * config.threads);
    let mut rows = 0usize;
    let (results, elapsed_ms): (Vec<ThreadSamples>, f64) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|tid| {
                let addr = addr.as_str();
                let start_line = &start_line;
                scope.spawn(move || -> ThreadSamples {
                    let warmed = connect_patiently(addr).and_then(|mut client| {
                        for i in 0..64.min(per_thread) {
                            client
                                .query(&request(i))
                                .map_err(|e| format!("warmup query failed: {e}"))?;
                        }
                        Ok(client)
                    });
                    // Reach the line even on failure, or the timer
                    // (and the other threads) would wait forever.
                    start_line.wait();
                    let mut client = warmed?;
                    let mut latencies = Vec::with_capacity(per_thread);
                    let mut rows = 0usize;
                    for i in 0..per_thread {
                        let n = i * config.threads + tid;
                        let t = Instant::now();
                        let response = client
                            .query(&request(n))
                            .map_err(|e| format!("query {n} failed: {e}"))?;
                        latencies.push(t.elapsed().as_nanos() as u64);
                        rows += response.rows.len();
                        if response.epoch != epoch {
                            return Err(format!(
                                "epoch moved under a static store: {} != {epoch}",
                                response.epoch
                            ));
                        }
                    }
                    Ok((latencies, rows))
                })
            })
            .collect();
        start_line.wait();
        let started = Instant::now();
        let results = handles
            .into_iter()
            .map(|h| h.join().expect("load thread never panics"))
            .collect();
        (results, started.elapsed().as_secs_f64() * 1e3)
    });
    for result in results {
        let (thread_latencies, thread_rows) = result?;
        latencies.extend(thread_latencies);
        rows += thread_rows;
    }
    latencies.sort_unstable();
    let percentile = |p: f64| quantile_us(&latencies, p);
    let requests = latencies.len();

    // --- Phase 2: batched frames, throughput only ---------------------
    let batches_per_thread = config.batch_queries / config.batch.max(1) / config.threads.max(1);
    let start_line = std::sync::Barrier::new(config.threads + 1);
    let (batch_results, batch_elapsed_ms): (Vec<Result<usize, String>>, f64) =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.threads)
                .map(|tid| {
                    let addr = addr.as_str();
                    let start_line = &start_line;
                    scope.spawn(move || -> Result<usize, String> {
                        let connected = connect_patiently(addr);
                        start_line.wait();
                        let mut client = connected?;
                        let mut served = 0usize;
                        // Both the request batch and the decoded responses
                        // are reused round over round, so the client side
                        // of the loop is allocation-free at steady state
                        // and the measurement tracks the serving edge, not
                        // the load generator's allocator.
                        let mut batch: Vec<QueryRequest> = Vec::with_capacity(config.batch);
                        let mut responses = Vec::with_capacity(config.batch);
                        for b in 0..batches_per_thread {
                            let base = (b * config.threads + tid) * config.batch;
                            batch.clear();
                            batch.extend((base..base + config.batch).map(request));
                            client
                                .query_batch_into(&batch, &mut responses)
                                .map_err(|e| format!("batch {b} failed: {e}"))?;
                            served += responses.len();
                        }
                        Ok(served)
                    })
                })
                .collect();
            start_line.wait();
            let started = Instant::now();
            let results = handles
                .into_iter()
                .map(|h| h.join().expect("load thread never panics"))
                .collect();
            (results, started.elapsed().as_secs_f64() * 1e3)
        });
    let mut batch_queries = 0usize;
    for result in batch_results {
        batch_queries += result?;
    }

    let (frame_cache_hits, frame_cache_misses, frame_cache_hit_rate) = match &service {
        Some(service) => {
            let (hits, misses) = service.frame_cache_stats();
            let total = hits + misses;
            let rate = if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            };
            (Some(hits), Some(misses), Some(rate))
        }
        None => (None, None, None),
    };

    Ok(ServeResult {
        nodes,
        epoch,
        threads: config.threads,
        requests,
        rows,
        elapsed_ms,
        requests_per_sec: requests as f64 / (elapsed_ms / 1e3),
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        p999_us: percentile(0.999),
        max_us: latencies.last().copied().unwrap_or(0) as f64 / 1e3,
        batch: config.batch,
        batch_queries,
        batch_queries_per_sec: batch_queries as f64 / (batch_elapsed_ms / 1e3),
        frame_cache_hits,
        frame_cache_misses,
        frame_cache_hit_rate,
    })
}

/// Outcome of the idle-fleet experiment ([`run_fleet`]): the same active
/// probe set measured twice — alone (the baseline) and again with the
/// idle fleet connected. A readiness-multiplexing server keeps the two
/// within a small factor; a thread-per-connection server falls over.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Total open connections while the loaded probe ran.
    pub connections: usize,
    /// Connections actively issuing queries (one probe thread each).
    pub active: usize,
    /// Connections that completed Hello and then sent nothing.
    pub idle: usize,
    /// Timed queries issued per active connection, per probe run.
    pub probes_per_conn: usize,
    /// Active-set p50 with no idle fleet, microseconds.
    pub baseline_p50_us: f64,
    /// Active-set p99 with no idle fleet, microseconds — the denominator
    /// of the acceptance ratio.
    pub baseline_p99_us: f64,
    /// Active-set p50 with the idle fleet connected, microseconds.
    pub active_p50_us: f64,
    /// Active-set p99 with the idle fleet connected, microseconds.
    pub active_p99_us: f64,
    /// Active-set p99.9 with the idle fleet connected, microseconds.
    pub active_p999_us: f64,
    /// Worst active-set latency with the idle fleet, microseconds.
    pub active_max_us: f64,
}

impl FleetResult {
    /// `loaded p99 / baseline p99` — how much tail latency the idle
    /// fleet costs the active set (the acceptance bound is 2.0).
    pub fn p99_ratio(&self) -> f64 {
        if self.baseline_p99_us <= 0.0 {
            return 1.0;
        }
        self.active_p99_us / self.baseline_p99_us
    }
}

/// The `p`-quantile of a **sorted** nanosecond sample set, in
/// microseconds (nearest-rank).
fn quantile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() as f64 * p).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[rank] as f64 / 1e3
}

/// One probe run: `conns` fresh connections each issue `probes` timed
/// single-query round trips (after a short warmup, behind a start
/// barrier). Returns the pooled latencies, sorted, in nanoseconds.
fn probe_active<F>(addr: &str, conns: usize, probes: usize, request: &F) -> Result<Vec<u64>, String>
where
    F: Fn(usize) -> QueryRequest + Sync,
{
    let start_line = std::sync::Barrier::new(conns + 1);
    let results: Vec<Result<Vec<u64>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|tid| {
                let start_line = &start_line;
                scope.spawn(move || -> Result<Vec<u64>, String> {
                    let warmed = connect_patiently(addr).and_then(|mut client| {
                        for i in 0..8 {
                            client
                                .query(&request(tid + i))
                                .map_err(|e| format!("warmup query failed: {e}"))?;
                        }
                        Ok(client)
                    });
                    // Reach the line even on failure, or the other
                    // threads would wait forever.
                    start_line.wait();
                    let mut client = warmed?;
                    let mut latencies = Vec::with_capacity(probes);
                    for i in 0..probes {
                        let n = i * conns + tid;
                        let t = Instant::now();
                        client
                            .query(&request(n))
                            .map_err(|e| format!("probe query {n} failed: {e}"))?;
                        latencies.push(t.elapsed().as_nanos() as u64);
                    }
                    Ok(latencies)
                })
            })
            .collect();
        start_line.wait();
        handles
            .into_iter()
            .map(|h| h.join().expect("probe thread never panics"))
            .collect()
    });
    let mut all = Vec::with_capacity(conns * probes);
    for result in results {
        all.extend(result?);
    }
    all.sort_unstable();
    Ok(all)
}

/// Opens `count` connections that complete the Hello handshake and then
/// go silent. The returned clients only exist to hold their sockets
/// open; dropping the vector closes the fleet.
fn open_idle(addr: &str, count: usize) -> Result<Vec<Client>, String> {
    if count == 0 {
        return Ok(Vec::new());
    }
    let openers = 16.min(count);
    let per = count.div_ceil(openers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..openers)
            .map(|o| {
                scope.spawn(move || -> Result<Vec<Client>, String> {
                    let n = per.min(count.saturating_sub(o * per));
                    let mut batch = Vec::with_capacity(n);
                    for _ in 0..n {
                        batch.push(connect_patiently(addr)?);
                    }
                    Ok(batch)
                })
            })
            .collect();
        let mut fleet = Vec::with_capacity(count);
        for handle in handles {
            fleet.extend(handle.join().expect("opener thread never panics")?);
        }
        Ok(fleet)
    })
}

/// The idle-fleet experiment: measure the active probe set alone, open
/// `config.connections - active` idle (handshaken, silent) connections,
/// and measure the same probe set again. The ROADMAP acceptance shape is
/// `connections: 10_000, active_pct: 1.0` — note that in-process mode
/// holds **both** ends, so a 10k fleet needs ~20k file descriptors in
/// one process; under a tight `RLIMIT_NOFILE`, point `config.addr` at an
/// external `spgraph serve` so each side pays only its own half.
pub fn run_fleet(config: &ServeConfig) -> Result<FleetResult, String> {
    if config.connections == 0 {
        return Err("fleet mode needs connections > 0".to_string());
    }
    let (_server, addr, _service) = boot(config)?;
    let probe = connect_patiently(&addr)?;
    let nodes = probe.hello().nodes.max(1);
    drop(probe);

    let active = ((config.connections as f64 * config.active_pct / 100.0).round() as usize)
        .clamp(1, config.connections);
    let idle = config.connections - active;
    let probes = (config.requests / active).max(20);
    let request = |i: usize| {
        let direction = if i % 2 == 0 {
            Direction::Backward
        } else {
            Direction::Forward
        };
        QueryRequest::new(
            RecordId((i as u64 % nodes) as u32),
            direction,
            config.max_depth,
            Strategy::Surrogate,
        )
    };

    let baseline = probe_active(&addr, active, probes, &request)?;
    let fleet = open_idle(&addr, idle)?;
    let loaded = probe_active(&addr, active, probes, &request)?;
    drop(fleet);

    Ok(FleetResult {
        connections: config.connections,
        active,
        idle,
        probes_per_conn: probes,
        baseline_p50_us: quantile_us(&baseline, 0.50),
        baseline_p99_us: quantile_us(&baseline, 0.99),
        active_p50_us: quantile_us(&loaded, 0.50),
        active_p99_us: quantile_us(&loaded, 0.99),
        active_p999_us: quantile_us(&loaded, 0.999),
        active_max_us: loaded.last().copied().unwrap_or(0) as f64 / 1e3,
    })
}
