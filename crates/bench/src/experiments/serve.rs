//! Closed-loop load generation against the wire-protocol query server —
//! the ROADMAP's serving-at-scale metric, measured at the network edge
//! instead of in-process.
//!
//! Each client thread owns one connection and issues single-query round
//! trips as fast as the server answers (closed loop: offered load equals
//! served load, so latency percentiles are honest). A second phase sends
//! the same queries in [`ServeConfig::batch`]-sized `Batch` frames to
//! show what amortizing the round trip buys.
//!
//! Two modes: in-process (`addr: None` — boot a [`server::Server`] over
//! a synthetic workflow store on a loopback port) or external
//! (`addr: Some` — e.g. CI's `spgraph serve` smoke, with connect
//! retries while the server boots).

use std::sync::Arc;
use std::time::{Duration, Instant};

use plus_store::{AccountService, Direction, QueryRequest, RecordId};
use server::{Client, Server, ServerConfig};
use surrogate_core::account::Strategy;

use super::fig10::{build_store, Fig10Config};

/// Workload shape for the wire-serving benchmark.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address of an already-running server; `None` boots one
    /// in-process on a loopback port.
    pub addr: Option<String>,
    /// Closed-loop client threads (one connection each).
    pub threads: usize,
    /// Total single-query round trips across all threads.
    pub requests: usize,
    /// Queries per frame in the batched phase.
    pub batch: usize,
    /// Total queries in the batched phase.
    pub batch_queries: usize,
    /// Hop bound per query. The default (4) is an interactive lineage
    /// probe; pass `u32::MAX` for whole-graph scans (roughly 2-3x more
    /// rows per response on the default workload, and proportionally
    /// fewer round trips per second).
    pub max_depth: u32,
    /// Workflow stages of the synthetic store (in-process mode).
    pub stages: usize,
    /// Artifacts per stage (in-process mode).
    pub width: usize,
    /// Fraction of sensitive nodes (in-process mode).
    pub sensitive_fraction: f64,
    /// RNG seed (in-process mode).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: None,
            threads: 4,
            requests: 200_000,
            batch: 32,
            batch_queries: 400_000,
            max_depth: 4,
            stages: 12,
            width: 12,
            sensitive_fraction: 0.15,
            seed: 23,
        }
    }
}

impl ServeConfig {
    /// The CI smoke shape: small enough for a debug build on a busy
    /// runner, same code paths.
    pub fn smoke() -> Self {
        Self {
            requests: 4_000,
            batch_queries: 8_000,
            ..Self::default()
        }
    }
}

/// Measured wire-serving performance.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// Node records served (from the handshake).
    pub nodes: u64,
    /// The server epoch every response carried.
    pub epoch: u64,
    /// Client threads.
    pub threads: usize,
    /// Single-query round trips completed.
    pub requests: usize,
    /// Rows received across all single queries.
    pub rows: usize,
    /// Single-query phase wall clock, milliseconds.
    pub elapsed_ms: f64,
    /// Single-query round trips per second (all threads).
    pub requests_per_sec: f64,
    /// Median single-query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile single-query latency, microseconds.
    pub p99_us: f64,
    /// Worst observed single-query latency, microseconds.
    pub max_us: f64,
    /// Queries per frame in the batched phase.
    pub batch: usize,
    /// Queries completed in the batched phase.
    pub batch_queries: usize,
    /// Batched-phase queries per second (all threads).
    pub batch_queries_per_sec: f64,
    /// Sealed-frame cache hits over the whole run. In-process mode only:
    /// an external server's counters are not observable from here.
    pub frame_cache_hits: Option<u64>,
    /// Sealed-frame cache misses over the whole run (in-process only).
    pub frame_cache_misses: Option<u64>,
    /// `hits / (hits + misses)` — how much of the load was served as
    /// pre-sealed bytes (in-process only).
    pub frame_cache_hit_rate: Option<f64>,
}

/// One load thread's phase-1 outcome: per-request latencies + row count.
type ThreadSamples = Result<(Vec<u64>, usize), String>;

/// Connects with retries, so a server still booting (CI smoke) is not a
/// failure.
fn connect_patiently(addr: &str) -> Result<Client, String> {
    let mut last = String::new();
    for _ in 0..100 {
        match Client::connect(addr, "loadgen", &[]) {
            Ok(client) => return Ok(client),
            Err(e) => last = e.to_string(),
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    Err(format!("cannot reach {addr} after 10s: {last}"))
}

/// Runs the closed-loop load test. Errors are strings: this is a
/// harness, and every failure is terminal for the run.
pub fn run(config: &ServeConfig) -> Result<ServeResult, String> {
    // In-process mode owns the server for the duration of the run and
    // keeps a service handle so the sealed-frame cache counters can be
    // reported after the load.
    let (_server, addr, service) = match &config.addr {
        Some(addr) => (None, addr.clone(), None),
        None => {
            let store = build_store(Fig10Config {
                stages: config.stages,
                width: config.width,
                sensitive_fraction: config.sensitive_fraction,
                seed: config.seed,
                iterations: 1,
                simulated_db_roundtrip_us: None,
            });
            let service = Arc::new(AccountService::new(Arc::new(store)));
            let server = Server::bind_with(
                service.clone(),
                "127.0.0.1:0",
                ServerConfig {
                    threads: config.threads.max(2),
                    ..ServerConfig::default()
                },
            )
            .map_err(|e| format!("cannot bind loopback: {e}"))?;
            let addr = server.local_addr().to_string();
            (Some(server), addr, Some(service))
        }
    };

    let probe = connect_patiently(&addr)?;
    let nodes = probe.hello().nodes.max(1);
    let epoch = probe.hello().epoch;
    drop(probe);

    let request = |i: usize| {
        let direction = if i % 2 == 0 {
            Direction::Backward
        } else {
            Direction::Forward
        };
        QueryRequest::new(
            RecordId((i as u64 % nodes) as u32),
            direction,
            config.max_depth,
            Strategy::Surrogate,
        )
    };

    // --- Phase 1: single-query round trips, per-request latencies -----
    let per_thread = config.requests / config.threads.max(1);
    // Every thread connects and warms up *before* the clock starts;
    // the barrier keeps connect retries and cold account generation
    // out of the timed window (the +1 participant is the timer below).
    let start_line = std::sync::Barrier::new(config.threads + 1);
    let mut latencies: Vec<u64> = Vec::with_capacity(per_thread * config.threads);
    let mut rows = 0usize;
    let (results, elapsed_ms): (Vec<ThreadSamples>, f64) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|tid| {
                let addr = addr.as_str();
                let start_line = &start_line;
                scope.spawn(move || -> ThreadSamples {
                    let warmed = connect_patiently(addr).and_then(|mut client| {
                        for i in 0..64.min(per_thread) {
                            client
                                .query(&request(i))
                                .map_err(|e| format!("warmup query failed: {e}"))?;
                        }
                        Ok(client)
                    });
                    // Reach the line even on failure, or the timer
                    // (and the other threads) would wait forever.
                    start_line.wait();
                    let mut client = warmed?;
                    let mut latencies = Vec::with_capacity(per_thread);
                    let mut rows = 0usize;
                    for i in 0..per_thread {
                        let n = i * config.threads + tid;
                        let t = Instant::now();
                        let response = client
                            .query(&request(n))
                            .map_err(|e| format!("query {n} failed: {e}"))?;
                        latencies.push(t.elapsed().as_nanos() as u64);
                        rows += response.rows.len();
                        if response.epoch != epoch {
                            return Err(format!(
                                "epoch moved under a static store: {} != {epoch}",
                                response.epoch
                            ));
                        }
                    }
                    Ok((latencies, rows))
                })
            })
            .collect();
        start_line.wait();
        let started = Instant::now();
        let results = handles
            .into_iter()
            .map(|h| h.join().expect("load thread never panics"))
            .collect();
        (results, started.elapsed().as_secs_f64() * 1e3)
    });
    for result in results {
        let (thread_latencies, thread_rows) = result?;
        latencies.extend(thread_latencies);
        rows += thread_rows;
    }
    latencies.sort_unstable();
    let percentile = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[rank] as f64 / 1e3
    };
    let requests = latencies.len();

    // --- Phase 2: batched frames, throughput only ---------------------
    let batches_per_thread = config.batch_queries / config.batch.max(1) / config.threads.max(1);
    let start_line = std::sync::Barrier::new(config.threads + 1);
    let (batch_results, batch_elapsed_ms): (Vec<Result<usize, String>>, f64) =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.threads)
                .map(|tid| {
                    let addr = addr.as_str();
                    let start_line = &start_line;
                    scope.spawn(move || -> Result<usize, String> {
                        let connected = connect_patiently(addr);
                        start_line.wait();
                        let mut client = connected?;
                        let mut served = 0usize;
                        // Both the request batch and the decoded responses
                        // are reused round over round, so the client side
                        // of the loop is allocation-free at steady state
                        // and the measurement tracks the serving edge, not
                        // the load generator's allocator.
                        let mut batch: Vec<QueryRequest> = Vec::with_capacity(config.batch);
                        let mut responses = Vec::with_capacity(config.batch);
                        for b in 0..batches_per_thread {
                            let base = (b * config.threads + tid) * config.batch;
                            batch.clear();
                            batch.extend((base..base + config.batch).map(request));
                            client
                                .query_batch_into(&batch, &mut responses)
                                .map_err(|e| format!("batch {b} failed: {e}"))?;
                            served += responses.len();
                        }
                        Ok(served)
                    })
                })
                .collect();
            start_line.wait();
            let started = Instant::now();
            let results = handles
                .into_iter()
                .map(|h| h.join().expect("load thread never panics"))
                .collect();
            (results, started.elapsed().as_secs_f64() * 1e3)
        });
    let mut batch_queries = 0usize;
    for result in batch_results {
        batch_queries += result?;
    }

    let (frame_cache_hits, frame_cache_misses, frame_cache_hit_rate) = match &service {
        Some(service) => {
            let (hits, misses) = service.frame_cache_stats();
            let total = hits + misses;
            let rate = if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            };
            (Some(hits), Some(misses), Some(rate))
        }
        None => (None, None, None),
    };

    Ok(ServeResult {
        nodes,
        epoch,
        threads: config.threads,
        requests,
        rows,
        elapsed_ms,
        requests_per_sec: requests as f64 / (elapsed_ms / 1e3),
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        max_us: latencies.last().copied().unwrap_or(0) as f64 / 1e3,
        batch: config.batch,
        batch_queries,
        batch_queries_per_sec: batch_queries as f64 / (batch_elapsed_ms / 1e3),
        frame_cache_hits,
        frame_cache_misses,
        frame_cache_hit_rate,
    })
}
