//! Fig. 10: wall-clock cost of producing a graph and transforming it into
//! a protected account — DB access, graph build, protect-via-hide,
//! protect-via-surrogate.
//!
//! The paper's point is relative: protection is ~10 ms against a far more
//! expensive storage/build pipeline, so "the cost for protecting a graph
//! … is easily subsumed in the cost of creation of the graph itself"
//! (§6.4). Absolute times on 2026 hardware differ from the 2008 testbed;
//! the shape is what this experiment reproduces.

use std::sync::Arc;
use std::time::Instant;

use graphgen::{workflow, WorkflowConfig};
use plus_store::{AccountService, EdgeKind, NodeKind, Store};
use surrogate_core::account::Strategy;
use surrogate_core::graph::NodeId;

/// Configuration for the performance pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Config {
    /// Workflow stages (process layers).
    pub stages: usize,
    /// Artifacts per layer.
    pub width: usize,
    /// Fraction of sensitive nodes.
    pub sensitive_fraction: f64,
    /// Timed iterations (median is reported).
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Simulated per-record DBMS round-trip, microseconds.
    ///
    /// The paper's PLUS prototype fetched provenance from a client–server
    /// DBMS, so "DB Access" dominated its pipeline; our embedded snapshot
    /// load is ~1000× cheaper, which would invert the figure's shape. When
    /// set, the simulated cost (records × round-trip) is reported *in
    /// addition to* the raw measured load so both views are visible
    /// (DESIGN.md substitution table; EXPERIMENTS.md discussion).
    pub simulated_db_roundtrip_us: Option<f64>,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Self {
            stages: 25,
            width: 20,
            sensitive_fraction: 0.15,
            iterations: 5,
            seed: 17,
            // ~10k records/s: a generous rate for a 2008-era DBMS.
            simulated_db_roundtrip_us: Some(100.0),
        }
    }
}

/// Median milliseconds per pipeline stage.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Node records in the workload.
    pub nodes: usize,
    /// Edge records in the workload.
    pub edges: usize,
    /// Snapshot size on disk, bytes.
    pub snapshot_bytes: usize,
    /// Load + decode the snapshot ("DB Access", raw measurement).
    pub db_access_ms: f64,
    /// "DB Access" including the simulated per-record DBMS round-trips,
    /// when configured.
    pub db_access_simulated_ms: Option<f64>,
    /// Materialize records into the graph ("Build Graph").
    pub build_graph_ms: f64,
    /// Protect via hiding.
    pub protect_hide_ms: f64,
    /// Protect via surrogates.
    pub protect_surrogate_ms: f64,
    /// Whole pipeline ("total").
    pub total_ms: f64,
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Builds the workload store: a generated provenance workflow imported
/// with its protection policy via `plus_store::ingest`.
pub fn build_store(config: Fig10Config) -> Store {
    let wf = workflow::generate(WorkflowConfig {
        stages: config.stages,
        width: config.width,
        max_fan_in: 3,
        sensitive_fraction: config.sensitive_fraction,
        seed: config.seed,
    });
    let node_kind = |n: NodeId| {
        if wf.graph.node(n).label.starts_with("process") {
            NodeKind::Process
        } else {
            NodeKind::Data
        }
    };
    let edge_kind = |_| EdgeKind::InputTo;
    plus_store::ingest(
        &wf.graph,
        &wf.lattice,
        &wf.markings,
        &wf.catalog,
        plus_store::IngestKinds {
            node_kind: &node_kind,
            edge_kind: &edge_kind,
        },
    )
    .expect("workflow setups are representable")
}

/// Runs the timed pipeline.
pub fn run(config: Fig10Config) -> Fig10Result {
    let store = build_store(config);
    let path = std::env::temp_dir().join(format!(
        "surrogate-fig10-{}-{}.snapshot",
        std::process::id(),
        config.seed
    ));
    store.save(&path).expect("snapshot writes");
    let snapshot_bytes = std::fs::metadata(&path).expect("snapshot exists").len() as usize;

    let mut db_access = Vec::new();
    let mut build = Vec::new();
    let mut hide = Vec::new();
    let mut surrogate = Vec::new();
    let mut total = Vec::new();

    for _ in 0..config.iterations.max(1) {
        let t_total = Instant::now();

        let t = Instant::now();
        let loaded = Store::load(&path).expect("snapshot loads");
        db_access.push(t.elapsed().as_secs_f64() * 1e3);

        // A fresh service per iteration keeps every stage cold, exactly
        // like the pre-service pipeline; production would reuse it and pay
        // these costs once per epoch.
        let service = AccountService::new(Arc::new(loaded));

        let t = Instant::now();
        let snapshot = service.snapshot();
        build.push(t.elapsed().as_secs_f64() * 1e3);

        let public = snapshot.lattice.by_name("Public").expect("declared");

        let t = Instant::now();
        let hide_account = service
            .protect(&[public], &Strategy::HideEdges)
            .expect("hide protection generates");
        hide.push(t.elapsed().as_secs_f64() * 1e3);

        let t = Instant::now();
        let sur_account = service
            .protect(&[public], &Strategy::Surrogate)
            .expect("surrogate protection generates");
        surrogate.push(t.elapsed().as_secs_f64() * 1e3);

        total.push(t_total.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box((hide_account, sur_account));
    }
    std::fs::remove_file(&path).ok();

    let db_access_ms = median(db_access);
    let records = store.node_count() + store.edge_count() + store.policy_count();
    let db_access_simulated_ms = config
        .simulated_db_roundtrip_us
        .map(|us| db_access_ms + records as f64 * us / 1e3);

    Fig10Result {
        nodes: store.node_count(),
        edges: store.edge_count(),
        snapshot_bytes,
        db_access_ms,
        db_access_simulated_ms,
        build_graph_ms: median(build),
        protect_hide_ms: median(hide),
        protect_surrogate_ms: median(surrogate),
        total_ms: median(total),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_produces_consistent_timings() {
        let result = run(Fig10Config {
            stages: 4,
            width: 4,
            sensitive_fraction: 0.2,
            iterations: 2,
            seed: 3,
            simulated_db_roundtrip_us: Some(50.0),
        });
        let simulated = result
            .db_access_simulated_ms
            .expect("simulation configured");
        assert!(simulated > result.db_access_ms);
        assert_eq!(result.nodes, 4 + 4 * 4 * 2);
        assert!(result.edges > 0);
        assert!(result.snapshot_bytes > 0);
        for ms in [
            result.db_access_ms,
            result.build_graph_ms,
            result.protect_hide_ms,
            result.protect_surrogate_ms,
            result.total_ms,
        ] {
            assert!(ms >= 0.0 && ms.is_finite());
        }
        // The total is a whole-pipeline timing, so it cannot be trivially
        // small relative to any single stage. (Medians are not additive, so
        // no exact sum relation holds across iterations.)
        assert!(result.total_ms > 0.0);
    }

    #[test]
    fn hide_is_not_slower_than_surrogate_on_real_workloads() {
        // §6.4: "Hiding takes less time since the overall size of the graph
        // is ultimately smaller." Allow slack for timer noise on a tiny
        // workload, but surrogate must not be an order faster.
        let result = run(Fig10Config::default());
        assert!(
            result.protect_surrogate_ms * 10.0 > result.protect_hide_ms,
            "surrogate {} vs hide {}",
            result.protect_surrogate_ms,
            result.protect_hide_ms
        );
    }
}
