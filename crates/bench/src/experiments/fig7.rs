//! Fig. 7: per-motif differences between surrogating and hiding, for both
//! the Path Utility Measure and the opacity of the protected edge.

use graphgen::{all_motifs, EdgeProtection, Motif, MotifKind};
use surrogate_core::account::{
    generate_for_set, generate_hide_for_set, ProtectedAccount, ProtectionContext,
};
use surrogate_core::measures::{edge_opacity, path_utility, OpacityModel};
use surrogate_core::surrogate::SurrogateCatalog;

/// One Fig. 7 bar pair.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// The motif.
    pub kind: MotifKind,
    /// PathUtility with surrogating / hiding.
    pub utility_surrogate: f64,
    /// PathUtility with hiding.
    pub utility_hide: f64,
    /// Opacity of the protected edge with surrogating.
    pub opacity_surrogate: f64,
    /// Opacity of the protected edge with hiding.
    pub opacity_hide: f64,
}

impl Fig7Row {
    /// `UtilitySurrogate − UtilityHide` (the figure's utility bar).
    pub fn utility_delta(&self) -> f64 {
        self.utility_surrogate - self.utility_hide
    }

    /// `OpacitySurrogate − OpacityHide` (the figure's opacity bar).
    pub fn opacity_delta(&self) -> f64 {
        self.opacity_surrogate - self.opacity_hide
    }
}

/// Protects a motif both ways and returns the accounts.
pub fn protect_both(motif: &Motif) -> (ProtectedAccount, ProtectedAccount) {
    let catalog = SurrogateCatalog::new();
    let public = motif.lattice.public();
    let sur_markings = motif.markings(EdgeProtection::Surrogate);
    let hide_markings = motif.markings(EdgeProtection::Hide);
    let sur = {
        let ctx = ProtectionContext::new(&motif.graph, &motif.lattice, &sur_markings, &catalog);
        generate_for_set(&ctx, &[public]).expect("motif protection generates")
    };
    let hide = {
        let ctx = ProtectionContext::new(&motif.graph, &motif.lattice, &hide_markings, &catalog);
        generate_hide_for_set(&ctx, &[public]).expect("motif protection generates")
    };
    (sur, hide)
}

/// Regenerates Fig. 7 with the given opacity model.
pub fn run(model: OpacityModel) -> Vec<Fig7Row> {
    all_motifs()
        .iter()
        .map(|motif| {
            let (sur, hide) = protect_both(motif);
            Fig7Row {
                kind: motif.kind,
                utility_surrogate: path_utility(&motif.graph, &sur),
                utility_hide: path_utility(&motif.graph, &hide),
                opacity_surrogate: edge_opacity(&sur, model, motif.protected_edge),
                opacity_hide: edge_opacity(&hide, model, motif.protected_edge),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_match_section_6_2() {
        // "surrogating raises opacity and utility for all motifs except
        // Bipartite and Lattice" — where both differences are zero.
        for row in run(OpacityModel::default()) {
            match row.kind {
                MotifKind::Bipartite | MotifKind::Lattice => {
                    assert_eq!(row.utility_delta(), 0.0, "{:?}", row.kind);
                    assert_eq!(row.opacity_delta(), 0.0, "{:?}", row.kind);
                }
                _ => {
                    assert!(row.utility_delta() > 0.0, "{:?}", row.kind);
                    assert!(row.opacity_delta() > 0.0, "{:?}", row.kind);
                }
            }
        }
    }

    #[test]
    fn all_values_are_bounded() {
        for row in run(OpacityModel::default()) {
            for v in [
                row.utility_surrogate,
                row.utility_hide,
                row.opacity_surrogate,
                row.opacity_hide,
            ] {
                assert!((0.0..=1.0).contains(&v), "{:?}: {v}", row.kind);
            }
        }
    }
}
