//! Fig. 9: surrogate − hide differences in opacity (9a) and utility (9b)
//! across the synthetic grid — connectedness 30–100 × protection 10%–90%.
//!
//! Cells are independent, so the sweep fans out across threads with
//! `std::thread::scope`.

use graphgen::{synthetic, EdgeProtection, SyntheticConfig};
use surrogate_core::account::{generate_for_set, generate_hide_for_set, ProtectionContext};
use surrogate_core::measures::{average_protected_opacity, path_utility, OpacityModel};
use surrogate_core::surrogate::SurrogateCatalog;

/// One cell of the synthetic grid.
#[derive(Debug, Clone)]
pub struct Fig9Cell {
    /// Requested average reachable-set size.
    pub target_connected_pairs: f64,
    /// Achieved average reachable-set size.
    pub achieved_connected_pairs: f64,
    /// Fraction of edges protected.
    pub protect_fraction: f64,
    /// Edges in the generated graph.
    pub edges: usize,
    /// PathUtility under surrogating.
    pub utility_surrogate: f64,
    /// PathUtility under hiding.
    pub utility_hide: f64,
    /// Mean opacity of protected edges under surrogating.
    pub opacity_surrogate: f64,
    /// Mean opacity of protected edges under hiding.
    pub opacity_hide: f64,
}

impl Fig9Cell {
    /// `OpacitySurrogate − OpacityHide` (Fig. 9a).
    pub fn opacity_delta(&self) -> f64 {
        self.opacity_surrogate - self.opacity_hide
    }

    /// `UtilitySurrogate − UtilityHide` (Fig. 9b).
    pub fn utility_delta(&self) -> f64 {
        self.utility_surrogate - self.utility_hide
    }
}

/// Evaluates one synthetic configuration.
pub fn run_cell(config: SyntheticConfig, model: OpacityModel) -> Fig9Cell {
    let synthetic = synthetic::generate(config);
    let catalog = SurrogateCatalog::new();
    let public = synthetic.lattice.public();

    let sur_markings = synthetic.markings(EdgeProtection::Surrogate);
    let hide_markings = synthetic.markings(EdgeProtection::Hide);

    let sur = {
        let ctx = ProtectionContext::new(
            &synthetic.graph,
            &synthetic.lattice,
            &sur_markings,
            &catalog,
        );
        generate_for_set(&ctx, &[public]).expect("synthetic protection generates")
    };
    let hide = {
        let ctx = ProtectionContext::new(
            &synthetic.graph,
            &synthetic.lattice,
            &hide_markings,
            &catalog,
        );
        generate_hide_for_set(&ctx, &[public]).expect("synthetic protection generates")
    };

    Fig9Cell {
        target_connected_pairs: config.target_connected_pairs,
        achieved_connected_pairs: synthetic.connected_pairs(),
        protect_fraction: config.protect_fraction,
        edges: synthetic.graph.edge_count(),
        utility_surrogate: path_utility(&synthetic.graph, &sur),
        utility_hide: path_utility(&synthetic.graph, &hide),
        opacity_surrogate: average_protected_opacity(&synthetic.graph, &sur, model).unwrap_or(1.0),
        opacity_hide: average_protected_opacity(&synthetic.graph, &hide, model).unwrap_or(1.0),
    }
}

/// Runs the full grid in parallel; rows come back in grid order.
pub fn run_grid(configs: &[SyntheticConfig], model: OpacityModel) -> Vec<Fig9Cell> {
    if configs.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(configs.len());
    let mut cells: Vec<Option<Fig9Cell>> = vec![None; configs.len()];
    let chunk = configs.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (config_chunk, cell_chunk) in configs.chunks(chunk).zip(cells.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (config, slot) in config_chunk.iter().zip(cell_chunk.iter_mut()) {
                    *slot = Some(run_cell(*config, model));
                }
            });
        }
    });
    cells
        .into_iter()
        .map(|c| c.expect("every cell computed"))
        .collect()
}

/// The paper's default grid: 10 connectivity steps × protection fractions
/// {10, 30, 50, 70, 90}% — 50 graphs, as in §6.1.2.
pub fn paper_configs(seed: u64) -> Vec<SyntheticConfig> {
    graphgen::paper_grid(10, &[0.1, 0.3, 0.5, 0.7, 0.9], seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_configs() -> Vec<SyntheticConfig> {
        vec![
            SyntheticConfig {
                nodes: 60,
                target_connected_pairs: 12.0,
                protect_fraction: 0.2,
                seed: 1,
            },
            SyntheticConfig {
                nodes: 60,
                target_connected_pairs: 20.0,
                protect_fraction: 0.6,
                seed: 2,
            },
        ]
    }

    #[test]
    fn surrogating_dominates_hiding() {
        // §6.3's key takeaway: every delta is positive.
        for cell in run_grid(&small_configs(), OpacityModel::default()) {
            assert!(
                cell.utility_delta() >= 0.0,
                "utility delta {} at {:?}",
                cell.utility_delta(),
                (cell.target_connected_pairs, cell.protect_fraction)
            );
            assert!(
                cell.opacity_delta() >= 0.0,
                "opacity delta {} at {:?}",
                cell.opacity_delta(),
                (cell.target_connected_pairs, cell.protect_fraction)
            );
        }
    }

    #[test]
    fn parallel_grid_matches_serial() {
        let configs = small_configs();
        let parallel = run_grid(&configs, OpacityModel::default());
        for (config, cell) in configs.iter().zip(&parallel) {
            let serial = run_cell(*config, OpacityModel::default());
            assert_eq!(serial.edges, cell.edges);
            assert_eq!(serial.utility_surrogate, cell.utility_surrogate);
            assert_eq!(serial.opacity_hide, cell.opacity_hide);
        }
    }
}
