//! Sharding benchmarks: aggregate multi-primary write throughput and
//! scatter-gather traversal throughput across a partitioned deployment —
//! the PR-9 record (`BENCH_PR9.json`).
//!
//! Two phases:
//!
//! 1. **Scatter writes.** `shards` shard primaries boot over partitioned
//!    durable stores; one closed-loop writer per shard pushes
//!    `WriteOp::AppendNode`/`AppendEdge` over the wire to its own
//!    primary. Because the keyspace is congruence-class partitioned,
//!    the writers never contend — the aggregate writes/s is the
//!    multi-primary scaling story.
//! 2. **Gather reads.** A gather node follows every shard's replication
//!    feed into one merged graph; once it has caught up to the write
//!    phase, closed-loop client threads hammer it with bounded
//!    traversals whose lineages cross shards on almost every hop
//!    (neighboring ids live on different shards by construction).
//!
//! The recorded per-shard epoch vector is the proof of full ingestion:
//! each slot must equal that shard's operation count.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use plus_store::wire::WriteOp;
use plus_store::{
    AccountService, Direction, DurabilityOptions, EdgeKind, NodeKind, QueryRequest, RecordId, Store,
};
use server::{
    Client, Gather, GatherConfig, Replica, ReplicaConfig, Server, ServerConfig, Topology,
};
use surrogate_core::account::Strategy;
use surrogate_core::feature::Features;
use surrogate_core::shard::Partition;

/// Workload shape for the sharding benchmark.
#[derive(Debug, Clone)]
pub struct ShardBenchConfig {
    /// Shard primaries in the deployment.
    pub shards: u32,
    /// Wire writes per shard (nodes + edges, one frame each).
    pub ops_per_shard: usize,
    /// Closed-loop client threads in the gather phase.
    pub threads: usize,
    /// Total traversal round trips in the gather phase.
    pub requests: usize,
    /// Hop bound per traversal.
    pub max_depth: u32,
}

impl Default for ShardBenchConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            ops_per_shard: 25_000,
            threads: 6,
            requests: 120_000,
            max_depth: 4,
        }
    }
}

impl ShardBenchConfig {
    /// The CI smoke shape: small enough for a busy runner, same paths.
    pub fn smoke() -> Self {
        Self {
            ops_per_shard: 1_500,
            requests: 9_000,
            ..Self::default()
        }
    }
}

/// Measured sharding performance.
#[derive(Debug, Clone)]
pub struct ShardBenchResult {
    /// Shard primaries in the deployment.
    pub shards: u32,
    /// Wire writes applied across all shards.
    pub ops: usize,
    /// Aggregate writes per second across the shard primaries.
    pub write_per_sec: f64,
    /// Wall-clock for the gather to ingest the whole write phase, ms.
    pub gather_catchup_ms: f64,
    /// Client threads in the gather phase.
    pub threads: usize,
    /// Traversal round trips completed against the gather.
    pub requests: usize,
    /// Scatter-gather traversals per second.
    pub gather_queries_per_sec: f64,
    /// Final per-shard epoch vector as the gather reports it.
    pub shard_epochs: Vec<u64>,
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-shard-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One shard's closed-loop writer: appends nodes and, every third op,
/// an edge from the previous node of *this shard's class* back to an
/// earlier id — a layered lineage whose backward walk alternates shards
/// (neighboring global ids live in different congruence classes).
fn run_writer(addr: &str, shard: u32, shards: u32, ops: usize) -> Result<usize, String> {
    let mut client = Client::connect(addr, "bench-writer", &[])
        .map_err(|e| format!("writer {shard} cannot connect: {e}"))?;
    let public = client
        .predicate("Public")
        .ok_or_else(|| format!("writer {shard}: no Public predicate"))?;
    let mut owned: Vec<RecordId> = Vec::new();
    let mut applied = 0usize;
    for i in 0..ops {
        if i % 3 == 2 && owned.len() >= 2 {
            let from = *owned.last().unwrap();
            // Target an earlier global id; the gather-phase walk from a
            // late node then hops across classes (≈ across shards).
            let back = (from.0 / shards).min(7 * shards + 1);
            let to = RecordId(from.0 - back.max(1).min(from.0));
            if to != from {
                client
                    .write(WriteOp::AppendEdge {
                        from,
                        to,
                        kind: EdgeKind::InputTo,
                    })
                    .map_err(|e| format!("writer {shard} edge failed: {e}"))?;
                applied += 1;
                continue;
            }
        }
        let (_, id) = client
            .write(WriteOp::AppendNode {
                label: format!("s{shard}-n{i}"),
                kind: [NodeKind::Data, NodeKind::Process, NodeKind::Agent][i % 3],
                features: Features::new().with("i", i as i64),
                lowest: public,
            })
            .map_err(|e| format!("writer {shard} node failed: {e}"))?;
        owned.push(id.ok_or_else(|| format!("writer {shard}: node ack without id"))?);
        applied += 1;
    }
    Ok(applied)
}

/// The closed-loop gather readers: `threads` clients issuing
/// `total_requests` bounded traversals between them. Returns the
/// completed count and the elapsed seconds.
fn run_readers(
    front_addr: &str,
    threads: usize,
    total_requests: usize,
    max_depth: u32,
    total_nodes: u32,
) -> Result<(usize, f64), String> {
    // Counts *up*: a count-down with `fetch_sub` would wrap past zero
    // under racing readers and strand one of them in an endless loop.
    let issued = Arc::new(AtomicUsize::new(0));
    let query_started = Instant::now();
    let readers: Vec<_> = (0..threads)
        .map(|t| {
            let addr = front_addr.to_string();
            let issued = issued.clone();
            std::thread::spawn(move || -> Result<usize, String> {
                let mut client = Client::connect(&addr, "bench-reader", &["Public"])
                    .map_err(|e| format!("reader {t} cannot connect: {e}"))?;
                let mut done = 0usize;
                let mut at = (t as u32).wrapping_mul(2_654_435_761);
                while issued.fetch_add(1, Ordering::Relaxed) < total_requests {
                    // A cheap LCG spreads roots over the id space; late
                    // ids have the deepest lineages.
                    at = at.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    let root = RecordId(at % total_nodes.max(1));
                    client
                        .query(&QueryRequest::new(
                            root,
                            Direction::Backward,
                            max_depth,
                            Strategy::Surrogate,
                        ))
                        .map_err(|e| format!("reader {t} query failed: {e}"))?;
                    done += 1;
                }
                Ok(done)
            })
        })
        .collect();
    let mut requests = 0usize;
    for reader in readers {
        requests += reader.join().map_err(|_| "reader thread panicked")??;
    }
    Ok((requests, query_started.elapsed().as_secs_f64()))
}

/// Runs the sharding benchmark. Errors are strings: this is a harness,
/// and every failure is terminal for the run.
pub fn run(config: &ShardBenchConfig) -> Result<ShardBenchResult, String> {
    let shards = config.shards.max(1);

    // Boot the shard primaries.
    let mut servers = Vec::new();
    let mut dirs = Vec::new();
    let mut addrs = Vec::new();
    for index in 0..shards {
        let dir = temp_dir(&format!("s{index}"));
        let partition = Partition::new(index, shards)
            .ok_or_else(|| format!("invalid partition {index}/{shards}"))?;
        let store = Store::create_durable_partitioned(
            &dir,
            &["Public"],
            &[],
            DurabilityOptions {
                fsync: false,
                ..Default::default()
            },
            partition,
        )
        .map_err(|e| format!("cannot create shard {index} store: {e}"))?;
        let server = Server::bind(
            Arc::new(AccountService::new(Arc::new(store))),
            "127.0.0.1:0",
            &ServerConfig {
                role: server::Role::Shard {
                    index,
                    count: shards,
                    topology: server::Topology::default(),
                    feed: None,
                },
                allow_replication: true,
                ..ServerConfig::default()
            },
        )
        .map_err(|e| format!("cannot bind shard {index}: {e}"))?;
        addrs.push(server.local_addr().to_string());
        servers.push(server);
        dirs.push(dir);
    }

    // The gather attaches *before* the write phase: it ingests the
    // stream live, so catch-up below measures residual lag, not a cold
    // replay of the whole history.
    let peer_refs: Vec<&str> = addrs.iter().map(String::as_str).collect();
    let gather =
        Arc::new(Gather::start(&peer_refs).map_err(|e| format!("gather failed to start: {e}"))?);
    let front = Server::bind(
        gather.service().clone(),
        "127.0.0.1:0",
        &ServerConfig {
            role: server::Role::Gather {
                gather: gather.clone(),
            },
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("cannot bind gather front: {e}"))?;

    // --- Phase 1: scatter writes, one closed loop per shard -----------
    let write_started = Instant::now();
    let writers: Vec<_> = (0..shards)
        .map(|index| {
            let addr = addrs[index as usize].clone();
            let ops = config.ops_per_shard;
            std::thread::spawn(move || run_writer(&addr, index, shards, ops))
        })
        .collect();
    let mut ops = 0usize;
    for writer in writers {
        ops += writer.join().map_err(|_| "writer thread panicked")??;
    }
    let write_secs = write_started.elapsed().as_secs_f64();

    // --- Gather catch-up ----------------------------------------------
    let catchup_started = Instant::now();
    let target: u64 = ops as u64;
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let ingested: u64 = gather.clocks().iter().sum();
        if ingested >= target {
            break;
        }
        if Instant::now() > deadline {
            return Err(format!(
                "gather stuck at {ingested} of {target} frames (down: {:?})",
                gather.first_down()
            ));
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let gather_catchup_ms = catchup_started.elapsed().as_secs_f64() * 1e3;

    // --- Phase 2: scatter-gather traversals ---------------------------
    let front_addr = front.local_addr().to_string();
    let total_nodes = (ops as u32 / 3) * 2; // ~2/3 of ops are node appends
    let (requests, query_secs) = run_readers(
        &front_addr,
        config.threads.max(1),
        config.requests,
        config.max_depth,
        total_nodes,
    )?;

    let shard_epochs = gather.clocks();
    front.shutdown();
    for server in servers {
        server.shutdown();
    }
    drop(gather);
    for dir in dirs {
        let _ = std::fs::remove_dir_all(dir);
    }

    Ok(ShardBenchResult {
        shards,
        ops,
        write_per_sec: ops as f64 / write_secs.max(1e-9),
        gather_catchup_ms,
        threads: config.threads.max(1),
        requests,
        gather_queries_per_sec: requests as f64 / query_secs.max(1e-9),
        shard_epochs,
    })
}

/// Measured failover performance — the PR-10 record: how long a
/// replicated-shard deployment takes to heal after a shard primary
/// dies, and what scatter-gather throughput looks like afterwards.
#[derive(Debug, Clone)]
pub struct ShardFailoverResult {
    /// Shard primaries in the deployment (each with one replica).
    pub shards: u32,
    /// Wire writes applied before the kill.
    pub ops: usize,
    /// Wall-clock from the kill to a healed deployment, ms: the shard's
    /// replica promoted, a write landed on it, and the gather
    /// re-resolved the slot's feed under the new term and resynced.
    pub recovery_ms: f64,
    /// The fencing term the promotion produced.
    pub promoted_term: u64,
    /// Traversal round trips completed against the gather afterwards.
    pub requests: usize,
    /// Client threads in the post-failover read phase.
    pub threads: usize,
    /// Post-failover scatter-gather traversals per second.
    pub post_failover_queries_per_sec: f64,
    /// Final per-shard epoch vector as the gather reports it.
    pub shard_epochs: Vec<u64>,
}

/// Runs the failover benchmark: boots `shards` primaries each backed by
/// one WAL-shipping replica, writes the configured load, kills shard
/// 0's primary, promotes its replica, and measures how long the
/// deployment takes to heal — then measures post-failover scatter-gather
/// throughput through the recovered gather.
pub fn run_failover(config: &ShardBenchConfig) -> Result<ShardFailoverResult, String> {
    let shards = config.shards.max(1);
    let durability = DurabilityOptions {
        fsync: false,
        ..Default::default()
    };

    // Shard primaries, keeping the store handles for the ack barrier.
    let mut stores = Vec::new();
    let mut servers = Vec::new();
    let mut dirs = Vec::new();
    let mut addrs = Vec::new();
    for index in 0..shards {
        let dir = temp_dir(&format!("f-s{index}"));
        let partition = Partition::new(index, shards)
            .ok_or_else(|| format!("invalid partition {index}/{shards}"))?;
        let store = Arc::new(
            Store::create_durable_partitioned(&dir, &["Public"], &[], durability, partition)
                .map_err(|e| format!("cannot create shard {index} store: {e}"))?,
        );
        let server = Server::bind(
            Arc::new(AccountService::new(store.clone())),
            "127.0.0.1:0",
            &ServerConfig {
                role: server::Role::Shard {
                    index,
                    count: shards,
                    topology: Topology::default(),
                    feed: None,
                },
                allow_replication: true,
                ..ServerConfig::default()
            },
        )
        .map_err(|e| format!("cannot bind shard {index}: {e}"))?;
        addrs.push(server.local_addr().to_string());
        stores.push(store);
        servers.push(Some(server));
        dirs.push(dir);
    }

    // One replica per shard, each fronted by a shard-role server that
    // flips writable on promotion.
    let replica_options = ReplicaConfig {
        durability,
        reconnect_backoff: Duration::from_millis(10),
        ..ReplicaConfig::default()
    };
    let mut replicas = Vec::new();
    let mut fronts = Vec::new();
    let mut sites = Vec::new();
    for index in 0..shards {
        let dir = temp_dir(&format!("f-r{index}"));
        let replica = Replica::start_with(&addrs[index as usize], &dir, replica_options)
            .map_err(|e| format!("shard {index} replica failed to start: {e}"))?;
        let front = Server::bind(
            replica.service().clone(),
            "127.0.0.1:0",
            &ServerConfig {
                role: server::Role::Shard {
                    index,
                    count: shards,
                    topology: Topology::default(),
                    feed: Some(replica.monitor()),
                },
                allow_replication: true,
                ..ServerConfig::default()
            },
        )
        .map_err(|e| format!("cannot bind shard {index} replica front: {e}"))?;
        sites.push(format!("{}+{}", addrs[index as usize], front.local_addr()));
        replicas.push(replica);
        fronts.push(front);
        dirs.push(dir);
    }

    let topology =
        Topology::parse(&sites.join(",")).map_err(|e| format!("bad failover topology: {e}"))?;
    let gather = Arc::new(
        Gather::start_topology(&topology, GatherConfig::default())
            .map_err(|e| format!("gather failed to start: {e}"))?,
    );
    let front = Server::bind(
        gather.service().clone(),
        "127.0.0.1:0",
        &ServerConfig {
            role: server::Role::Gather {
                gather: gather.clone(),
            },
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("cannot bind gather front: {e}"))?;

    // The write phase, then the ack barrier: every shard's replica has
    // the whole history, so the kill below cannot lose acknowledged
    // writes.
    let writers: Vec<_> = (0..shards)
        .map(|index| {
            let addr = addrs[index as usize].clone();
            let ops = config.ops_per_shard;
            std::thread::spawn(move || run_writer(&addr, index, shards, ops))
        })
        .collect();
    let mut ops = 0usize;
    for writer in writers {
        ops += writer.join().map_err(|_| "writer thread panicked")??;
    }
    let deadline = Instant::now() + Duration::from_secs(300);
    for index in 0..shards as usize {
        let clock = stores[index].clock();
        while replicas[index].epoch() < clock {
            if Instant::now() > deadline {
                return Err(format!(
                    "shard {index} replica stuck at {} of {clock}",
                    replicas[index].epoch()
                ));
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    while gather.clocks().iter().sum::<u64>() < ops as u64 {
        if Instant::now() > deadline {
            return Err(format!(
                "gather stuck before the kill (down: {:?})",
                gather.first_down()
            ));
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    // Kill shard 0's primary; the clock runs until the deployment heals.
    let kill_started = Instant::now();
    servers[0].take().unwrap().shutdown();
    let promoted_term = replicas[0]
        .promote()
        .map_err(|e| format!("promotion failed: {e}"))?;

    // Healed means (a) a write lands on the promoted primary and (b)
    // the gather has re-resolved the slot under the new term and
    // resynced past everything it had served.
    let promoted_addr = fronts[0].local_addr().to_string();
    let recover_deadline = Instant::now() + Duration::from_secs(60);
    'write: loop {
        if let Ok(mut client) = Client::connect(promoted_addr.as_str(), "bench-failover", &[]) {
            if let Some(public) = client.predicate("Public") {
                loop {
                    match client.write(WriteOp::AppendNode {
                        label: "post-failover".to_string(),
                        kind: NodeKind::Data,
                        features: Features::new(),
                        lowest: public,
                    }) {
                        Ok(_) => break 'write,
                        Err(e) => {
                            if Instant::now() > recover_deadline {
                                return Err(format!("promoted shard never took a write: {e}"));
                            }
                            std::thread::sleep(Duration::from_micros(500));
                        }
                    }
                }
            }
        }
        if Instant::now() > recover_deadline {
            return Err("promoted shard front never accepted a connection".to_string());
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    while !gather.synced() {
        if Instant::now() > recover_deadline {
            return Err(format!(
                "gather never resynced after the failover (down: {:?})",
                gather.first_down()
            ));
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let recovery_ms = kill_started.elapsed().as_secs_f64() * 1e3;

    // Post-failover scatter-gather reads through the healed gather.
    let total_nodes = (ops as u32 / 3) * 2;
    let (requests, query_secs) = run_readers(
        &front.local_addr().to_string(),
        config.threads.max(1),
        config.requests,
        config.max_depth,
        total_nodes,
    )?;

    let shard_epochs = gather.clocks();
    front.shutdown();
    for server in fronts {
        server.shutdown();
    }
    for replica in replicas {
        replica.shutdown();
    }
    for server in servers.into_iter().flatten() {
        server.shutdown();
    }
    drop(gather);
    for dir in dirs {
        let _ = std::fs::remove_dir_all(dir);
    }

    Ok(ShardFailoverResult {
        shards,
        ops,
        recovery_ms,
        promoted_term,
        requests,
        threads: config.threads.max(1),
        post_failover_queries_per_sec: requests as f64 / query_secs.max(1e-9),
        shard_epochs,
    })
}
