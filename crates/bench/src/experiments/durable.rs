//! Durable-append benchmark: the write path the WAL subsystem adds —
//! append latency with fsync on and off, write-ahead-log volume, and
//! recovery (reopen) time.
//!
//! The paper has no durability experiment (its PLUS prototype delegated
//! persistence to a DBMS); this records the cost our embedded log pays
//! for the same guarantee, PR over PR, in `BENCH_*.json`.

use std::time::Instant;

use plus_store::wal::{self, DurabilityOptions};
use plus_store::{NodeKind, Store};
use surrogate_core::feature::Features;

/// Workload shape for the durable-append benchmark.
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// Node appends to perform.
    pub appends: usize,
    /// `fsync` after every append (the crash-plus-power-loss guarantee)
    /// or only on the OS's schedule (process-crash guarantee).
    pub fsync: bool,
    /// Segment rotation threshold.
    pub segment_max_bytes: u64,
}

impl DurableConfig {
    /// The bench-smoke pair: a small fsync-on run and a larger fsync-off
    /// run.
    pub fn smoke(fsync: bool) -> Self {
        Self {
            appends: if fsync { 200 } else { 2_000 },
            fsync,
            segment_max_bytes: 1 << 20,
        }
    }
}

/// Measured durable-append performance.
#[derive(Debug, Clone)]
pub struct DurableResult {
    /// Appends performed.
    pub appends: usize,
    /// Whether every append was fsynced.
    pub fsync: bool,
    /// Wall-clock for the append loop, milliseconds.
    pub elapsed_ms: f64,
    /// Mean per-append latency, microseconds.
    pub mean_append_us: f64,
    /// Append throughput.
    pub appends_per_sec: f64,
    /// Total write-ahead-log bytes produced.
    pub wal_bytes: u64,
    /// Segments the log rotated across.
    pub segments: usize,
    /// Reopen-with-recovery wall-clock, milliseconds.
    pub recovery_ms: f64,
    /// Clock recovered on reopen (must equal `appends`).
    pub recovered_clock: u64,
}

/// Runs the workload in a scratch directory under the OS temp dir.
pub fn run(config: DurableConfig) -> DurableResult {
    let dir = std::env::temp_dir().join(format!(
        "surrogate-durable-bench-{}-{}",
        std::process::id(),
        config.fsync
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::create_durable_with(
        &dir,
        &["Public"],
        &[],
        DurabilityOptions {
            fsync: config.fsync,
            segment_max_bytes: config.segment_max_bytes,
        },
    )
    .expect("scratch durable store creates");
    let public = store.predicate("Public").expect("declared");

    let t = Instant::now();
    for i in 0..config.appends {
        store.append_node(
            format!("n{i}"),
            NodeKind::Data,
            Features::new().with("i", i as i64),
            public,
        );
    }
    let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
    drop(store);

    let segments = wal::list_segments(&dir).expect("segments list");
    let wal_bytes: u64 = segments
        .iter()
        .map(|(_, path)| std::fs::metadata(path).map(|m| m.len()).unwrap_or(0))
        .sum();

    let t = Instant::now();
    let recovered = Store::open(&dir).expect("scratch store recovers");
    let recovery_ms = t.elapsed().as_secs_f64() * 1e3;
    let recovered_clock = recovered.clock();
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    DurableResult {
        appends: config.appends,
        fsync: config.fsync,
        elapsed_ms,
        mean_append_us: elapsed_ms * 1e3 / config.appends as f64,
        appends_per_sec: config.appends as f64 / (elapsed_ms / 1e3),
        wal_bytes,
        segments: segments.len(),
        recovery_ms,
        recovered_clock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durable_workload_completes_and_recovers() {
        let result = run(DurableConfig {
            appends: 64,
            fsync: false,
            segment_max_bytes: 1 << 12,
        });
        assert_eq!(result.appends, 64);
        assert_eq!(result.recovered_clock, 64, "every append recovered");
        assert!(result.wal_bytes > 0);
        assert!(result.segments >= 1);
        assert!(result.appends_per_sec > 0.0);
        assert!(result.recovery_ms >= 0.0);
    }
}
