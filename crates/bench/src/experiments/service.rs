//! Query throughput through the `AccountService` serving layer — the
//! workload the ROADMAP's north star cares about: one store, many
//! consumers, many lineage queries, served from the epoch-keyed account
//! cache.
//!
//! Reported alongside the paper figures (the paper itself has no serving
//! benchmark; §6.4 only sketches the deployment) so the PR-over-PR perf
//! trajectory of the serving path is recorded from the start.

use std::sync::Arc;
use std::time::Instant;

use plus_store::{AccountService, Direction, QueryRequest, RecordId};
use surrogate_core::account::Strategy;
use surrogate_core::credential::Consumer;

use super::fig10::{build_store, Fig10Config};

/// Workload shape for the serving benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Workflow stages of the underlying provenance graph.
    pub stages: usize,
    /// Artifacts per stage.
    pub width: usize,
    /// Fraction of sensitive nodes.
    pub sensitive_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Total lineage queries to serve.
    pub queries: usize,
    /// Queries per `query_batch` call.
    pub batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            stages: 12,
            width: 12,
            sensitive_fraction: 0.15,
            seed: 23,
            queries: 2_000,
            batch: 64,
        }
    }
}

/// Measured serving performance.
#[derive(Debug, Clone)]
pub struct ServiceResult {
    /// Node records in the workload.
    pub nodes: usize,
    /// Edge records in the workload.
    pub edges: usize,
    /// First batch, cold: includes materialization and the first account
    /// generation (the cost a fresh epoch pays once).
    pub cold_first_batch_ms: f64,
    /// Queries served after the cache is warm.
    pub queries: usize,
    /// Total rows returned across the warm queries.
    pub rows: usize,
    /// Warm wall-clock, milliseconds.
    pub warm_elapsed_ms: f64,
    /// Warm throughput.
    pub queries_per_sec: f64,
}

/// Runs the serving workload: a public consumer issues batched upstream /
/// downstream lineage queries over every record in round-robin.
pub fn run(config: ServiceConfig) -> ServiceResult {
    let store = build_store(Fig10Config {
        stages: config.stages,
        width: config.width,
        sensitive_fraction: config.sensitive_fraction,
        seed: config.seed,
        iterations: 1,
        simulated_db_roundtrip_us: None,
    });
    let nodes = store.node_count();
    let edges = store.edge_count();
    let service = AccountService::new(Arc::new(store));
    let consumer = Consumer::public(&service.snapshot().lattice);

    let request = |i: usize| {
        let direction = if i % 2 == 0 {
            Direction::Backward
        } else {
            Direction::Forward
        };
        QueryRequest::new(
            RecordId((i % nodes) as u32),
            direction,
            u32::MAX,
            Strategy::Surrogate,
        )
    };

    // Cold: the first batch pays materialization + account generation.
    let batch: Vec<QueryRequest> = (0..config.batch).map(request).collect();
    let t = Instant::now();
    let responses = service
        .query_batch(&consumer, &batch)
        .expect("public queries are authorized");
    let cold_first_batch_ms = t.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(responses);

    // Warm: everything comes from the cached account.
    let mut rows = 0usize;
    let mut served = 0usize;
    let t = Instant::now();
    while served < config.queries {
        let n = config.batch.min(config.queries - served);
        let batch: Vec<QueryRequest> = (served..served + n).map(request).collect();
        let responses = service
            .query_batch(&consumer, &batch)
            .expect("public queries are authorized");
        rows += responses.iter().map(|r| r.rows.len()).sum::<usize>();
        served += n;
    }
    let warm_elapsed_ms = t.elapsed().as_secs_f64() * 1e3;

    ServiceResult {
        nodes,
        edges,
        cold_first_batch_ms,
        queries: served,
        rows,
        warm_elapsed_ms,
        queries_per_sec: served as f64 / (warm_elapsed_ms / 1e3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_workload_completes_and_reports() {
        let result = run(ServiceConfig {
            stages: 3,
            width: 3,
            sensitive_fraction: 0.2,
            seed: 7,
            queries: 64,
            batch: 16,
        });
        assert!(result.nodes > 0 && result.edges > 0);
        assert_eq!(result.queries, 64);
        assert!(result.rows > 0, "lineage queries must return rows");
        assert!(result.queries_per_sec > 0.0);
        assert!(result.cold_first_batch_ms >= 0.0);
    }
}
