//! Fig. 3(b) and §4.1: the naïve account's utilities and per-node path
//! percentages.

use graphgen::Figure1;
use surrogate_core::measures::{node_utility, path_percentages, path_utility};

/// Measured vs published values for the naïve account of Fig. 1(c).
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// `%P(b')` (paper: 1/10).
    pub pct_b: f64,
    /// `%P(h')` (paper: 3/10).
    pub pct_h: f64,
    /// PathUtility (paper: .13).
    pub path_utility: f64,
    /// NodeUtility (paper: 6/11).
    pub node_utility: f64,
}

/// Regenerates the Fig. 3 numbers.
pub fn run() -> Fig3Result {
    let fig = Figure1::new();
    let account = fig.naive_account().expect("naive account generates");
    let pcts = path_percentages(&fig.graph, &account);
    Fig3Result {
        pct_b: pcts[fig.node("b").index()],
        pct_h: pcts[fig.node("h").index()],
        path_utility: path_utility(&fig.graph, &account),
        node_utility: node_utility(&fig.graph, &account),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_exactly() {
        let r = run();
        assert!((r.pct_b - 0.1).abs() < 1e-12);
        assert!((r.pct_h - 0.3).abs() < 1e-12);
        assert!((r.path_utility - 1.4 / 11.0).abs() < 1e-12);
        assert!((r.node_utility - 6.0 / 11.0).abs() < 1e-12);
    }
}
