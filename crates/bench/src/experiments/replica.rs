//! Replication benchmarks: how fast a cold replica catches up (WAL
//! frames replayed per second), and what a replica set buys in
//! aggregate query throughput — the PR-5 serving-at-scale record
//! (`BENCH_PR5.json`).
//!
//! Two phases:
//!
//! 1. **Catch-up.** A durable primary is pre-loaded with
//!    [`ReplicaBenchConfig::ops`] mutations and served with replication
//!    enabled; a cold [`Replica`] attaches and the wall clock runs until
//!    its epoch equals the primary's. (The bootstrap snapshot counts as
//!    part of catch-up: it is the fast path the feeder chooses, and
//!    hiding it would flatter the number. A second replica attaches the
//!    same way, giving the fan-out topology for phase 2.)
//! 2. **Aggregate throughput.** Closed-loop client threads spread
//!    single-query round trips across the 1 primary + 2 replica
//!    endpoints round-robin, all on loopback — the horizontal-read
//!    story the paper's serving model implies, measured end to end.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use plus_store::{
    AccountService, Direction, DurabilityOptions, EdgeKind, NodeKind, QueryRequest, RecordId, Store,
};
use server::{Client, Replica, ReplicaConfig, Server, ServerConfig};
use surrogate_core::account::Strategy;
use surrogate_core::feature::Features;

/// Workload shape for the replication benchmark.
#[derive(Debug, Clone)]
pub struct ReplicaBenchConfig {
    /// Mutations pre-loaded into the primary (nodes + edges).
    pub ops: usize,
    /// Read replicas attached (the ISSUE's topology is 2).
    pub replicas: usize,
    /// Closed-loop client threads in the aggregate phase.
    pub threads: usize,
    /// Total single-query round trips in the aggregate phase.
    pub requests: usize,
    /// Hop bound per query.
    pub max_depth: u32,
}

impl Default for ReplicaBenchConfig {
    fn default() -> Self {
        Self {
            ops: 50_000,
            replicas: 2,
            threads: 6,
            requests: 120_000,
            max_depth: 4,
        }
    }
}

impl ReplicaBenchConfig {
    /// The CI smoke shape: small enough for a busy runner, same paths.
    pub fn smoke() -> Self {
        Self {
            ops: 3_000,
            requests: 9_000,
            ..Self::default()
        }
    }
}

/// Measured replication performance.
#[derive(Debug, Clone)]
pub struct ReplicaBenchResult {
    /// Mutations the primary held when the replicas attached.
    pub ops: usize,
    /// Replicas attached.
    pub replicas: usize,
    /// Wall-clock for the **first** (cold) replica to reach the
    /// primary's epoch, milliseconds.
    pub catchup_ms: f64,
    /// `ops / catchup`: frames a cold replica replays per second.
    pub catchup_frames_per_sec: f64,
    /// Client threads in the aggregate phase.
    pub threads: usize,
    /// Single-query round trips completed across all endpoints.
    pub requests: usize,
    /// Aggregate queries per second across 1 primary + N replicas.
    pub aggregate_queries_per_sec: f64,
    /// Observed replica lag after the query phase (0 = fully coherent).
    pub final_lag: u64,
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-replica-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds the primary's workload: a layered pipeline of nodes with a
/// High-classified minority, edges linking each node back to an
/// earlier one — every mutation is one WAL frame.
fn load_primary(store: &Store, ops: usize) {
    let public = store.predicate("Public").unwrap();
    let high = store.predicate("High").unwrap();
    let mut nodes = 0u32;
    for i in 0..ops {
        if i % 3 == 2 && nodes >= 2 {
            // A fresh edge: node k -> k - (k % 7 + 1), never duplicated
            // because each target node gains at most one inbound edge
            // from this pattern per source.
            let from = nodes - 1;
            let to = from - (from % 7 + 1).min(from);
            if from != to
                && store
                    .append_edge(RecordId(from), RecordId(to), EdgeKind::InputTo)
                    .is_ok()
            {
                continue;
            }
        }
        let lowest = if i % 10 == 0 { high } else { public };
        store.append_node(
            format!("n{i}"),
            [NodeKind::Data, NodeKind::Process, NodeKind::Agent][i % 3],
            Features::new().with("i", i as i64),
            lowest,
        );
        nodes += 1;
    }
}

/// Runs the replication benchmark. Errors are strings: this is a
/// harness, and every failure is terminal for the run.
pub fn run(config: &ReplicaBenchConfig) -> Result<ReplicaBenchResult, String> {
    let primary_dir = temp_dir("primary");
    let store = Arc::new(
        Store::create_durable_with(
            &primary_dir,
            &["Public", "High"],
            &[(1, 0)],
            DurabilityOptions {
                fsync: false,
                ..Default::default()
            },
        )
        .map_err(|e| format!("cannot create primary store: {e}"))?,
    );
    load_primary(&store, config.ops);
    let primary_epoch = store.clock();

    let service = Arc::new(AccountService::new(store.clone()));
    let server_config = ServerConfig {
        threads: config.threads.max(2),
        allow_replication: true,
        ..ServerConfig::default()
    };
    let primary = Server::bind(service, "127.0.0.1:0", &server_config)
        .map_err(|e| format!("cannot bind primary: {e}"))?;
    let primary_addr = primary.local_addr().to_string();

    // --- Phase 1: cold catch-up ---------------------------------------
    let replica_config = ReplicaConfig {
        durability: DurabilityOptions {
            fsync: false,
            ..Default::default()
        },
        ..ReplicaConfig::default()
    };
    let mut replicas = Vec::new();
    let mut replica_dirs = Vec::new();
    let started = Instant::now();
    let mut catchup_ms = 0.0;
    for r in 0..config.replicas.max(1) {
        let dir = temp_dir(&format!("replica-{r}"));
        let replica = Replica::start_with(&primary_addr, &dir, replica_config)
            .map_err(|e| format!("replica {r} failed to start: {e}"))?;
        let deadline = Instant::now() + Duration::from_secs(300);
        while replica.epoch() < primary_epoch {
            if Instant::now() > deadline {
                return Err(format!(
                    "replica {r} stuck at epoch {} of {primary_epoch}: {:?}",
                    replica.epoch(),
                    replica.status()
                ));
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        if r == 0 {
            catchup_ms = started.elapsed().as_secs_f64() * 1e3;
        }
        replicas.push(replica);
        replica_dirs.push(dir);
    }

    // --- Phase 2: aggregate throughput over the whole topology --------
    let mut servers = vec![];
    let mut addrs = vec![primary_addr.clone()];
    for replica in &replicas {
        let server = Server::bind(
            replica.service().clone(),
            "127.0.0.1:0",
            &ServerConfig {
                role: server::Role::Replica {
                    feed: replica.monitor(),
                },
                threads: config.threads.max(2),
                ..ServerConfig::default()
            },
        )
        .map_err(|e| format!("cannot bind replica server: {e}"))?;
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }

    let nodes = store.node_count().max(1) as u32;
    let request = |i: usize| {
        QueryRequest::new(
            RecordId(i as u32 % nodes),
            if i % 2 == 0 {
                Direction::Backward
            } else {
                Direction::Forward
            },
            config.max_depth,
            Strategy::Surrogate,
        )
    };
    let per_thread = config.requests / config.threads.max(1);
    let start_line = std::sync::Barrier::new(config.threads + 1);
    let (results, elapsed_ms): (Vec<Result<usize, String>>, f64) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|tid| {
                // Threads spread across endpoints round-robin: the
                // aggregate is what the topology serves, not one node.
                let addr = addrs[tid % addrs.len()].clone();
                let start_line = &start_line;
                scope.spawn(move || -> Result<usize, String> {
                    let connected = Client::connect(addr.as_str(), "loadgen", &[])
                        .map_err(|e| format!("connect {addr}: {e}"));
                    let warmed = connected.and_then(|mut client| {
                        for i in 0..32.min(per_thread) {
                            client
                                .query(&request(i))
                                .map_err(|e| format!("warmup: {e}"))?;
                        }
                        Ok(client)
                    });
                    start_line.wait();
                    let mut client = warmed?;
                    for i in 0..per_thread {
                        client
                            .query(&request(i * config.threads + tid))
                            .map_err(|e| format!("query: {e}"))?;
                    }
                    Ok(per_thread)
                })
            })
            .collect();
        start_line.wait();
        let started = Instant::now();
        let results = handles
            .into_iter()
            .map(|h| h.join().expect("load thread never panics"))
            .collect();
        (results, started.elapsed().as_secs_f64() * 1e3)
    });
    let mut requests = 0usize;
    for result in results {
        requests += result?;
    }
    let final_lag = replicas.iter().map(|r| r.lag()).max().unwrap_or(0);

    for server in servers {
        server.shutdown();
    }
    primary.shutdown();
    for replica in replicas {
        replica.shutdown();
    }
    std::fs::remove_dir_all(&primary_dir).ok();
    for dir in replica_dirs {
        std::fs::remove_dir_all(&dir).ok();
    }

    Ok(ReplicaBenchResult {
        ops: primary_epoch as usize,
        replicas: config.replicas,
        catchup_ms,
        catchup_frames_per_sec: primary_epoch as f64 / (catchup_ms / 1e3),
        threads: config.threads,
        requests,
        aggregate_queries_per_sec: requests as f64 / (elapsed_ms / 1e3),
        final_lag,
    })
}
