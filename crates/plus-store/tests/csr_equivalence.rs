//! Equivalence oracle for the CSR protection rewrite: on random
//! `graphgen` workflows, the dense CSR path in `surrogate_core::account`
//! must be indistinguishable from the retained hash-based reference
//! implementation — same node layer, same edge set (with the same
//! surrogate classification), the same lineage rows for every natural
//! query root, and byte-identical sealed wire frames for the responses
//! built from those rows.

use graphgen::workflow::{generate as generate_workflow, WorkflowConfig};
use plus_store::codec::seal_frame;
use plus_store::service::lineage_rows;
use plus_store::wire::{encode_response, Response};
use plus_store::{Direction, ProtectedLineageRow, QueryResponse, RecordId};
use proptest::prelude::*;
use surrogate_core::account::{self, GenerateOptions, ProtectedAccount, ProtectionContext};
use surrogate_core::graph::Csr;

/// Account edges as a sorted, comparable set: `(from, to, is_surrogate)`.
fn edge_set(account: &ProtectedAccount) -> Vec<(u32, u32, bool)> {
    let mut edges: Vec<(u32, u32, bool)> = account
        .graph()
        .edges()
        .map(|e| (e.0 .0, e.1 .0, account.is_surrogate_edge(e)))
        .collect();
    edges.sort_unstable();
    edges
}

/// The sealed wire frame a server would send for `rows`.
fn sealed(root: RecordId, rows: Vec<ProtectedLineageRow>) -> Vec<u8> {
    let response = Response::Query(QueryResponse {
        epoch: 1,
        root,
        rows,
        shard_epochs: vec![],
    });
    seal_frame(&encode_response(&response).expect("lineage responses encode"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_protection_matches_the_reference_path(
        stages in 1usize..4,
        width in 1usize..5,
        max_fan_in in 1usize..4,
        sensitive_tenths in 0u32..7,
        seed in any::<u64>(),
        redundancy_filter in any::<bool>(),
    ) {
        let wf = generate_workflow(WorkflowConfig {
            stages,
            width,
            max_fan_in,
            sensitive_fraction: f64::from(sensitive_tenths) / 10.0,
            seed,
        });
        let options = GenerateOptions { redundancy_filter };

        let ctx = ProtectionContext::new(&wf.graph, &wf.lattice, &wf.markings, &wf.catalog);
        let reference =
            account::reference::generate_with_options(&ctx, &[wf.public], options).unwrap();

        let csr = Csr::build(&wf.graph);
        let ctx = ProtectionContext::new(&wf.graph, &wf.lattice, &wf.markings, &wf.catalog)
            .with_csr(&csr);
        let dense = account::generate_with_options(&ctx, &[wf.public], options).unwrap();

        // Node layer: identical ids, labels, and original correspondence.
        prop_assert_eq!(dense.graph().node_count(), reference.graph().node_count());
        for n in reference.graph().node_ids() {
            prop_assert_eq!(&dense.graph().node(n).label, &reference.graph().node(n).label);
            prop_assert_eq!(dense.original_node(n), reference.original_node(n));
        }

        // Edge layer: the same set, classified the same way.
        prop_assert_eq!(edge_set(&dense), edge_set(&reference));

        // Lineage rows and wire bytes: every workflow output answers the
        // same unbounded upstream query, down to the sealed frame.
        for &root in &wf.outputs {
            let root = RecordId(root.0);
            let ref_rows = lineage_rows(&reference, root, Direction::Backward, u32::MAX);
            let dense_rows = lineage_rows(&dense, root, Direction::Backward, u32::MAX);
            prop_assert_eq!(&dense_rows, &ref_rows);
            prop_assert_eq!(sealed(root, dense_rows), sealed(root, ref_rows));
        }
    }
}
