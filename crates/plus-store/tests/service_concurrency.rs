//! Concurrency contract of `AccountService`: several reader threads
//! hammer `get_account` / `query` while a writer applies mutations (or
//! re-registers strategies), and every answer must be consistent with
//! the epoch — and the strategy registration — it claims.
//!
//! The store construction makes "consistent" checkable: after the base
//! fixture, **every mutation appends exactly one Public node**, so the
//! public account at epoch `e` must contain exactly
//! `base_nodes + (e - base_epoch)` nodes. An account served from a stale
//! cache entry, or generated from a materialization inconsistent with its
//! epoch stamp, fails that equation immediately.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use plus_store::{
    AccountService, Direction, EdgeKind, NodeKind, PolicyStatement, QueryRequest, Store,
};
use surrogate_core::account::Strategy;
use surrogate_core::credential::Consumer;
use surrogate_core::feature::Features;

const READERS: usize = 4;
const MUTATIONS: usize = 200;

/// secret(High, Public surrogate wired in place) → analysis → report.
fn base_store() -> Arc<Store> {
    let store = Arc::new(Store::new(&["Public", "High"], &[(1, 0)]).unwrap());
    let public = store.predicate("Public").unwrap();
    let high = store.predicate("High").unwrap();
    let secret = store.append_node("secret source", NodeKind::Agent, Features::new(), high);
    let analysis = store.append_node("analysis", NodeKind::Process, Features::new(), public);
    let report = store.append_node("report", NodeKind::Data, Features::new(), public);
    store
        .append_edge(secret, analysis, EdgeKind::InputTo)
        .unwrap();
    store
        .append_edge(analysis, report, EdgeKind::GeneratedBy)
        .unwrap();
    store
        .apply_policy(PolicyStatement::AddSurrogate {
            node: secret,
            label: "a trusted source".into(),
            features: Features::new(),
            lowest: public,
            info_score: 0.3,
        })
        .unwrap();
    store
}

#[test]
fn concurrent_mutations_never_serve_stale_epochs() {
    let store = base_store();
    let public = store.predicate("Public").unwrap();
    let service = Arc::new(AccountService::new(store.clone()));
    let base_epoch = store.version();
    let base_nodes = service
        .protect(&[public], &Strategy::Surrogate)
        .unwrap()
        .graph()
        .node_count() as u64;

    let done = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for reader in 0..READERS {
        let service = service.clone();
        let done = done.clone();
        readers.push(std::thread::spawn(move || {
            let consumer = Consumer::public(&service.snapshot().lattice);
            let mut last_epoch = 0u64;
            let mut iterations = 0u64;
            while !done.load(Ordering::Relaxed) || iterations == 0 {
                iterations += 1;
                // Account path: the served account must match the epoch of
                // the snapshot it was resolved against.
                let snapshot = service.snapshot();
                let epoch = snapshot.epoch();
                assert!(
                    epoch >= last_epoch,
                    "reader {reader}: epoch went backward ({last_epoch} -> {epoch})"
                );
                last_epoch = epoch;
                let account = service
                    .protect_at(&snapshot, &[public], &Strategy::Surrogate)
                    .expect("protection never fails on this workload");
                assert_eq!(
                    account.graph().node_count() as u64,
                    base_nodes + (epoch - base_epoch),
                    "reader {reader}: account inconsistent with epoch {epoch}"
                );

                // Query path: the response's stamped epoch must obey the
                // same equation, and the lineage answer itself is an
                // epoch-independent paper invariant (the appended nodes
                // are isolated, so upstream of `report` never changes).
                let response = service
                    .query(
                        &consumer,
                        &QueryRequest::new(
                            plus_store::RecordId(2),
                            Direction::Backward,
                            u32::MAX,
                            Strategy::Surrogate,
                        ),
                    )
                    .expect("public query is authorized");
                assert!(
                    response.epoch >= last_epoch,
                    "reader {reader}: response epoch went backward"
                );
                last_epoch = response.epoch;
                let labels: Vec<&str> = response.rows.iter().map(|r| r.label.as_str()).collect();
                assert_eq!(
                    labels,
                    ["analysis", "a trusted source"],
                    "reader {reader}: lineage answer drifted at epoch {}",
                    response.epoch
                );
                assert!(response.rows[1].surrogate, "surrogate flag preserved");
            }
            iterations
        }));
    }

    // Writer: one Public node per mutation, each bumping the version by 1.
    let writer = {
        let store = store.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            for i in 0..MUTATIONS {
                store.append_node(
                    format!("extra-{i}"),
                    NodeKind::Data,
                    Features::new(),
                    public,
                );
                if i % 16 == 0 {
                    std::thread::yield_now();
                }
            }
            done.store(true, Ordering::Relaxed);
        })
    };

    writer.join().unwrap();
    let iterations: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(iterations >= READERS as u64, "every reader ran");

    // Quiesced: the final epoch reflects every mutation.
    assert_eq!(store.version(), base_epoch + MUTATIONS as u64);
    let final_account = service.protect(&[public], &Strategy::Surrogate).unwrap();
    assert_eq!(
        final_account.graph().node_count() as u64,
        base_nodes + MUTATIONS as u64
    );
    // While readers race, a pinned old snapshot may legitimately coexist
    // in the cache with the live epoch; once a fresh epoch is built with
    // no concurrent pins, the sweep leaves exactly the live account.
    store.append_node("final", NodeKind::Data, Features::new(), public);
    let _ = service.protect(&[public], &Strategy::Surrogate).unwrap();
    assert_eq!(
        service.cached_accounts(),
        1,
        "only the live epoch remains cached after quiescence"
    );
}

#[test]
fn concurrent_policy_mutations_flip_visibility_atomically() {
    // The writer toggles the secret node's incidences between Hide and
    // Visible for the public; readers must only ever observe one of the
    // two legal account shapes — the surrogate wired in place (2 edges)
    // or cut off (1 edge) — never a torn mix, and the analysis → report
    // edge survives every flip.
    let store = base_store();
    let public = store.predicate("Public").unwrap();
    let service = Arc::new(AccountService::new(store.clone()));
    let done = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..READERS {
        let service = service.clone();
        let done = done.clone();
        readers.push(std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                let account = service.protect(&[public], &Strategy::Surrogate).unwrap();
                assert_eq!(account.graph().node_count(), 3, "node layer is stable");
                let edges = account.graph().edge_count();
                assert!(
                    edges == 1 || edges == 2,
                    "illegal account shape: {edges} edges"
                );
                let analysis = account
                    .account_node(surrogate_core::graph::NodeId(1))
                    .expect("analysis is public");
                let report = account
                    .account_node(surrogate_core::graph::NodeId(2))
                    .expect("report is public");
                assert!(
                    account.graph().has_edge(analysis, report),
                    "the public half of the chain survives every flip"
                );
            }
        }));
    }

    for i in 0..64 {
        let marking = if i % 2 == 0 {
            surrogate_core::marking::Marking::Hide
        } else {
            surrogate_core::marking::Marking::Visible
        };
        store
            .apply_policy(PolicyStatement::MarkNode {
                node: plus_store::RecordId(0),
                predicate: Some(public),
                marking,
            })
            .unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for reader in readers {
        reader.join().unwrap();
    }
}

/// A strategy that counts how many times it actually ran. Single-flight
/// generation makes the count observable: however many threads race on a
/// cold cache key, exactly one of them may pay for the build.
struct CountingStrategy {
    builds: Arc<std::sync::atomic::AtomicUsize>,
}

impl surrogate_core::strategy::ProtectionStrategy for CountingStrategy {
    fn name(&self) -> &str {
        "counting"
    }

    fn protect(
        &self,
        ctx: &surrogate_core::account::ProtectionContext<'_>,
        preds: &[surrogate_core::privilege::PrivilegeId],
    ) -> surrogate_core::error::Result<surrogate_core::account::ProtectedAccount> {
        self.builds.fetch_add(1, Ordering::SeqCst);
        // Widen the race window: every thread that sneaks past the cache
        // check before the leader publishes would add a build here.
        std::thread::sleep(std::time::Duration::from_millis(20));
        Strategy::Surrogate.protect(ctx, preds)
    }
}

/// Satellite regression: a cold cache key under a thundering herd must
/// trigger exactly one account build. Before single-flight, all sixteen
/// threads released from the barrier found the cache empty and each ran
/// the (deliberately slow) strategy; now followers block on the leader's
/// flight and are served its published account.
#[test]
fn cold_cache_misses_build_exactly_once_per_key() {
    const HERD: usize = 16;
    let store = base_store();
    let service = Arc::new(AccountService::new(store));
    let builds = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    service.register_strategy(Arc::new(CountingStrategy {
        builds: builds.clone(),
    }));

    let barrier = Arc::new(std::sync::Barrier::new(HERD));
    let threads: Vec<_> = (0..HERD)
        .map(|_| {
            let service = service.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let consumer = Consumer::public(&service.snapshot().lattice);
                barrier.wait();
                service
                    .get_account_named(&consumer, "counting")
                    .expect("counting strategy is registered")
            })
        })
        .collect();
    let accounts: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    assert_eq!(
        builds.load(Ordering::SeqCst),
        1,
        "thundering herd on one cold key must collapse to a single build"
    );
    // Every follower got the leader's account, not a private rebuild.
    for account in &accounts[1..] {
        assert!(Arc::ptr_eq(account, &accounts[0]));
    }
}

/// A strategy whose account shape identifies which registration built
/// it: `wide` serves the surrogate account (3 public nodes on the base
/// fixture), narrow the naive node-hide account (2 — the secret is
/// dropped outright).
struct FlipStrategy {
    wide: bool,
}

impl surrogate_core::strategy::ProtectionStrategy for FlipStrategy {
    fn name(&self) -> &str {
        "flip"
    }

    fn protect(
        &self,
        ctx: &surrogate_core::account::ProtectionContext<'_>,
        preds: &[surrogate_core::privilege::PrivilegeId],
    ) -> surrogate_core::error::Result<surrogate_core::account::ProtectedAccount> {
        if self.wide {
            Strategy::Surrogate.protect(ctx, preds)
        } else {
            Strategy::HideNodes.protect(ctx, preds)
        }
    }
}

/// Account shape of registration `i` on the base fixture's public view.
fn flip_nodes(i: usize) -> usize {
    if i % 2 == 0 {
        3
    } else {
        2
    }
}

/// Readers hammer a named strategy while the writer re-registers it with
/// alternating implementations. The contract under test: once a
/// registration completes, *no* later-starting request may be served an
/// account generated by a previous registration — even though a request
/// racing the swap may cache its (old) account after the swap's purge.
///
/// Each reader brackets its call with two counters: `done` (stored after
/// `register_strategy` returns) read *before* the call, and `started`
/// (stored before `register_strategy` begins) read *after* it. When the
/// two agree, the whole call ran inside one stable registration, so the
/// served account must match that registration exactly.
#[test]
fn re_registration_is_never_shadowed_by_racing_caches() {
    const SWAPS: usize = 200;
    let store = base_store();
    let service = Arc::new(AccountService::new(store));
    service.register_strategy(Arc::new(FlipStrategy { wide: true })); // registration 0
    let started = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for reader in 0..READERS {
        let service = service.clone();
        let started = started.clone();
        let done = done.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let consumer = Consumer::public(&service.snapshot().lattice);
            let mut stable_windows = 0u64;
            let mut last_pass = false;
            while !last_pass {
                // One guaranteed-stable pass after the writer quiesces.
                last_pass = stop.load(Ordering::SeqCst);
                let d = done.load(Ordering::SeqCst);
                let account = service
                    .get_account_named(&consumer, "flip")
                    .expect("flip stays registered");
                let s = started.load(Ordering::SeqCst);
                let nodes = account.graph().node_count();
                assert!(
                    nodes == 2 || nodes == 3,
                    "reader {reader}: impossible account shape ({nodes} nodes)"
                );
                if d == s {
                    // Registration `d` completed before the call began and
                    // no replacement started before it returned: serving
                    // any other registration's account is a stale read.
                    stable_windows += 1;
                    assert_eq!(
                        nodes,
                        flip_nodes(d),
                        "reader {reader}: stale strategy served in stable window {d}"
                    );
                }
            }
            stable_windows
        }));
    }

    for i in 1..=SWAPS {
        started.store(i, Ordering::SeqCst);
        service.register_strategy(Arc::new(FlipStrategy { wide: i % 2 == 0 }));
        done.store(i, Ordering::SeqCst);
        if i % 8 == 0 {
            std::thread::yield_now();
        }
    }
    stop.store(true, Ordering::SeqCst);

    let stable: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(
        stable >= READERS as u64,
        "every reader saw at least its quiescent stable window"
    );
    // Quiesced: the name serves exactly the final registration.
    let consumer = Consumer::public(&service.snapshot().lattice);
    let account = service.get_account_named(&consumer, "flip").unwrap();
    assert_eq!(account.graph().node_count(), flip_nodes(SWAPS));
}
