//! Property tests for the snapshot codec and store roundtrips: arbitrary
//! stores survive encode/decode unchanged, and arbitrary bytes never panic
//! the decoder.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use plus_store::{codec, EdgeKind, NodeKind, PolicyStatement, RecordId, Store};
use surrogate_core::feature::{FeatureValue, Features};
use surrogate_core::marking::Marking;
use surrogate_core::shard::{Partition, ShardMap};

fn random_store(nodes: usize, seed: u64) -> Store {
    let mut rng = StdRng::seed_from_u64(seed);
    let store =
        Store::new(&["Public", "Mid", "High"], &[(1, 0), (2, 1)]).expect("chain lattice is valid");
    let preds = [
        store.predicate("Public").unwrap(),
        store.predicate("Mid").unwrap(),
        store.predicate("High").unwrap(),
    ];
    let kinds = [NodeKind::Data, NodeKind::Process, NodeKind::Agent];
    let edge_kinds = [
        EdgeKind::InputTo,
        EdgeKind::GeneratedBy,
        EdgeKind::TriggeredBy,
        EdgeKind::Related,
    ];

    let ids: Vec<RecordId> = (0..nodes)
        .map(|i| {
            let mut features = Features::new();
            for f in 0..rng.gen_range(0..4) {
                let value: FeatureValue = match rng.gen_range(0..5) {
                    0 => FeatureValue::Str(format!("value-{}", rng.gen::<u32>())),
                    1 => FeatureValue::Int(rng.gen()),
                    2 => FeatureValue::Float(rng.gen::<f64>()),
                    3 => FeatureValue::Bool(rng.gen()),
                    _ => FeatureValue::Timestamp(rng.gen()),
                };
                features.set(format!("k{f}"), value);
            }
            store.append_node(
                format!("node-{i}"),
                kinds[rng.gen_range(0..3usize)],
                features,
                preds[rng.gen_range(0..3usize)],
            )
        })
        .collect();

    if nodes >= 2 {
        for _ in 0..rng.gen_range(0..nodes * 2) {
            let a = ids[rng.gen_range(0..nodes)];
            let b = ids[rng.gen_range(0..nodes)];
            let _ = store.append_edge(a, b, edge_kinds[rng.gen_range(0..4usize)]);
        }
    }

    for _ in 0..rng.gen_range(0..nodes) {
        let node = ids[rng.gen_range(0..nodes)];
        let statement = match rng.gen_range(0..3) {
            0 => PolicyStatement::MarkNode {
                node,
                predicate: rng.gen_bool(0.5).then(|| preds[rng.gen_range(0..3usize)]),
                marking: [Marking::Visible, Marking::Hide, Marking::Surrogate]
                    [rng.gen_range(0..3usize)],
            },
            1 => PolicyStatement::AddSurrogate {
                node,
                label: format!("surrogate-{}", rng.gen::<u16>()),
                features: Features::new(),
                lowest: preds[0],
                info_score: rng.gen_range(0..=100) as f64 / 100.0,
            },
            _ => {
                // Mark an incidence of an arbitrary (possibly absent) edge
                // between known records — the store validates records, not
                // edge existence, mirroring provider autonomy.
                let from = ids[rng.gen_range(0..nodes)];
                let to = ids[rng.gen_range(0..nodes)];
                PolicyStatement::MarkIncidence {
                    node: from,
                    from,
                    to,
                    predicate: rng.gen_bool(0.5).then(|| preds[rng.gen_range(0..3usize)]),
                    marking: Marking::Surrogate,
                }
            }
        };
        store.apply_policy(statement).expect("records exist");
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity on the record log.
    #[test]
    fn snapshot_roundtrip(nodes in 1usize..30, seed in any::<u64>()) {
        let store = random_store(nodes, seed);
        let bytes = store.to_bytes();
        let restored = Store::from_bytes(&bytes).unwrap();
        prop_assert_eq!(restored.node_count(), store.node_count());
        prop_assert_eq!(restored.edge_count(), store.edge_count());
        prop_assert_eq!(restored.policy_count(), store.policy_count());
        prop_assert_eq!(restored.clock(), store.clock());
        // Stable re-encoding: byte-identical snapshots.
        prop_assert_eq!(restored.to_bytes(), bytes);
    }

    /// Materialization after a roundtrip produces the same graph shape and
    /// policy effects.
    #[test]
    fn materialization_survives_roundtrip(nodes in 1usize..20, seed in any::<u64>()) {
        let store = random_store(nodes, seed);
        let restored = Store::from_bytes(&store.to_bytes()).unwrap();
        let a = store.materialize();
        let b = restored.materialize();
        prop_assert_eq!(a.graph.node_count(), b.graph.node_count());
        prop_assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        prop_assert_eq!(ea, eb);
        for n in a.graph.node_ids() {
            prop_assert_eq!(&a.graph.node(n).label, &b.graph.node(n).label);
            prop_assert_eq!(&a.graph.node(n).features, &b.graph.node(n).features);
            prop_assert_eq!(a.graph.node(n).lowest, b.graph.node(n).lowest);
            prop_assert_eq!(a.catalog.for_node(n).len(), b.catalog.for_node(n).len());
        }
    }

    /// Arbitrary bytes never panic the decoder — they fail cleanly.
    #[test]
    fn decoder_rejects_garbage_without_panicking(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Store::from_bytes(&bytes); // must not panic
    }

    /// Any single-byte corruption of a valid snapshot is rejected.
    #[test]
    fn bit_flips_are_rejected(nodes in 1usize..10, seed in any::<u64>(), flip in any::<u16>()) {
        let store = random_store(nodes, seed);
        let mut bytes = store.to_bytes();
        let idx = flip as usize % bytes.len();
        bytes[idx] ^= 0x01;
        prop_assert!(Store::from_bytes(&bytes).is_err());
    }

    /// The sharding invariant the whole scatter-gather design leans on:
    /// under any map, every global id is owned by *exactly one* shard,
    /// that shard is `shard_of(id)`, and the local ↔ global position
    /// arithmetic is a bijection on the owned class.
    #[test]
    fn every_id_has_exactly_one_owner(count in 1u32..64, id in any::<u32>()) {
        let map = ShardMap::new(count).unwrap();
        let owners: Vec<u32> = (0..count)
            .filter(|&i| map.partition(i).unwrap().owns(id))
            .collect();
        prop_assert_eq!(&owners, &vec![map.shard_of(id)], "id {} under {} shards", id, count);
        let partition = map.partition(owners[0]).unwrap();
        let local = partition.local(id);
        prop_assert_eq!(partition.global(local), id, "local/global roundtrip");
    }

    /// A partitioned store's slice survives the snapshot codec: the
    /// `SnapshotData.partition` field roundtrips, re-encoding is
    /// byte-stable, and an unpartitioned snapshot stays version 1 (no
    /// partition material on disk at all).
    #[test]
    fn partition_roundtrips_through_snapshots(
        count in 1u32..8,
        index_seed in any::<u32>(),
        nodes in 0usize..12,
    ) {
        let index = index_seed % count;
        let partition = Partition::new(index, count).unwrap();
        let store = Store::new_partitioned(&["Public"], &[], partition).unwrap();
        let public = store.predicate("Public").unwrap();
        for i in 0..nodes {
            let id = store
                .try_append_node(format!("n{i}"), NodeKind::Data, Features::new(), public)
                .unwrap();
            prop_assert!(partition.owns(id.0), "assigned ids stay in the owned class");
        }
        let bytes = store.to_bytes();
        let data = codec::decode(&bytes).unwrap();
        prop_assert_eq!(data.partition, Some(partition));
        let restored = Store::from_bytes(&bytes).unwrap();
        prop_assert_eq!(restored.partition(), Some(partition));
        prop_assert_eq!(restored.node_count(), store.node_count());
        prop_assert_eq!(restored.to_bytes(), bytes);
        // The degenerate unpartitioned store encodes no partition.
        let plain = Store::new(&["Public"], &[]).unwrap();
        prop_assert_eq!(codec::decode(&plain.to_bytes()).unwrap().partition, None);
    }
}
