//! Property tests for the wire protocol: arbitrary requests and
//! responses survive encode/decode unchanged, and no byte stream — torn,
//! bit-flipped, oversized, or pure garbage — can panic the decoders or
//! smuggle a different message through a checksum-valid frame.
//!
//! Mirrors the `wal_recovery.rs` frame-codec properties: the wire reuses
//! the WAL's `len | crc32 | payload` convention, so the same corruption
//! discipline is proven at the same boundary.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use plus_store::codec::{open_frame, seal_frame, RawFrame, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use plus_store::wire::{
    decode_request, decode_response, encode_request, encode_response, ReplicaRole, ReplicaStatus,
    Request, Response, ServerHello, ShardStatusInfo, WalChunk, WireError, WireErrorKind, WriteOp,
    MAX_BATCH, MAX_SHARDS, MAX_WAL_CHUNK, PROTOCOL_VERSION,
};
use plus_store::{
    CheckpointStats, CodecError, EdgeKind, NodeKind, PolicyStatement, ProtectedLineageRow,
    QueryRequest, QueryResponse, RecordId, SegmentDigest, Strategy,
};
use surrogate_core::feature::Features;
use surrogate_core::marking::Marking;
use surrogate_core::privilege::PrivilegeId;
use surrogate_core::query::Direction;

fn random_string(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| {
            // Bias toward ASCII but keep multi-byte UTF-8 in play.
            if rng.gen_bool(0.9) {
                rng.gen_range(b' '..=b'~') as char
            } else {
                ['é', 'ü', '界', '🦀'][rng.gen_range(0..4usize)]
            }
        })
        .collect()
}

fn random_query_request(rng: &mut StdRng) -> QueryRequest {
    let direction =
        [Direction::Backward, Direction::Forward, Direction::Both][rng.gen_range(0..3usize)];
    let strategy = [
        Strategy::Surrogate,
        Strategy::HideEdges,
        Strategy::HideNodes,
    ][rng.gen_range(0..3usize)];
    let mut request = QueryRequest::new(RecordId(rng.gen()), direction, rng.gen(), strategy);
    if rng.gen_bool(0.5) {
        request = request.with_predicate(PrivilegeId(rng.gen()));
    }
    request
}

fn random_query_response(rng: &mut StdRng) -> QueryResponse {
    let rows = (0..rng.gen_range(0..6usize))
        .map(|_| ProtectedLineageRow {
            record: RecordId(rng.gen()),
            label: random_string(rng, 24),
            depth: rng.gen(),
            surrogate: rng.gen_bool(0.3),
        })
        .collect();
    QueryResponse {
        epoch: rng.gen(),
        root: RecordId(rng.gen()),
        rows,
        shard_epochs: (0..rng.gen_range(0..4usize)).map(|_| rng.gen()).collect(),
    }
}

fn random_features(rng: &mut StdRng) -> Features {
    let mut features = Features::new();
    for _ in 0..rng.gen_range(0..3usize) {
        features.set(random_string(rng, 8), random_string(rng, 12));
    }
    features
}

fn random_write_op(rng: &mut StdRng) -> WriteOp {
    match rng.gen_range(0..3usize) {
        0 => WriteOp::AppendNode {
            label: random_string(rng, 16),
            kind: [NodeKind::Data, NodeKind::Process, NodeKind::Agent][rng.gen_range(0..3usize)],
            features: random_features(rng),
            lowest: PrivilegeId(rng.gen()),
        },
        1 => WriteOp::AppendEdge {
            from: RecordId(rng.gen()),
            to: RecordId(rng.gen()),
            kind: [
                EdgeKind::InputTo,
                EdgeKind::GeneratedBy,
                EdgeKind::TriggeredBy,
                EdgeKind::Related,
            ][rng.gen_range(0..4usize)],
        },
        _ => {
            let node = RecordId(rng.gen());
            let predicate = rng.gen_bool(0.5).then(|| PrivilegeId(rng.gen()));
            let marking =
                [Marking::Visible, Marking::Hide, Marking::Surrogate][rng.gen_range(0..3usize)];
            WriteOp::ApplyPolicy(match rng.gen_range(0..3usize) {
                0 => PolicyStatement::MarkIncidence {
                    node,
                    from: RecordId(rng.gen()),
                    to: RecordId(rng.gen()),
                    predicate,
                    marking,
                },
                1 => PolicyStatement::MarkNode {
                    node,
                    predicate,
                    marking,
                },
                _ => PolicyStatement::AddSurrogate {
                    node,
                    label: random_string(rng, 16),
                    features: random_features(rng),
                    lowest: PrivilegeId(rng.gen()),
                    info_score: f64::from(rng.gen::<u16>()),
                },
            })
        }
    }
}

fn random_request(rng: &mut StdRng) -> Request {
    match rng.gen_range(0..11usize) {
        9 => Request::Write {
            op: random_write_op(rng),
        },
        10 => Request::ShardStatus,
        0 => Request::Hello {
            version: rng.gen(),
            consumer: random_string(rng, 16),
            claims: (0..rng.gen_range(0..4usize))
                .map(|_| random_string(rng, 12))
                .collect(),
        },
        1 => Request::Query(random_query_request(rng)),
        2 => Request::Batch(
            (0..rng.gen_range(0..5usize))
                .map(|_| random_query_request(rng))
                .collect(),
        ),
        3 => Request::Epoch,
        4 => Request::Subscribe {
            from_clock: rng.gen(),
        },
        5 => Request::ReplicaStatus,
        6 => Request::LogDigests,
        7 => Request::Promote,
        _ => Request::Checkpoint,
    }
}

/// A chunk whose `frames` field is what a real feeder ships: whole
/// sealed frames of arbitrary payload bytes (the chunk codec treats
/// them as opaque; their inner validity is the replica's concern).
fn random_wal_chunk(rng: &mut StdRng) -> WalChunk {
    let mut frames = Vec::new();
    for _ in 0..rng.gen_range(0..4usize) {
        let len = rng.gen_range(0..64usize);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        frames.extend_from_slice(&seal_frame(&payload));
    }
    WalChunk {
        start_clock: rng.gen(),
        primary_epoch: rng.gen(),
        term: rng.gen(),
        snapshot: rng
            .gen_bool(0.3)
            .then(|| (0..rng.gen_range(0..128usize)).map(|_| rng.gen()).collect()),
        frames,
    }
}

fn random_replica_status(rng: &mut StdRng) -> ReplicaStatus {
    ReplicaStatus {
        role: if rng.gen_bool(0.5) {
            ReplicaRole::Primary
        } else {
            ReplicaRole::Replica
        },
        local_epoch: rng.gen(),
        primary_epoch: rng.gen(),
        term: rng.gen(),
        connected: rng.gen_bool(0.5),
        last_error: rng.gen_bool(0.4).then(|| random_string(rng, 48)),
        primary_addr: rng.gen_bool(0.4).then(|| random_string(rng, 32)),
    }
}

fn random_log_digests(rng: &mut StdRng) -> Response {
    Response::LogDigests {
        term: rng.gen(),
        segments: (0..rng.gen_range(0..6usize))
            .map(|_| SegmentDigest {
                start_clock: rng.gen(),
                bytes: rng.gen(),
                crc: rng.gen(),
            })
            .collect(),
    }
}

fn random_response(rng: &mut StdRng) -> Response {
    match rng.gen_range(0..12usize) {
        6 => Response::WalChunk(random_wal_chunk(rng)),
        7 => Response::ReplicaStatus(random_replica_status(rng)),
        8 => random_log_digests(rng),
        9 => Response::Promoted { term: rng.gen() },
        10 => Response::Written {
            clock: rng.gen(),
            id: rng.gen_bool(0.5).then(|| RecordId(rng.gen())),
        },
        11 => Response::ShardStatus(ShardStatusInfo {
            count: rng.gen(),
            index: rng.gen_bool(0.5).then(|| rng.gen()),
            epochs: (0..rng.gen_range(0..5usize)).map(|_| rng.gen()).collect(),
            replicas: (0..rng.gen_range(0..4usize))
                .map(|_| {
                    (0..rng.gen_range(0..3usize))
                        .map(|_| random_string(rng, 16))
                        .collect()
                })
                .collect(),
        }),
        0 => Response::Hello(ServerHello {
            version: rng.gen(),
            epoch: rng.gen(),
            nodes: rng.gen(),
            shard_count: rng.gen(),
            shard_index: rng.gen_bool(0.5).then(|| rng.gen()),
            predicates: (0..rng.gen_range(0..5usize))
                .map(|_| random_string(rng, 12))
                .collect(),
            peers: (0..rng.gen_range(0..4usize))
                .map(|_| random_string(rng, 16))
                .collect(),
        }),
        1 => Response::Query(random_query_response(rng)),
        2 => Response::Batch(
            (0..rng.gen_range(0..4usize))
                .map(|_| random_query_response(rng))
                .collect(),
        ),
        3 => Response::Epoch(rng.gen()),
        4 => Response::Checkpoint(CheckpointStats {
            clock: rng.gen(),
            snapshot_bytes: rng.gen(),
            pruned_segments: rng.gen_range(0..1000),
            pruned_snapshots: rng.gen_range(0..1000),
        }),
        _ => Response::Error(WireError::new(
            [
                WireErrorKind::NotAuthorized,
                WireErrorKind::UnknownStrategy,
                WireErrorKind::UnknownPredicate,
                WireErrorKind::NotDurable,
                WireErrorKind::VersionMismatch,
                WireErrorKind::BadRequest,
                WireErrorKind::Internal,
                WireErrorKind::Overloaded,
                WireErrorKind::NotWritable,
                WireErrorKind::WrongShard,
                WireErrorKind::ShardUnavailable,
            ][rng.gen_range(0..11usize)],
            random_string(rng, 32),
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Request encode → decode is the identity, framed or bare.
    #[test]
    fn requests_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let request = random_request(&mut rng);
        let payload = encode_request(&request).unwrap();
        prop_assert_eq!(decode_request(&payload).unwrap(), request.clone());
        let framed = seal_frame(&payload);
        match open_frame(&framed) {
            RawFrame::Complete { payload: body, consumed } => {
                prop_assert_eq!(consumed, framed.len());
                prop_assert_eq!(decode_request(body).unwrap(), request);
            }
            other => prop_assert!(false, "sealed frame did not open: {other:?}"),
        }
    }

    /// Response encode → decode is the identity, framed or bare.
    #[test]
    fn responses_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let response = random_response(&mut rng);
        let payload = encode_response(&response).unwrap();
        prop_assert_eq!(decode_response(&payload).unwrap(), response.clone());
        let framed = seal_frame(&payload);
        match open_frame(&framed) {
            RawFrame::Complete { payload: body, consumed } => {
                prop_assert_eq!(consumed, framed.len());
                prop_assert_eq!(decode_response(body).unwrap(), response);
            }
            other => prop_assert!(false, "sealed frame did not open: {other:?}"),
        }
    }

    /// Torn write: every proper prefix of a sealed frame reads as Torn,
    /// never as a (different) complete message.
    #[test]
    fn torn_frames_never_complete(seed in any::<u64>(), cut in any::<u16>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let payload = encode_request(&random_request(&mut rng)).unwrap();
        let framed = seal_frame(&payload);
        let cut = cut as usize % framed.len(); // proper prefix
        match open_frame(&framed[..cut]) {
            RawFrame::Torn | RawFrame::Corrupt(_) => {}
            RawFrame::Complete { .. } => prop_assert!(false, "prefix decoded as complete"),
        }
    }

    /// Bit flip: flipping any bit of a sealed frame can never yield a
    /// checksum-valid frame carrying a *different* payload — the CRC
    /// catches every single-bit change.
    #[test]
    fn bit_flips_never_alter_the_payload(seed in any::<u64>(), at in any::<u32>(), bit in 0u8..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let payload = encode_request(&random_request(&mut rng)).unwrap();
        let mut framed = seal_frame(&payload);
        let at = at as usize % framed.len();
        framed[at] ^= 1 << bit;
        match open_frame(&framed) {
            RawFrame::Complete { payload: body, .. } => {
                // Only reachable if the flip landed in the length field
                // and the truncated/extended payload still checksummed —
                // CRC32 makes that impossible for one bit.
                prop_assert_eq!(body, payload.as_slice(), "flipped frame changed the payload");
            }
            RawFrame::Torn | RawFrame::Corrupt(_) => {}
        }
    }

    /// Oversized length fields are corruption, not an allocation.
    #[test]
    fn oversized_frames_are_corrupt(extra in 1u32..1000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut framed = seal_frame(&encode_request(&random_request(&mut rng)).unwrap());
        framed[..4].copy_from_slice(&(MAX_FRAME_LEN + extra).to_le_bytes());
        prop_assert!(matches!(open_frame(&framed), RawFrame::Corrupt(_)));
    }

    /// Arbitrary garbage never panics any layer: the frame opener, the
    /// request decoder, or the response decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = open_frame(&bytes);
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        if bytes.len() > FRAME_HEADER_LEN {
            if let RawFrame::Complete { payload, .. } = open_frame(&bytes) {
                let _ = decode_request(payload);
                let _ = decode_response(payload);
            }
        }
    }

    /// A batch count beyond MAX_BATCH is rejected before allocation.
    #[test]
    fn oversized_batch_counts_are_rejected(extra in 1u32..1000) {
        let mut payload = vec![2u8]; // Batch tag
        payload.extend_from_slice(&(MAX_BATCH + extra).to_le_bytes());
        prop_assert!(decode_request(&payload).is_err());
    }

    /// Counts exactly at each wire field's limit roundtrip; counts
    /// beyond it fail encoding with a typed overflow instead of being
    /// truncated by a bare cast (which would desynchronize the peer).
    #[test]
    fn counts_at_and_beyond_field_limits(over in 0usize..3, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Hello claims: u16 count field.
        let at_limit = Request::Hello {
            version: rng.gen(),
            consumer: random_string(&mut rng, 8),
            claims: vec![String::new(); u16::MAX as usize],
        };
        let payload = encode_request(&at_limit).unwrap();
        prop_assert_eq!(decode_request(&payload).unwrap(), at_limit);
        let beyond = Request::Hello {
            version: 0,
            consumer: String::new(),
            claims: vec![String::new(); u16::MAX as usize + 1 + over],
        };
        prop_assert!(matches!(
            encode_request(&beyond),
            Err(CodecError::CountOverflow { .. })
        ));
        // Request batches: bounded by MAX_BATCH on both wire sides.
        let request = random_query_request(&mut rng);
        let at_limit = Request::Batch(vec![request.clone(); MAX_BATCH as usize]);
        let payload = encode_request(&at_limit).unwrap();
        prop_assert_eq!(decode_request(&payload).unwrap(), at_limit);
        let beyond = Request::Batch(vec![request; MAX_BATCH as usize + 1 + over]);
        prop_assert!(matches!(
            encode_request(&beyond),
            Err(CodecError::CountOverflow { .. })
        ));
        // Response batches, same bound.
        let response = QueryResponse {
            epoch: rng.gen(),
            root: RecordId(rng.gen()),
            rows: vec![],
            shard_epochs: vec![],
        };
        let at_limit = Response::Batch(vec![response.clone(); MAX_BATCH as usize]);
        let payload = encode_response(&at_limit).unwrap();
        prop_assert_eq!(decode_response(&payload).unwrap(), at_limit);
        let beyond = Response::Batch(vec![response; MAX_BATCH as usize + 1 + over]);
        prop_assert!(matches!(
            encode_response(&beyond),
            Err(CodecError::CountOverflow { .. })
        ));
        // WalChunk frame bytes: bounded by MAX_WAL_CHUNK (the at-limit
        // case is covered cheaply: the bound is bytes, not elements, so
        // an exact-limit chunk is 4 MiB — encoded once, not per case).
        let chunk = WalChunk {
            start_clock: rng.gen(),
            primary_epoch: rng.gen(),
            term: rng.gen(),
            snapshot: None,
            frames: vec![0u8; MAX_WAL_CHUNK as usize + 1 + over],
        };
        prop_assert!(matches!(
            encode_response(&Response::WalChunk(chunk)),
            Err(CodecError::CountOverflow { .. })
        ));
    }

    // --- Replication chunk properties ---------------------------------
    // The stream a replica replays is WAL frames inside a wire frame:
    // both layers must uphold the same guarantees independently.

    /// Subscribe/WalChunk/ReplicaStatus roundtrip framed, like every
    /// other message (the generic roundtrips above include them too;
    /// this pins the replication shapes explicitly, snapshot and all).
    #[test]
    fn replication_messages_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let subscribe = Request::Subscribe { from_clock: rng.gen() };
        let payload = encode_request(&subscribe).unwrap();
        prop_assert_eq!(decode_request(&payload).unwrap(), subscribe);
        for response in [
            Response::WalChunk(random_wal_chunk(&mut rng)),
            Response::ReplicaStatus(random_replica_status(&mut rng)),
        ] {
            let payload = encode_response(&response).unwrap();
            prop_assert_eq!(decode_response(&payload).unwrap(), response.clone());
            let framed = seal_frame(&payload);
            let RawFrame::Complete { payload: body, .. } = open_frame(&framed) else {
                return Err(TestCaseError::fail("sealed chunk did not open"));
            };
            prop_assert_eq!(decode_response(body).unwrap(), response);
        }
    }

    /// A chunk torn at *every* byte prefix (the wire analogue of a
    /// primary dying mid-send) reads as Torn or Corrupt at one layer or
    /// another — never as a complete chunk, and never as a chunk whose
    /// inner frames decode past the damage.
    #[test]
    fn torn_chunk_prefixes_never_complete(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chunk = random_wal_chunk(&mut rng);
        let framed = seal_frame(&encode_response(&Response::WalChunk(chunk)).unwrap());
        for cut in 0..framed.len() {
            match open_frame(&framed[..cut]) {
                RawFrame::Torn | RawFrame::Corrupt(_) => {}
                RawFrame::Complete { .. } => {
                    return Err(TestCaseError::fail(format!("prefix {cut} decoded as complete")));
                }
            }
        }
    }

    /// Bit flips anywhere in a sealed chunk can never alter the frames
    /// a replica would replay: either the outer CRC rejects the frame,
    /// or the payload is bit-identical (and if the flip evades the
    /// outer layer entirely — impossible for CRC32 and one bit — the
    /// inner per-frame CRCs would still catch it before replay).
    #[test]
    fn bit_flips_never_alter_replayed_payloads(seed in any::<u64>(), at in any::<u32>(), bit in 0u8..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chunk = random_wal_chunk(&mut rng);
        let payload = encode_response(&Response::WalChunk(chunk.clone())).unwrap();
        let mut framed = seal_frame(&payload);
        let at = at as usize % framed.len();
        framed[at] ^= 1 << bit;
        match open_frame(&framed) {
            RawFrame::Torn | RawFrame::Corrupt(_) => {}
            RawFrame::Complete { payload: body, .. } => {
                let Ok(Response::WalChunk(decoded)) = decode_response(body) else {
                    return Err(TestCaseError::fail("flipped chunk decoded as another message"));
                };
                prop_assert_eq!(decoded.frames, chunk.frames, "replayed bytes changed");
                prop_assert_eq!(decoded.snapshot, chunk.snapshot, "snapshot bytes changed");
            }
        }
    }

    /// A declared chunk size beyond MAX_WAL_CHUNK is rejected before
    /// allocation, like oversized batches and frames.
    #[test]
    fn oversized_chunk_declarations_are_rejected(extra in 1u32..1000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut payload = vec![6u8]; // WalChunk tag
        payload.extend_from_slice(&rng.gen::<u64>().to_le_bytes()); // start_clock
        payload.extend_from_slice(&rng.gen::<u64>().to_le_bytes()); // primary_epoch
        payload.extend_from_slice(&rng.gen::<u64>().to_le_bytes()); // term
        payload.push(0); // no snapshot
        payload.extend_from_slice(&(MAX_WAL_CHUNK + extra).to_le_bytes());
        prop_assert!(decode_response(&payload).is_err());
    }

    /// The anti-entropy and promotion messages roundtrip framed like
    /// every other shape (pinned explicitly, as the replication chunk
    /// shapes are above).
    #[test]
    fn failover_messages_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for request in [Request::LogDigests, Request::Promote] {
            let payload = encode_request(&request).unwrap();
            prop_assert_eq!(decode_request(&payload).unwrap(), request);
        }
        for response in [
            random_log_digests(&mut rng),
            Response::Promoted { term: rng.gen() },
        ] {
            let payload = encode_response(&response).unwrap();
            prop_assert_eq!(decode_response(&payload).unwrap(), response.clone());
            let framed = seal_frame(&payload);
            let RawFrame::Complete { payload: body, .. } = open_frame(&framed) else {
                return Err(TestCaseError::fail("sealed frame did not open"));
            };
            prop_assert_eq!(decode_response(body).unwrap(), response);
        }
    }
}

/// The version constant is part of the on-wire contract: changing it is
/// a compatibility break and must be deliberate. Version 2 added the
/// replication messages (`Subscribe` / `WalChunk` / `ReplicaStatus`);
/// version 3 added the `Overloaded` error kind (admission control);
/// version 4 added failover — fencing terms on `WalChunk` and
/// `ReplicaStatus`, `LogDigests` / `Promote`, and the `NotWritable`
/// redirect; version 5 added sharding — `Write` / `ShardStatus`, shard
/// fields on `ServerHello`, per-shard epoch vectors on `QueryResponse`,
/// and the `WrongShard` / `ShardUnavailable` error kinds; version 6
/// added topology announcements — peer lists on `ServerHello` and
/// per-shard replica lists on `ShardStatus`.
#[test]
fn protocol_version_is_pinned() {
    assert_eq!(PROTOCOL_VERSION, 6);
}

/// A declared shard-epoch vector beyond MAX_SHARDS is rejected before
/// allocation, on both the query-response tail and the status message.
#[test]
fn oversized_shard_epoch_declarations_are_rejected() {
    let response = Response::ShardStatus(ShardStatusInfo {
        count: 2,
        index: None,
        epochs: vec![0; MAX_SHARDS as usize + 1],
        replicas: Vec::new(),
    });
    assert!(matches!(
        encode_response(&response),
        Err(CodecError::CountOverflow { .. })
    ));
    let mut payload = vec![11u8]; // ShardStatus tag
    payload.extend_from_slice(&2u32.to_le_bytes()); // count
    payload.push(0); // no index
    payload.extend_from_slice(&(MAX_SHARDS + 1).to_le_bytes());
    assert!(decode_response(&payload).is_err());
}

/// The v6 topology fields obey the same bounded-declaration discipline:
/// a peer or replica list beyond its bound is refused at decode time
/// before any allocation happens.
#[test]
fn oversized_topology_declarations_are_rejected() {
    // Hello with a declared peer count beyond MAX_SHARDS.
    let hello = Response::Hello(ServerHello {
        version: PROTOCOL_VERSION,
        epoch: 0,
        nodes: 0,
        shard_count: 0,
        shard_index: None,
        predicates: Vec::new(),
        peers: Vec::new(),
    });
    let mut bytes = encode_response(&hello).expect("encodes");
    // The peer count is the trailing u32 of the payload; inflate it.
    let len = bytes.len();
    bytes[len - 4..].copy_from_slice(&(MAX_SHARDS + 1).to_le_bytes());
    assert!(decode_response(&bytes).is_err());

    // ShardStatus with a declared replica-list count beyond MAX_SHARDS.
    let status = Response::ShardStatus(ShardStatusInfo {
        count: 1,
        index: Some(0),
        epochs: vec![7],
        replicas: Vec::new(),
    });
    let mut bytes = encode_response(&status).expect("encodes");
    let len = bytes.len();
    bytes[len - 4..].copy_from_slice(&(MAX_SHARDS + 1).to_le_bytes());
    assert!(decode_response(&bytes).is_err());
}
