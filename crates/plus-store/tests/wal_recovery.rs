//! The fault-injection harness for the write-ahead log: every byte
//! prefix of the log is a crash point, and every crash point must
//! recover a valid **prefix of committed history** — byte-identical
//! state, monotone clock, no panic — with the epoch restored through the
//! serving layer.
//!
//! Two injection styles prove it:
//!
//! * **Byte-prefix truncation**: run a deterministic ≥200-append
//!   workload once, then for *every* prefix length of the logged bytes
//!   reconstruct the directory a crash at that point would leave behind
//!   and reopen it.
//! * **`FailingFile`**: drive the store through a [`WalIo`] shim whose
//!   writes fail (mid-write) once a byte budget is exhausted, for every
//!   budget — proving the writer acknowledges exactly what is on disk,
//!   poisons itself after the first failure, and recovers what it
//!   acknowledged.
//!
//! Plus proptest cases over the frame codec itself: torn writes and bit
//! flips never panic and never fabricate records before the damage.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use plus_store::codec::{self, FrameDecode, WalRecord};
use plus_store::wal::{self, DurabilityOptions, WalFile, WalIo};
use plus_store::{
    AccountService, EdgeKind, EdgeRecord, NodeKind, PolicyStatement, RecordId, Store, StoreError,
};
use surrogate_core::feature::Features;
use surrogate_core::marking::Marking;

const LATTICE: (&[&str], &[(usize, usize)]) = (&["Public", "Mid", "High"], &[(1, 0), (2, 1)]);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wal-recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Applies the `i`-th workload operation. Deterministic, always valid:
/// the first eight ops are nodes; afterwards every 4th op is a unique
/// edge between existing nodes, every 9th a policy statement, the rest
/// nodes with a feature payload. Returns `Err` only on injected I/O
/// failure.
fn apply_op(store: &Store, i: usize) -> Result<(), StoreError> {
    let preds = [
        store.predicate("Public").unwrap(),
        store.predicate("Mid").unwrap(),
        store.predicate("High").unwrap(),
    ];
    let nodes = store.node_count();
    if i >= 8 && i % 4 == 0 {
        // The k-th pair of a fixed enumeration of the 56 ordered pairs
        // over the first 8 nodes (which exist before the first edge op),
        // so every edge is fresh and valid regardless of later growth.
        let k = store.edge_count();
        assert!(k < 56, "workload exceeds the edge enumeration");
        let a = k / 7;
        let idx = k % 7;
        let b = if idx < a { idx } else { idx + 1 };
        store.append_edge(
            RecordId(a as u32),
            RecordId(b as u32),
            [EdgeKind::InputTo, EdgeKind::GeneratedBy, EdgeKind::Related][k % 3],
        )
    } else if i >= 8 && i % 9 == 0 && nodes > 0 {
        let node = RecordId((i % nodes) as u32);
        if i % 2 == 0 {
            store.apply_policy(PolicyStatement::MarkNode {
                node,
                predicate: (i % 3 > 0).then_some(preds[i % 3]),
                marking: [Marking::Visible, Marking::Hide, Marking::Surrogate][i % 3],
            })
        } else {
            store.apply_policy(PolicyStatement::AddSurrogate {
                node,
                label: format!("s{i}"),
                features: Features::new(),
                lowest: preds[0],
                info_score: (i % 10) as f64 / 10.0,
            })
        }
    } else {
        store
            .try_append_node(
                format!("n{i}"),
                [NodeKind::Data, NodeKind::Process, NodeKind::Agent][i % 3],
                Features::new().with("i", i as i64),
                preds[i % 3],
            )
            .map(|_| ())
    }
}

/// Snapshot bytes of the store after each op count: `expected[k]` is the
/// canonical state after exactly `k` committed operations.
fn expected_prefixes(ops: usize) -> Vec<Vec<u8>> {
    let store = Store::new(LATTICE.0, LATTICE.1).unwrap();
    let mut expected = vec![store.to_bytes()];
    for i in 0..ops {
        apply_op(&store, i).unwrap();
        expected.push(store.to_bytes());
    }
    expected
}

/// Reconstructs the directory a crash would leave: the clock-0 snapshot
/// plus the logged byte stream truncated to `prefix_len`, split across
/// the original segment boundaries.
fn write_crash_dir(
    dir: &Path,
    snapshot: &[u8],
    segments: &[(PathBuf, Vec<u8>)],
    prefix_len: usize,
) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(wal::snapshot_path(dir, 0), snapshot).unwrap();
    let mut remaining = prefix_len;
    for (path, bytes) in segments {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(bytes.len());
        std::fs::write(dir.join(path.file_name().unwrap()), &bytes[..take]).unwrap();
        remaining -= take;
    }
}

/// The acceptance-criterion harness: a ≥200-append workload, then every
/// byte-prefix crash point must reopen to a valid prefix of committed
/// history with a monotone clock.
#[test]
fn every_byte_prefix_crash_point_recovers_a_committed_prefix() {
    const OPS: usize = 220;
    let expected = expected_prefixes(OPS);

    // Run the workload once, durably, in a single segment.
    let dir = temp_dir("byte-prefix-writer");
    let store = Store::create_durable_with(
        &dir,
        LATTICE.0,
        LATTICE.1,
        DurabilityOptions {
            fsync: false,
            ..Default::default()
        },
    )
    .unwrap();
    for i in 0..OPS {
        apply_op(&store, i).unwrap();
    }
    assert_eq!(store.to_bytes(), expected[OPS]);
    let segments = wal::list_segments(&dir).unwrap();
    assert_eq!(segments.len(), 1, "workload fits one segment");
    let snapshot = std::fs::read(wal::snapshot_path(&dir, 0)).unwrap();
    let log: Vec<(PathBuf, Vec<u8>)> = segments
        .iter()
        .map(|(_, path)| (path.clone(), std::fs::read(path).unwrap()))
        .collect();
    let total: usize = log.iter().map(|(_, b)| b.len()).sum();
    drop(store);

    let crash_dir = temp_dir("byte-prefix-crash");
    let mut last_clock = 0u64;
    for prefix_len in 0..=total {
        write_crash_dir(&crash_dir, &snapshot, &log, prefix_len);
        let (recovered, report) = Store::open_reporting(&crash_dir, Default::default())
            .unwrap_or_else(|e| panic!("crash point {prefix_len}/{total}: recovery failed: {e}"));
        let k = recovered.clock() as usize;
        assert!(
            k <= OPS,
            "crash point {prefix_len}: clock {k} beyond history"
        );
        assert_eq!(
            recovered.to_bytes(),
            expected[k],
            "crash point {prefix_len}: recovered state is not the {k}-op prefix"
        );
        assert_eq!(report.clock, k as u64);
        assert!(
            report.clock >= last_clock,
            "crash point {prefix_len}: clock went backward ({last_clock} -> {})",
            report.clock
        );
        last_clock = report.clock;
    }
    assert_eq!(last_clock, OPS as u64, "the full log recovers everything");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

/// Crash points with segment rotation in play: the same sweep over a log
/// split across many small segments, including boundaries.
#[test]
fn crash_points_across_segment_rotation_recover() {
    const OPS: usize = 120;
    let expected = expected_prefixes(OPS);

    let dir = temp_dir("rotation-writer");
    let store = Store::create_durable_with(
        &dir,
        LATTICE.0,
        LATTICE.1,
        DurabilityOptions {
            segment_max_bytes: 256,
            fsync: false,
        },
    )
    .unwrap();
    for i in 0..OPS {
        apply_op(&store, i).unwrap();
    }
    let segments = wal::list_segments(&dir).unwrap();
    assert!(
        segments.len() > 3,
        "rotation produced {} segments",
        segments.len()
    );
    let snapshot = std::fs::read(wal::snapshot_path(&dir, 0)).unwrap();
    let log: Vec<(PathBuf, Vec<u8>)> = segments
        .iter()
        .map(|(_, path)| (path.clone(), std::fs::read(path).unwrap()))
        .collect();
    let total: usize = log.iter().map(|(_, b)| b.len()).sum();
    drop(store);

    let crash_dir = temp_dir("rotation-crash");
    let mut last_clock = 0u64;
    for prefix_len in 0..=total {
        write_crash_dir(&crash_dir, &snapshot, &log, prefix_len);
        let (recovered, _) = Store::open_reporting(&crash_dir, Default::default())
            .unwrap_or_else(|e| panic!("crash point {prefix_len}/{total}: {e}"));
        let k = recovered.clock() as usize;
        assert_eq!(
            recovered.to_bytes(),
            expected[k],
            "crash point {prefix_len}: not the {k}-op prefix"
        );
        assert!(
            recovered.clock() >= last_clock,
            "clock regressed at {prefix_len}"
        );
        last_clock = recovered.clock();
    }
    assert_eq!(last_clock, OPS as u64);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

// ---------------------------------------------------------------------------
// FailingFile injection
// ---------------------------------------------------------------------------

/// Shared state of the failing I/O shim: every segment's written bytes,
/// and the remaining byte budget across all files.
#[derive(Debug, Default)]
struct FailState {
    files: Mutex<Vec<(PathBuf, Vec<u8>)>>,
    budget: AtomicUsize,
}

#[derive(Debug)]
struct FailingIo(Arc<FailState>);

#[derive(Debug)]
struct FailingFile {
    state: Arc<FailState>,
    index: usize,
}

impl WalIo for FailingIo {
    fn open_segment(&mut self, path: &Path) -> std::io::Result<Box<dyn WalFile>> {
        let mut files = self.0.files.lock().unwrap();
        let index = files.len();
        files.push((path.to_path_buf(), Vec::new()));
        Ok(Box::new(FailingFile {
            state: self.0.clone(),
            index,
        }))
    }
}

impl WalFile for FailingFile {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        // Consume budget; on exhaustion write the partial prefix (the
        // crash signature) and fail.
        let granted = {
            let mut granted = 0;
            let _ = self
                .state
                .budget
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |budget| {
                    granted = budget.min(bytes.len());
                    Some(budget - granted)
                });
            granted
        };
        let mut files = self.state.files.lock().unwrap();
        files[self.index].1.extend_from_slice(&bytes[..granted]);
        if granted < bytes.len() {
            Err(std::io::Error::other("injected write failure"))
        } else {
            Ok(())
        }
    }

    fn sync(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Kill the writer after every byte budget: the store must acknowledge
/// exactly the operations whose frames are fully on "disk", refuse
/// further durable appends once poisoned, and recovery must return
/// exactly the acknowledged prefix.
#[test]
fn failing_writer_acknowledges_exactly_what_recovers() {
    const OPS: usize = 60;
    let expected = expected_prefixes(OPS);

    // Dry run to learn the total logged bytes (header + frames).
    let total = {
        let state = Arc::new(FailState {
            budget: AtomicUsize::new(usize::MAX),
            ..Default::default()
        });
        let dir = temp_dir("failing-dry");
        let store = Store::create_durable_with_io(
            &dir,
            LATTICE.0,
            LATTICE.1,
            DurabilityOptions {
                fsync: false,
                ..Default::default()
            },
            Box::new(FailingIo(state.clone())),
        )
        .unwrap();
        for i in 0..OPS {
            apply_op(&store, i).unwrap();
        }
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
        let files = state.files.lock().unwrap();
        files.iter().map(|(_, b)| b.len()).sum::<usize>()
    };

    let writer_dir = temp_dir("failing-writer");
    let crash_dir = temp_dir("failing-crash");
    for budget in 0..=total {
        let _ = std::fs::remove_dir_all(&writer_dir);
        let state = Arc::new(FailState {
            budget: AtomicUsize::new(budget),
            ..Default::default()
        });
        let created = Store::create_durable_with_io(
            &writer_dir,
            LATTICE.0,
            LATTICE.1,
            DurabilityOptions {
                fsync: false,
                ..Default::default()
            },
            Box::new(FailingIo(state.clone())),
        );
        let mut acknowledged = 0usize;
        let mut failed = false;
        if let Ok(store) = &created {
            for i in 0..OPS {
                match apply_op(store, i) {
                    Ok(()) => {
                        assert!(
                            !failed,
                            "budget {budget}: op {i} acknowledged after poisoning"
                        );
                        acknowledged += 1;
                    }
                    Err(e) => {
                        if failed {
                            // Later ops fail fast as poisoned, or fail
                            // validation against the frozen prefix state
                            // (e.g. an edge whose endpoint never landed).
                            assert!(
                                matches!(
                                    e,
                                    StoreError::WalPoisoned
                                        | StoreError::UnknownRecord(_)
                                        | StoreError::Graph(_)
                                ),
                                "budget {budget}: unexpected post-poisoning error {e}"
                            );
                        } else {
                            // The first failure is the injected I/O error,
                            // with the segment path attached.
                            assert!(
                                matches!(e, StoreError::Io { path: Some(_), .. }),
                                "budget {budget}: expected path-context io error, got {e}"
                            );
                        }
                        failed = true;
                    }
                }
            }
            // In-memory state is exactly the acknowledged prefix: a failed
            // append mutates nothing.
            assert_eq!(
                store.to_bytes(),
                expected[acknowledged],
                "budget {budget}: in-memory state diverged from acknowledged prefix"
            );
        }

        // Materialize what reached "disk" and recover it.
        let _ = std::fs::remove_dir_all(&crash_dir);
        std::fs::create_dir_all(&crash_dir).unwrap();
        std::fs::write(wal::snapshot_path(&crash_dir, 0), expected[0].clone()).unwrap();
        for (path, bytes) in state.files.lock().unwrap().iter() {
            std::fs::write(crash_dir.join(path.file_name().unwrap()), bytes).unwrap();
        }
        let (recovered, _) = Store::open_reporting(&crash_dir, Default::default())
            .unwrap_or_else(|e| panic!("budget {budget}: recovery failed: {e}"));
        assert_eq!(
            recovered.clock() as usize,
            acknowledged,
            "budget {budget}: recovery must return exactly the acknowledged ops"
        );
        assert_eq!(
            recovered.to_bytes(),
            expected[acknowledged],
            "budget {budget}"
        );
    }
    std::fs::remove_dir_all(&writer_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

// ---------------------------------------------------------------------------
// Checkpoint interaction and the serving layer
// ---------------------------------------------------------------------------

/// Crash points after a mid-history checkpoint recover from the
/// checkpoint snapshot plus the post-checkpoint log tail.
#[test]
fn crash_points_after_a_checkpoint_recover() {
    const PRE: usize = 40;
    const POST: usize = 40;
    let expected = expected_prefixes(PRE + POST);

    let dir = temp_dir("checkpoint-writer");
    let store = Store::create_durable_with(
        &dir,
        LATTICE.0,
        LATTICE.1,
        DurabilityOptions {
            fsync: false,
            ..Default::default()
        },
    )
    .unwrap();
    for i in 0..PRE {
        apply_op(&store, i).unwrap();
    }
    let stats = store.checkpoint().unwrap();
    assert_eq!(stats.clock, PRE as u64);
    for i in PRE..PRE + POST {
        apply_op(&store, i).unwrap();
    }
    let snapshot = std::fs::read(wal::snapshot_path(&dir, PRE as u64)).unwrap();
    let segments = wal::list_segments(&dir).unwrap();
    assert_eq!(segments.len(), 1, "checkpoint pruned older segments");
    let seg_name = segments[0].1.file_name().unwrap().to_owned();
    let log = std::fs::read(&segments[0].1).unwrap();
    drop(store);

    let crash_dir = temp_dir("checkpoint-crash");
    let mut last_clock = 0;
    for prefix_len in 0..=log.len() {
        let _ = std::fs::remove_dir_all(&crash_dir);
        std::fs::create_dir_all(&crash_dir).unwrap();
        std::fs::write(wal::snapshot_path(&crash_dir, PRE as u64), &snapshot).unwrap();
        std::fs::write(crash_dir.join(&seg_name), &log[..prefix_len]).unwrap();
        let recovered =
            Store::open(&crash_dir).unwrap_or_else(|e| panic!("crash point {prefix_len}: {e}"));
        let k = recovered.clock() as usize;
        assert!(
            k >= PRE,
            "crash point {prefix_len}: lost checkpointed history"
        );
        assert_eq!(
            recovered.to_bytes(),
            expected[k],
            "crash point {prefix_len}"
        );
        assert!(recovered.clock() >= last_clock);
        last_clock = recovered.clock();
    }
    assert_eq!(last_clock, (PRE + POST) as u64);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

/// The serving layer recovers with the epoch restored from the log clock,
/// and answers queries over the recovered graph.
#[test]
fn account_service_restores_epoch_from_the_recovered_log() {
    let dir = temp_dir("service");
    let store = Store::create_durable_with(
        &dir,
        LATTICE.0,
        LATTICE.1,
        DurabilityOptions {
            fsync: false,
            ..Default::default()
        },
    )
    .unwrap();
    for i in 0..40 {
        apply_op(&store, i).unwrap();
    }
    let committed_clock = store.clock();
    drop(store);

    let service = AccountService::open_durable(&dir).unwrap();
    assert_eq!(service.epoch(), committed_clock, "epoch = recovered clock");
    let snapshot = service.snapshot();
    assert_eq!(snapshot.epoch(), committed_clock);
    let consumer = surrogate_core::credential::Consumer::public(&snapshot.lattice);
    let account = service
        .get_account(&consumer, &surrogate_core::account::Strategy::Surrogate)
        .unwrap();
    assert!(account.graph().node_count() > 0);
    // Mutations through the recovered service keep bumping the epoch and
    // keep being durable.
    let store = service.store().unwrap().clone();
    let public = store.predicate("Public").unwrap();
    store.append_node("after-recovery", NodeKind::Data, Features::new(), public);
    assert_eq!(service.epoch(), committed_clock + 1);
    drop(service);
    let reopened = AccountService::open_durable(&dir).unwrap();
    assert_eq!(reopened.epoch(), committed_clock + 1);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Frame-codec property tests: torn writes and bit flips
// ---------------------------------------------------------------------------

/// A deterministic pseudo-random record for frame-level tests.
fn random_record(rng: &mut StdRng) -> WalRecord {
    match rng.gen_range(0..3) {
        0 => WalRecord::AppendNode(plus_store::NodeRecord {
            label: format!("n{}", rng.gen::<u16>()),
            kind: [NodeKind::Data, NodeKind::Process, NodeKind::Agent][rng.gen_range(0..3usize)],
            features: if rng.gen_bool(0.5) {
                Features::new().with("x", rng.gen::<i64>())
            } else {
                Features::new()
            },
            lowest: surrogate_core::privilege::PrivilegeId(rng.gen_range(0..3)),
            created_at: rng.gen(),
        }),
        1 => WalRecord::AppendEdge(EdgeRecord {
            from: RecordId(rng.gen_range(0..100)),
            to: RecordId(rng.gen_range(0..100)),
            kind: [EdgeKind::InputTo, EdgeKind::GeneratedBy, EdgeKind::Related]
                [rng.gen_range(0..3usize)],
        }),
        _ => WalRecord::ApplyPolicy(PolicyStatement::MarkNode {
            node: RecordId(rng.gen_range(0..100)),
            predicate: rng
                .gen_bool(0.5)
                .then(|| surrogate_core::privilege::PrivilegeId(rng.gen_range(0..3))),
            marking: [Marking::Visible, Marking::Hide, Marking::Surrogate]
                [rng.gen_range(0..3usize)],
        }),
    }
}

/// Walks a frame stream, returning the records decoded before the first
/// torn/corrupt point.
fn walk_frames(bytes: &[u8]) -> Vec<WalRecord> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        match codec::decode_frame(&bytes[pos..]) {
            FrameDecode::Complete { record, consumed } => {
                out.push(record);
                pos += consumed;
            }
            FrameDecode::Torn | FrameDecode::Corrupt(_) => break,
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Torn write: any truncation of a frame stream decodes exactly the
    /// frames that fit entirely, never panicking.
    #[test]
    fn torn_frame_streams_decode_a_prefix(count in 1usize..12, seed in any::<u64>(), cut in any::<u16>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<WalRecord> = (0..count).map(|_| random_record(&mut rng)).collect();
        let mut stream = Vec::new();
        let mut boundaries = vec![0usize];
        for record in &records {
            stream.extend_from_slice(&codec::encode_frame(record));
            boundaries.push(stream.len());
        }
        let cut = cut as usize % (stream.len() + 1);
        let decoded = walk_frames(&stream[..cut]);
        // Exactly the frames wholly inside the cut.
        let whole = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        prop_assert_eq!(decoded.len(), whole);
        for (got, want) in decoded.iter().zip(&records) {
            prop_assert_eq!(got, want);
        }
    }

    /// Bit flip: flipping any byte never panics the decoder, and every
    /// record decoded from before the damaged frame is unchanged.
    #[test]
    fn bit_flips_never_fabricate_earlier_records(count in 1usize..10, seed in any::<u64>(), at in any::<u32>(), bit in 0u8..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<WalRecord> = (0..count).map(|_| random_record(&mut rng)).collect();
        let mut stream = Vec::new();
        let mut boundaries = vec![0usize];
        for record in &records {
            stream.extend_from_slice(&codec::encode_frame(record));
            boundaries.push(stream.len());
        }
        let at = at as usize % stream.len();
        stream[at] ^= 1 << bit;
        let decoded = walk_frames(&stream);
        // Frames that end at or before the flipped byte are undamaged and
        // must decode exactly; everything at or after the damaged frame
        // may decode or not, but never panics and never alters the prefix.
        let intact = boundaries.iter().filter(|&&b| b > 0 && b <= at).count();
        prop_assert!(decoded.len() >= intact, "lost undamaged frames");
        for (got, want) in decoded.iter().take(intact).zip(&records) {
            prop_assert_eq!(got, want);
        }
    }

    /// Arbitrary garbage never panics the frame decoder.
    #[test]
    fn garbage_never_panics_the_frame_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = codec::decode_frame(&bytes);
        let _ = walk_frames(&bytes);
    }

    /// Frame encode → decode is the identity.
    #[test]
    fn frames_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let record = random_record(&mut rng);
        let frame = codec::encode_frame(&record);
        match codec::decode_frame(&frame) {
            FrameDecode::Complete { record: back, consumed } => {
                prop_assert_eq!(back, record);
                prop_assert_eq!(consumed, frame.len());
            }
            other => prop_assert!(false, "roundtrip failed: {other:?}"),
        }
    }

    /// Durable end-to-end property: a random workload survives
    /// close-and-reopen byte-identically.
    #[test]
    fn random_durable_workloads_roundtrip(ops in 1usize..60, seed in any::<u64>()) {
        let dir = std::env::temp_dir().join(format!(
            "wal-recovery-roundtrip-{}-{seed}-{ops}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::create_durable_with(
            &dir,
            LATTICE.0,
            LATTICE.1,
            DurabilityOptions { fsync: false, segment_max_bytes: 512 },
        )
        .unwrap();
        for i in 0..ops {
            apply_op(&store, i).unwrap();
        }
        let committed = store.to_bytes();
        drop(store);
        let restored = Store::open(&dir).unwrap();
        prop_assert_eq!(restored.to_bytes(), committed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
