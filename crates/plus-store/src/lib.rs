//! # plus-store
//!
//! A PLUS-like provenance store substrate: the paper evaluates surrogate
//! protection inside MITRE's PLUS prototype, whose storage layer this
//! crate stands in for (see DESIGN.md's substitution table).
//!
//! * [`record`] — typed provenance records and protection-policy
//!   statements;
//! * [`codec`] — a versioned, checksummed binary snapshot format;
//! * [`store`] — a thread-safe append-only store with persistence and
//!   graph materialization;
//! * [`lineage`] — upstream/downstream provenance queries;
//! * [`service`] — **the serving layer**: the concurrent, epoch-versioned
//!   [`AccountService`] with a sharded account cache, pluggable
//!   protection strategies, and the typed batch query API;
//! * [`session`] — thin per-consumer views over a shared service.
//!
//! The Fig. 10 performance pipeline maps to: `Store::load` (DB access) →
//! [`AccountService::snapshot`] (build graph, epoch-cached) →
//! [`AccountService::get_account`] (protect, cached per
//! `(epoch, predicate, strategy)`) → [`AccountService::query_batch`]
//! (query).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod error;
pub mod ingest;
pub mod lineage;
pub mod record;
pub mod service;
pub mod session;
pub mod store;

pub use error::{CodecError, Result, StoreError};
pub use ingest::{ingest, IngestKinds};
pub use record::{EdgeKind, EdgeRecord, NodeKind, NodeRecord, PolicyStatement, RecordId};
pub use service::{AccountService, ProtectedLineageRow, QueryRequest, QueryResponse, Snapshot};
pub use session::Session;
// Re-exported so service call sites can name directions and strategies
// without importing surrogate-core directly.
pub use store::{Materialized, Store};
pub use surrogate_core::account::Strategy;
pub use surrogate_core::query::Direction;
pub use surrogate_core::strategy::ProtectionStrategy;
