//! # plus-store
//!
//! A PLUS-like provenance store substrate: the paper evaluates surrogate
//! protection inside MITRE's PLUS prototype, whose storage layer this
//! crate stands in for (see DESIGN.md's substitution table).
//!
//! * [`record`] — typed provenance records and protection-policy
//!   statements;
//! * [`codec`] — a versioned, checksummed binary snapshot format;
//! * [`store`] — a thread-safe append-only store with persistence and
//!   graph materialization;
//! * [`lineage`] — upstream/downstream provenance queries;
//! * [`session`] — consumer sessions answering lineage queries through
//!   protected accounts.
//!
//! The Fig. 10 performance pipeline maps to: `Store::load` (DB access) →
//! [`Store::materialize`] (build graph) → `surrogate_core::account`
//! (protect) → [`session`] (query).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod error;
pub mod ingest;
pub mod lineage;
pub mod record;
pub mod session;
pub mod store;

pub use error::{CodecError, Result, StoreError};
pub use ingest::{ingest, IngestKinds};
pub use record::{EdgeKind, EdgeRecord, NodeKind, NodeRecord, PolicyStatement, RecordId};
pub use session::{ProtectedLineageRow, Session};
pub use store::{Materialized, Store};
