//! # plus-store
//!
//! A PLUS-like provenance store substrate: the paper evaluates surrogate
//! protection inside MITRE's PLUS prototype, whose storage layer this
//! crate stands in for (see DESIGN.md's substitution table).
//!
//! * [`record`] — typed provenance records and protection-policy
//!   statements;
//! * [`codec`] — versioned, checksummed binary formats: the full-state
//!   snapshot and the per-mutation WAL frame;
//! * [`store`] — a thread-safe append-only store with persistence and
//!   graph materialization;
//! * [`wal`] — the segmented write-ahead log: durable appends, crash
//!   recovery, checkpointing;
//! * [`lineage`] — upstream/downstream provenance queries;
//! * [`service`] — **the serving layer**: the concurrent, epoch-versioned
//!   [`AccountService`] with a sharded account cache, single-flight
//!   generation, a sealed-frame cache, pluggable protection strategies,
//!   and the typed batch query API;
//! * [`snapshot`] — the per-epoch CSR index ([`SnapshotIndex`]) the
//!   protection hot path runs against;
//! * [`session`] — thin per-consumer views over a shared service;
//! * [`shard`] — scatter-gather support for partitioned deployments:
//!   [`ShardMerge`] folds per-shard record feeds into one
//!   order-canonical graph, and [`MergedSource`] serves it through
//!   [`AccountService::sharded`];
//! * [`wire`] — the query-serving wire protocol: the framed
//!   request/response messages that may cross the trust boundary, and
//!   their binary codecs (spoken over TCP by the `server` crate).
//!
//! The Fig. 10 performance pipeline maps to: `Store::load` (DB access) →
//! [`AccountService::snapshot`] (build graph, epoch-cached) →
//! [`AccountService::get_account`] (protect, cached per
//! `(epoch, predicate, strategy)`) → [`AccountService::query_batch`]
//! (query).
//!
//! # Durability
//!
//! A store opened with [`Store::create_durable`] / [`Store::open`] (or a
//! service via [`AccountService::open_durable`]) logs every mutation to a
//! segmented write-ahead log *before* applying it. Each mutation is one
//! frame — `len u32 | crc32 u32 | payload`, where the payload is a tagged
//! `AppendNode` / `AppendEdge` / `ApplyPolicy` record in the snapshot
//! codec's wire encoding — and each segment file starts with a header
//! naming the logical clock of its first frame. Recovery loads the
//! newest valid snapshot and replays the log tail, truncating at the
//! first torn or corrupt frame, so a crash can only lose writes that
//! were never acknowledged. [`Store::checkpoint`] folds the log into a
//! fresh snapshot and prunes what it supersedes. The exact layouts live
//! in the [`codec`] module docs; the protocol in the [`wal`] module
//! docs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod error;
pub mod ingest;
pub mod lineage;
pub mod record;
pub mod service;
pub mod session;
pub mod shard;
pub mod snapshot;
pub mod store;
pub mod wal;
pub mod wire;

pub use error::{CodecError, Result, StoreError};
pub use ingest::{ingest, IngestKinds};
pub use record::{EdgeKind, EdgeRecord, NodeKind, NodeRecord, PolicyStatement, RecordId};
pub use service::{AccountService, ProtectedLineageRow, QueryRequest, QueryResponse, Snapshot};
pub use session::Session;
pub use shard::{MergedSource, ShardMerge};
pub use snapshot::SnapshotIndex;
// Re-exported so service call sites can name directions and strategies
// without importing surrogate-core directly.
pub use store::{CheckpointStats, Materialized, Store};
pub use surrogate_core::account::Strategy;
pub use surrogate_core::query::Direction;
pub use surrogate_core::strategy::ProtectionStrategy;
pub use wal::{DurabilityOptions, RecoveryReport, SegmentDigest, TailChunk, TailCursor};
pub use wire::{
    ReplicaRole, ReplicaStatus, ServerHello, ShardStatusInfo, WalChunk, WireError, WireErrorKind,
    WriteOp, MAX_REPLICAS, MAX_SHARDS, PROTOCOL_VERSION,
};
