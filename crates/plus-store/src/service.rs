//! The concurrent account-serving layer: one epoch-versioned API in front
//! of a [`Store`].
//!
//! The paper's deployment sketch (§6.4) computes a protected account once
//! per consumer predicate and then serves many path queries from it. At
//! serving scale that workflow needs three things the bare store does not
//! give you:
//!
//! 1. **A shared, versioned materialization.** [`AccountService::snapshot`]
//!    returns an [`Arc<Snapshot>`] — the materialized graph plus the
//!    **epoch** it corresponds to. The epoch is the store's logical clock:
//!    it bumps on every `append_*` / `apply_policy` mutation, so readers
//!    can pin a consistent view while writers keep appending.
//! 2. **A concurrent account cache.** [`AccountService::get_account`] and
//!    friends serve `Arc<ProtectedAccount>`s from a sharded,
//!    `parking_lot`-guarded cache keyed by `(epoch, high-water set,
//!    strategy name)`. A policy mutation bumps the epoch, which makes
//!    every cached account stale; stale entries are evicted as fresh
//!    epochs are populated.
//! 3. **Pluggable strategies.** Anything implementing
//!    [`ProtectionStrategy`] can be [registered](AccountService::register_strategy)
//!    and requested by name — new redaction policies never touch
//!    `surrogate-core`.
//!
//! Lineage queries go through the typed batch API: a [`QueryRequest`]
//! names a root, a direction, a depth bound, and a strategy;
//! [`AccountService::query_batch`] pins one snapshot, resolves every
//! request against the right cached account, and stamps each
//! [`QueryResponse`] with the epoch it answered at.
//!
//! Two more layers keep the hot path flat under load:
//!
//! * **Single-flight generation.** Concurrent cache misses of one
//!   account key coalesce onto a single generating leader; followers
//!   block until it publishes instead of redundantly generating the same
//!   account N times (the cold-cache thundering herd).
//! * **A sealed-frame cache.** [`AccountService::query_sealed`] and
//!   [`AccountService::query_batch_sealed`] answer with the *wire bytes*
//!   of the response — encoded, framed, checksummed — memoized by
//!   `(epoch, consumer credential frontier, request bytes)`. A repeat
//!   query is a hash lookup plus a socket write; nothing is re-traversed
//!   or re-encoded. Frames are invalidated exactly like accounts: epoch
//!   bumps sweep stale epochs, [re-registration](AccountService::register_strategy)
//!   clears the cache outright.
//!
//! ```
//! use plus_store::{AccountService, Direction, QueryRequest, Store};
//! use plus_store::{EdgeKind, NodeKind, PolicyStatement};
//! use std::sync::Arc;
//! use surrogate_core::account::Strategy;
//! use surrogate_core::credential::Consumer;
//! use surrogate_core::feature::Features;
//!
//! # fn main() -> plus_store::Result<()> {
//! let store = Arc::new(Store::new(&["Public", "High"], &[(1, 0)])?);
//! let public = store.predicate("Public").unwrap();
//! let high = store.predicate("High").unwrap();
//! let source = store.append_node("source", NodeKind::Agent, Features::new(), high);
//! let report = store.append_node("report", NodeKind::Data, Features::new(), public);
//! store.append_edge(source, report, EdgeKind::InputTo)?;
//!
//! let service = AccountService::new(store.clone());
//! let consumer = Consumer::public(&service.snapshot().lattice);
//! let response = service.query(
//!     &consumer,
//!     &QueryRequest::new(report, Direction::Backward, u32::MAX, Strategy::Surrogate),
//! )?;
//! assert_eq!(response.epoch, store.version());
//! # Ok(())
//! # }
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use surrogate_core::account::{ProtectedAccount, Strategy};
use surrogate_core::credential::Consumer;
use surrogate_core::graph::NodeId;
use surrogate_core::privilege::PrivilegeId;
use surrogate_core::query::{traverse, Direction};
use surrogate_core::strategy::ProtectionStrategy;

use crate::error::{CodecError, Result, StoreError};
use crate::record::RecordId;
use crate::snapshot::SnapshotIndex;
use crate::store::{Materialized, Store};
use crate::wal::DurabilityOptions;

/// Number of cache shards; requests for different `(epoch, preds,
/// strategy)` keys mostly hit different locks.
const SHARDS: usize = 16;

/// Number of sealed-frame cache shards (same spreading idea as
/// [`SHARDS`], keyed by whole frames instead of accounts).
const FRAME_SHARDS: usize = 16;

/// Per-shard sealed-frame cap. A shard at capacity is cleared rather
/// than grown without bound — the cache refills from hot traffic, and
/// frames are cheap to rebuild from the (still cached) account.
const FRAME_SHARD_CAP: usize = 4096;

/// An epoch-stamped materialization: the consistent view of the store all
/// accounts and query answers of that epoch are derived from.
///
/// Dereferences to [`Materialized`], so `snapshot.graph`,
/// `snapshot.lattice`, and `snapshot.context()` work directly.
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    shard_epochs: Vec<u64>,
    /// The source's reset generation (see
    /// [`ShardMerge::generation`](crate::ShardMerge::generation)) this
    /// materialization was taken at; always 0 for live and frozen
    /// sources. `(source_gen, epoch)` — not `epoch` alone — identifies
    /// a sharded view, because a gather-side slot reset is the one
    /// event that can rewind a shard clock; every derived cache entry
    /// carries the pair so repaired history can never alias cached
    /// pre-repair answers.
    source_gen: u64,
    materialized: Materialized,
    index: SnapshotIndex,
}

impl Snapshot {
    fn new(epoch: u64, shard_epochs: Vec<u64>, materialized: Materialized) -> Self {
        Self::stamped(0, epoch, shard_epochs, materialized)
    }

    fn stamped(
        source_gen: u64,
        epoch: u64,
        shard_epochs: Vec<u64>,
        materialized: Materialized,
    ) -> Self {
        // Build the CSR index once per epoch, here, so every protection
        // and every sealed frame of the epoch runs hash-free.
        let index = SnapshotIndex::build(&materialized);
        Self {
            epoch,
            shard_epochs,
            source_gen,
            materialized,
            index,
        }
    }

    /// The store version this materialization corresponds to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The per-shard clock vector this materialization reflects, stamped
    /// onto every [`QueryResponse`] answered from it. Empty for an
    /// unsharded service; a single shard's slot on a shard server (the
    /// other slots are zero — an honest lower bound on histories this
    /// server does not follow); the full gather vector on a
    /// scatter-gather service, where [`epoch`](Self::epoch) is its sum.
    pub fn shard_epochs(&self) -> &[u64] {
        &self.shard_epochs
    }

    /// The materialized graph, lattice, markings, and catalog.
    pub fn materialized(&self) -> &Materialized {
        &self.materialized
    }

    /// The dense CSR index of this materialization, built once at
    /// snapshot time and shared by every protection against this epoch.
    pub fn index(&self) -> &SnapshotIndex {
        &self.index
    }
}

impl Deref for Snapshot {
    type Target = Materialized;

    fn deref(&self) -> &Materialized {
        &self.materialized
    }
}

/// One lineage query against the service: traverse from `root` in
/// `direction` up to `max_depth` hops, through the account produced by
/// `strategy`.
///
/// `strategy` is the serializable [`Strategy`] selector — this is a wire
/// type. To query through a custom registered strategy, resolve the
/// account with [`AccountService::get_account_named`] and traverse it
/// directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// The record to traverse from.
    pub root: RecordId,
    /// Upstream (`Backward`), downstream (`Forward`), or neighborhood.
    pub direction: Direction,
    /// Hop bound (`u32::MAX` for unbounded).
    pub max_depth: u32,
    /// Which built-in protection strategy to answer through.
    pub strategy: Strategy,
    /// Account predicate. `None` uses the consumer's whole credential
    /// frontier (the Def. 6 multi-predicate account).
    pub predicate: Option<PrivilegeId>,
}

impl QueryRequest {
    /// A request answered through the consumer's credential frontier.
    pub fn new(root: RecordId, direction: Direction, max_depth: u32, strategy: Strategy) -> Self {
        Self {
            root,
            direction,
            max_depth,
            strategy,
            predicate: None,
        }
    }

    /// Pins the request to one account predicate instead of the frontier.
    pub fn with_predicate(mut self, predicate: PrivilegeId) -> Self {
        self.predicate = Some(predicate);
        self
    }
}

/// The answer to one [`QueryRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResponse {
    /// The epoch the answer was computed at. Within one
    /// [`query_batch`](AccountService::query_batch) call every response
    /// carries the same epoch.
    pub epoch: u64,
    /// The request's root, echoed back.
    pub root: RecordId,
    /// Visited records in BFS order; empty when the root is invisible to
    /// the consumer.
    pub rows: Vec<ProtectedLineageRow>,
    /// Per-shard clocks of a sharded deployment (see
    /// [`Snapshot::shard_epochs`]). Empty when the answering service is
    /// unsharded — `epoch` alone identifies the view.
    pub shard_epochs: Vec<u64>,
}

/// A lineage row as seen through a protected account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectedLineageRow {
    /// The original record reached (known to the server, not the client).
    pub record: RecordId,
    /// The label the consumer sees (original or surrogate).
    pub label: String,
    /// Hops from the root *in the protected account*.
    pub depth: u32,
    /// Whether the consumer sees a surrogate stand-in.
    pub surrogate: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    epoch: u64,
    /// The snapshot's source reset generation (see
    /// [`Snapshot::source_gen`]); 0 except on a sharded service that
    /// has repaired a slot.
    source_gen: u64,
    preds: Vec<PrivilegeId>,
    strategy: String,
}

/// A cached account, stamped with the registry **generation** of the
/// strategy that produced it. A hit is only served while its generation
/// is still the name's current one, so a completed
/// [`register_strategy`](AccountService::register_strategy) can never be
/// shadowed by a racing generator inserting an account built from the
/// replaced registration (generation 0 = the name is unregistered and
/// the caller's own strategy object generated directly).
#[derive(Debug, Clone)]
struct CachedAccount {
    generation: u64,
    account: Arc<ProtectedAccount>,
}

/// A registered strategy with the generation stamp of its registration.
type Registration = (u64, Arc<dyn ProtectionStrategy>);

/// One in-flight account generation, coalescing concurrent misses of a
/// key onto a single generating **leader**. Followers block on the
/// condvar until the leader publishes; a cold cache (or an epoch bump)
/// under N concurrent requests then costs one generation, not N — the
/// most expensive step in the system is never duplicated.
///
/// Built on `std::sync` primitives: the vendored `parking_lot` shim has
/// no `Condvar`. Poisoning is ignored ([`PoisonError::into_inner`]) —
/// the state machine below stays consistent across an unwinding leader
/// because [`FlightGuard`] always publishes an outcome.
struct Flight {
    state: StdMutex<FlightState>,
    cv: Condvar,
}

enum FlightState {
    /// The leader is still generating.
    Pending,
    /// The leader finished; followers take the account directly.
    Done(Arc<ProtectedAccount>),
    /// The leader failed; followers loop back and retry (one of them
    /// becomes the next leader), so one bad generation does not fan its
    /// error out to every coalesced caller.
    Failed,
}

/// Publishes `Failed` if a generation leader unwinds before publishing,
/// so followers blocked on the flight can never wait forever.
struct FlightGuard<'a> {
    service: &'a AccountService,
    key: &'a CacheKey,
    flight: &'a Flight,
    published: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.service
                .finish_flight(self.key, self.flight, FlightState::Failed);
        }
    }
}

/// Cache key of one pre-sealed response frame: the epoch it answers at,
/// the consumer's sorted credential frontier, and the canonical wire
/// bytes of the request(s). The frontier fully determines both
/// authorization and account content, so consumer *names* are
/// deliberately absent — consumers holding the same credentials see
/// byte-identical answers and share cache entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FrameKey {
    epoch: u64,
    /// See [`CacheKey::source_gen`].
    source_gen: u64,
    frontier: Vec<PrivilegeId>,
    request: Vec<u8>,
}

enum Source {
    /// A live store: the epoch tracks its version.
    Live(Arc<Store>),
    /// A fixed materialization pinned at epoch 0 — an immutable serving
    /// replica (also the substrate of the deprecated `Session::new`).
    Frozen(Arc<Snapshot>),
    /// A scatter-gather merge of every shard's record stream: the epoch
    /// is the sum of the per-shard clocks, and responses carry the full
    /// clock vector.
    Sharded(Arc<crate::shard::MergedSource>),
}

/// Thread-safe, epoch-versioned protected-account server over a [`Store`].
///
/// See the [module docs](self) for the serving model. All methods take
/// `&self`; share the service across threads behind an `Arc`.
pub struct AccountService {
    source: Source,
    current: RwLock<Option<Arc<Snapshot>>>,
    shards: Vec<Mutex<HashMap<CacheKey, CachedAccount>>>,
    strategies: RwLock<HashMap<String, Registration>>,
    /// Monotone counter stamping each registration; see [`CachedAccount`].
    generation: AtomicU64,
    /// In-flight account generations, for single-flight coalescing.
    inflight: Mutex<HashMap<CacheKey, Arc<Flight>>>,
    /// Pre-sealed response frames; see [`FrameKey`].
    frame_shards: Vec<Mutex<HashMap<FrameKey, Bytes>>>,
    frame_hits: AtomicU64,
    frame_misses: AtomicU64,
}

impl std::fmt::Debug for AccountService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccountService")
            .field("epoch", &self.epoch())
            .field("cached_accounts", &self.cached_accounts())
            .field("cached_frames", &self.cached_frames())
            .field("strategies", &self.strategy_names())
            .finish()
    }
}

impl AccountService {
    /// A service over a live store. Mutations through the shared `Arc`
    /// bump the epoch and invalidate cached accounts automatically.
    pub fn new(store: Arc<Store>) -> Self {
        Self::with_source(Source::Live(store))
    }

    /// A service over a fixed materialization, pinned at epoch 0 — an
    /// immutable serving replica.
    pub fn from_materialized(materialized: Materialized) -> Self {
        Self::with_source(Source::Frozen(Arc::new(Snapshot::new(
            0,
            Vec::new(),
            materialized,
        ))))
    }

    /// A service over a scatter-gather merge of shard feeds: queries
    /// traverse the merged whole-keyspace graph, the epoch is the sum
    /// of the per-shard clocks, and every response carries the full
    /// clock vector ([`QueryResponse::shard_epochs`]).
    pub fn sharded(source: Arc<crate::shard::MergedSource>) -> Self {
        Self::with_source(Source::Sharded(source))
    }

    fn with_source(source: Source) -> Self {
        let mut strategies: HashMap<String, Registration> = HashMap::new();
        let mut generation = 0;
        for &builtin in Strategy::ALL {
            generation += 1;
            strategies.insert(builtin.name().to_string(), (generation, Arc::new(builtin)));
        }
        Self {
            source,
            current: RwLock::new(None),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            strategies: RwLock::new(strategies),
            generation: AtomicU64::new(generation),
            inflight: Mutex::new(HashMap::new()),
            frame_shards: (0..FRAME_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            frame_hits: AtomicU64::new(0),
            frame_misses: AtomicU64::new(0),
        }
    }

    /// Opens (recovers) the durable store under `dir` and stands a
    /// service up in front of it, with the epoch restored from the
    /// recovered log clock.
    pub fn open_durable(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_durable_with(dir, DurabilityOptions::default())
    }

    /// [`open_durable`](Self::open_durable) with explicit options.
    pub fn open_durable_with(dir: impl AsRef<Path>, options: DurabilityOptions) -> Result<Self> {
        Ok(Self::new(Arc::new(Store::open_with(dir, options)?)))
    }

    /// The underlying store, when this service fronts a live one.
    pub fn store(&self) -> Option<&Arc<Store>> {
        match &self.source {
            Source::Live(store) => Some(store),
            Source::Frozen(_) | Source::Sharded(_) => None,
        }
    }

    /// The current epoch: the live store's version, the sum of the
    /// per-shard clocks for a sharded service, or 0 for a frozen one.
    /// Strictly monotone over the lifetime of the service.
    pub fn epoch(&self) -> u64 {
        match &self.source {
            Source::Live(store) => store.version(),
            Source::Frozen(snapshot) => snapshot.epoch,
            Source::Sharded(merged) => merged.version(),
        }
    }

    /// The `(reset generation, version)` pair identifying the source's
    /// current state; the generation is 0 except for a sharded source.
    fn source_state(&self) -> (u64, u64) {
        match &self.source {
            Source::Live(store) => (0, store.version()),
            Source::Frozen(snapshot) => (0, snapshot.epoch),
            Source::Sharded(merged) => merged.stamped_version(),
        }
    }

    /// The current epoch-stamped materialization, rebuilt (and cached)
    /// whenever the source has moved past the cached epoch — or, on a
    /// sharded source, whenever a slot reset bumped the generation.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        if let Source::Frozen(snapshot) = &self.source {
            return snapshot.clone();
        }
        let (source_gen, source_epoch) = self.source_state();
        {
            let cached = self.current.read();
            if let Some(snapshot) = cached.as_ref() {
                if snapshot.epoch == source_epoch && snapshot.source_gen == source_gen {
                    return snapshot.clone();
                }
            }
        }
        let mut cached = self.current.write();
        // Another writer may have rebuilt while we waited for the lock.
        // (Re-read the source state: it may have advanced again.)
        let (source_gen, source_epoch) = self.source_state();
        if let Some(snapshot) = cached.as_ref() {
            if snapshot.epoch == source_epoch && snapshot.source_gen == source_gen {
                return snapshot.clone();
            }
        }
        let snapshot = Arc::new(match &self.source {
            Source::Live(store) => {
                let (epoch, materialized) = store.materialize_versioned();
                // A shard server stamps its own slot of the epoch
                // vector; zeros elsewhere are honest lower bounds on
                // histories it does not follow.
                let shard_epochs = match store.partition() {
                    Some(p) => {
                        let mut v = vec![0; p.count() as usize];
                        v[p.index() as usize] = epoch;
                        v
                    }
                    None => Vec::new(),
                };
                Snapshot::new(epoch, shard_epochs, materialized)
            }
            Source::Frozen(_) => unreachable!("frozen services returned above"),
            Source::Sharded(merged) => {
                let (generation, epoch, clocks, materialized) = merged.materialize_stamped();
                Snapshot::stamped(generation, epoch, clocks, materialized)
            }
        });
        let epoch = snapshot.epoch;
        if cached
            .as_ref()
            .is_some_and(|old| old.source_gen != snapshot.source_gen)
        {
            // A slot reset intervened: the new materialization may sit
            // at a *lower* epoch than the cached one while the repaired
            // slot re-bootstraps. Entries of older generations can never
            // hit again (the generation is part of every key), so drop
            // them wholesale and adopt the post-reset snapshot.
            let generation = snapshot.source_gen;
            *cached = Some(snapshot.clone());
            for shard in &self.shards {
                shard.lock().retain(|k, _| k.source_gen >= generation);
            }
            for shard in &self.frame_shards {
                shard.lock().retain(|k, _| k.source_gen >= generation);
            }
        } else if !cached
            .as_ref()
            .is_some_and(|old| old.epoch >= snapshot.epoch)
        {
            // Within one generation the epoch never goes backward:
            // materialization reads the version and the log under one
            // lock, and versions only grow.
            *cached = Some(snapshot.clone());
            // Accounts and sealed frames older than the new epoch can
            // never be current again; drop them so the caches track live
            // entries only.
            for shard in &self.shards {
                shard.lock().retain(|k, _| k.epoch >= epoch);
            }
            for shard in &self.frame_shards {
                shard.lock().retain(|k, _| k.epoch >= epoch);
            }
        }
        snapshot
    }

    /// Registers a protection strategy under its [`name`]
    /// (`ProtectionStrategy::name`), replacing any previous registration
    /// of that name. The three built-ins are pre-registered.
    ///
    /// Accounts cached under the replaced name are purged, and every
    /// registration carries a fresh generation stamp that cached accounts
    /// are checked against on every hit — so once `register_strategy`
    /// returns, no request that starts afterwards can be served an
    /// account generated by a previous registration, even if a racing
    /// request caches one after the purge. (A request already in flight
    /// during the swap may still receive the old strategy's account —
    /// that request is concurrent with the registration.)
    ///
    /// [`name`]: ProtectionStrategy::name
    pub fn register_strategy(&self, strategy: Arc<dyn ProtectionStrategy>) {
        let name = strategy.name().to_string();
        let mut registry = self.strategies.write();
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        for shard in &self.shards {
            shard.lock().retain(|k, _| k.strategy != name);
        }
        // Sealed frames carry no strategy generation (they are keyed by
        // the request bytes, which name strategies only by selector), so
        // a re-registration drops them all rather than guessing which
        // frames the replaced implementation produced.
        for shard in &self.frame_shards {
            shard.lock().clear();
        }
        registry.insert(name, (generation, strategy));
    }

    /// The registered strategy of that name.
    pub fn strategy(&self, name: &str) -> Result<Arc<dyn ProtectionStrategy>> {
        self.strategies
            .read()
            .get(name)
            .map(|(_, strategy)| strategy.clone())
            .ok_or_else(|| StoreError::UnknownStrategy(name.to_string()))
    }

    /// Names of all registered strategies, sorted.
    pub fn strategy_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.strategies.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total accounts currently cached (all epochs).
    pub fn cached_accounts(&self) -> usize {
        self.shards.iter().map(|shard| shard.lock().len()).sum()
    }

    /// The cached account for the high-water set `preds` at the current
    /// epoch — the unauthenticated operator API ([`get_account`] and
    /// friends add the consumer credential check).
    ///
    /// [`get_account`]: Self::get_account
    ///
    /// # Panics
    /// Panics if `preds` is empty, matching the generators.
    pub fn protect(
        &self,
        preds: &[PrivilegeId],
        strategy: &dyn ProtectionStrategy,
    ) -> Result<Arc<ProtectedAccount>> {
        self.protect_at(&self.snapshot(), preds, strategy)
    }

    /// [`protect`](Self::protect) against a pinned snapshot: the returned
    /// account is generated from (or cached for) exactly that snapshot's
    /// epoch, so a reader holding a snapshot gets answers consistent with
    /// it even while writers advance the store.
    ///
    /// The strategy *name* owns the cache slot and the behavior: when a
    /// strategy is [registered](Self::register_strategy) under
    /// `strategy.name()`, the registered implementation generates the
    /// account — so `&Strategy::Surrogate` and a registered replacement
    /// of `"surrogate"` can never poison each other's cache entries. The
    /// passed strategy only generates directly when its name is
    /// unregistered.
    pub fn protect_at(
        &self,
        snapshot: &Snapshot,
        preds: &[PrivilegeId],
        strategy: &dyn ProtectionStrategy,
    ) -> Result<Arc<ProtectedAccount>> {
        assert!(!preds.is_empty(), "high-water set must be non-empty");
        let mut preds = snapshot.lattice.maximal_antichain(preds);
        // The key must identify the *set*: {a, b} and {b, a} are one
        // account.
        preds.sort_unstable_by_key(|p| p.0);
        let key = CacheKey {
            epoch: snapshot.epoch,
            source_gen: snapshot.source_gen,
            preds,
            strategy: strategy.name().to_string(),
        };
        loop {
            // One consistent view of the name's registration: its
            // generation stamp and implementation (generation 0 =
            // unregistered, the passed strategy object generates
            // directly).
            let (generation, registered) = match self.strategies.read().get(&key.strategy) {
                Some((generation, registered)) => (*generation, Some(registered.clone())),
                None => (0, None),
            };
            let shard = &self.shards[Self::shard_index(&key)];
            if let Some(hit) = shard.lock().get(&key) {
                // Serve only accounts of the name's *current*
                // registration: a racing generator may have cached an
                // account built from a replaced registration after
                // register_strategy purged.
                if hit.generation == generation {
                    return Ok(hit.account.clone());
                }
            }
            // Single-flight: the first miss of a key becomes the leader
            // and generates; concurrent misses find the flight and wait.
            let (flight, leader) = {
                let mut inflight = self.inflight.lock();
                match inflight.entry(key.clone()) {
                    std::collections::hash_map::Entry::Occupied(slot) => {
                        (slot.get().clone(), false)
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        let flight = Arc::new(Flight {
                            state: StdMutex::new(FlightState::Pending),
                            cv: Condvar::new(),
                        });
                        (slot.insert(flight).clone(), true)
                    }
                }
            };
            if !leader {
                let mut state = flight.state.lock().unwrap_or_else(PoisonError::into_inner);
                while matches!(*state, FlightState::Pending) {
                    state = flight
                        .cv
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                if let FlightState::Done(account) = &*state {
                    return Ok(account.clone());
                }
                // The leader failed; retry from the top (possibly as the
                // new leader) instead of fanning its error out.
                continue;
            }
            // Leader: generate outside the shard lock — generation is the
            // expensive step and must not serialize unrelated cache
            // traffic. The guard publishes Failed if we unwind.
            let mut flight_guard = FlightGuard {
                service: self,
                key: &key,
                flight: &flight,
                published: false,
            };
            let ctx = snapshot.context().with_csr(snapshot.index.csr());
            let generated = match &registered {
                Some(current) => current.protect(&ctx, &key.preds),
                None => strategy.protect(&ctx, &key.preds),
            };
            let result = match generated {
                Ok(account) => {
                    let account = Arc::new(account);
                    let mut guard = shard.lock();
                    // Entries for this account older than this epoch can
                    // never be current again (the snapshot rebuild also
                    // sweeps all shards).
                    guard.retain(|k, _| {
                        k.epoch >= key.epoch || k.preds != key.preds || k.strategy != key.strategy
                    });
                    // A racing generator may have inserted first; serve
                    // whichever entry carries the newest registration
                    // generation.
                    match guard.entry(key.clone()) {
                        std::collections::hash_map::Entry::Occupied(mut slot) => {
                            if slot.get().generation >= generation {
                                Ok(slot.get().account.clone())
                            } else {
                                slot.insert(CachedAccount {
                                    generation,
                                    account: account.clone(),
                                });
                                Ok(account)
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            slot.insert(CachedAccount {
                                generation,
                                account: account.clone(),
                            });
                            Ok(account)
                        }
                    }
                }
                Err(e) => Err(StoreError::from(e)),
            };
            flight_guard.published = true;
            self.finish_flight(
                &key,
                &flight,
                match &result {
                    Ok(account) => FlightState::Done(account.clone()),
                    Err(_) => FlightState::Failed,
                },
            );
            return result;
        }
    }

    /// Retires an in-flight generation: removes it from the coalescing
    /// map and wakes every waiting follower with the outcome.
    fn finish_flight(&self, key: &CacheKey, flight: &Flight, outcome: FlightState) {
        self.inflight.lock().remove(key);
        let mut state = flight.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state = outcome;
        flight.cv.notify_all();
    }

    /// Shard by `(preds, strategy)` — *not* the epoch — so successive
    /// epochs of the same logical account land in the same shard and the
    /// insert-time eviction above can see its stale predecessors.
    fn shard_index(key: &CacheKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.preds.hash(&mut hasher);
        key.strategy.hash(&mut hasher);
        (hasher.finish() as usize) % SHARDS
    }

    /// The account for the consumer's *entire* credential frontier — the
    /// multi-predicate high-water account (Def. 6) a consumer holding
    /// several incomparable grants is entitled to.
    pub fn get_account(
        &self,
        consumer: &Consumer,
        strategy: &dyn ProtectionStrategy,
    ) -> Result<Arc<ProtectedAccount>> {
        let snapshot = self.snapshot();
        self.frontier_account_at(&snapshot, consumer, strategy)
    }

    /// The single-predicate account for `predicate`, after checking the
    /// consumer satisfies it — an account's high-water set must be
    /// dominated by the consumer's credentials (§3.1).
    pub fn get_account_for(
        &self,
        consumer: &Consumer,
        predicate: PrivilegeId,
        strategy: &dyn ProtectionStrategy,
    ) -> Result<Arc<ProtectedAccount>> {
        self.authorize(consumer, predicate)?;
        self.protect_at(&self.snapshot(), &[predicate], strategy)
    }

    /// [`get_account`](Self::get_account) through a
    /// [registered](Self::register_strategy) strategy, looked up by name.
    pub fn get_account_named(
        &self,
        consumer: &Consumer,
        strategy_name: &str,
    ) -> Result<Arc<ProtectedAccount>> {
        let strategy = self.strategy(strategy_name)?;
        self.get_account(consumer, strategy.as_ref())
    }

    fn frontier_account_at(
        &self,
        snapshot: &Snapshot,
        consumer: &Consumer,
        strategy: &dyn ProtectionStrategy,
    ) -> Result<Arc<ProtectedAccount>> {
        let frontier = consumer.frontier(&snapshot.lattice);
        if frontier.is_empty() {
            // A consumer with no satisfied predicates cannot even present
            // Public; there is no account to serve.
            return Err(StoreError::NotAuthorized {
                consumer: consumer.name().to_string(),
                predicate: snapshot.lattice.public().0,
            });
        }
        self.protect_at(snapshot, &frontier, strategy)
    }

    fn authorize(&self, consumer: &Consumer, predicate: PrivilegeId) -> Result<()> {
        if consumer.satisfies(predicate) {
            Ok(())
        } else {
            Err(StoreError::NotAuthorized {
                consumer: consumer.name().to_string(),
                predicate: predicate.0,
            })
        }
    }

    /// Answers one lineage query. Equivalent to a one-element
    /// [`query_batch`](Self::query_batch).
    pub fn query(&self, consumer: &Consumer, request: &QueryRequest) -> Result<QueryResponse> {
        Ok(self
            .query_batch(consumer, std::slice::from_ref(request))?
            .remove(0))
    }

    /// Answers many lineage queries against **one** pinned snapshot: every
    /// response carries the same epoch, and requests sharing a
    /// `(predicate, strategy)` pair share one account resolution — a batch
    /// of N queries costs at most one materialization plus one cache
    /// round-trip (and at most one generation) per distinct pair, however
    /// large N is.
    ///
    /// The batch is all-or-nothing: the first request that fails (e.g. an
    /// unauthorized pinned predicate) fails the whole call and already
    /// computed responses are discarded. Split batches per trust domain if
    /// partial answers are needed.
    pub fn query_batch(
        &self,
        consumer: &Consumer,
        requests: &[QueryRequest],
    ) -> Result<Vec<QueryResponse>> {
        self.query_batch_at(&self.snapshot(), consumer, requests)
    }

    /// [`query_batch`](Self::query_batch) against a pinned snapshot, so
    /// callers that key derived artifacts by epoch (the sealed-frame
    /// cache) answer at exactly the epoch they keyed.
    fn query_batch_at(
        &self,
        snapshot: &Snapshot,
        consumer: &Consumer,
        requests: &[QueryRequest],
    ) -> Result<Vec<QueryResponse>> {
        // Resolve each distinct (predicate, strategy) pair once; the
        // per-request loop then only clones Arcs and traverses.
        let mut accounts: HashMap<(Option<PrivilegeId>, Strategy), Arc<ProtectedAccount>> =
            HashMap::new();
        requests
            .iter()
            .map(|request| {
                let account = match accounts.entry((request.predicate, request.strategy)) {
                    std::collections::hash_map::Entry::Occupied(hit) => hit.get().clone(),
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        // protect_at resolves the strategy name through
                        // the registry, so a re-registered built-in name
                        // serves its replacement here too.
                        let account = match request.predicate {
                            Some(predicate) => {
                                self.authorize(consumer, predicate)?;
                                self.protect_at(snapshot, &[predicate], &request.strategy)?
                            }
                            None => {
                                self.frontier_account_at(snapshot, consumer, &request.strategy)?
                            }
                        };
                        slot.insert(account).clone()
                    }
                };
                Ok(QueryResponse {
                    epoch: snapshot.epoch,
                    root: request.root,
                    rows: lineage_rows(
                        &account,
                        request.root,
                        request.direction,
                        request.max_depth,
                    ),
                    shard_epochs: snapshot.shard_epochs.clone(),
                })
            })
            .collect()
    }

    /// Answers one lineage query as a **pre-sealed wire frame**: the
    /// exact `len | crc32 | payload` bytes of the
    /// [`Response::Query`](crate::wire::Response::Query) answer, ready
    /// to write to a socket verbatim. Repeat queries are served from the
    /// sealed-frame cache (see the [module docs](self)); a cached frame
    /// is byte-identical to a freshly encoded one by construction — it
    /// *is* the first encoding, memoized.
    ///
    /// ```
    /// use plus_store::{AccountService, Direction, NodeKind, QueryRequest, Store, Strategy};
    /// use std::sync::Arc;
    /// use surrogate_core::credential::Consumer;
    /// use surrogate_core::feature::Features;
    ///
    /// # fn main() -> plus_store::Result<()> {
    /// let store = Arc::new(Store::new(&["Public"], &[])?);
    /// let public = store.predicate("Public").unwrap();
    /// let root = store.append_node("report", NodeKind::Data, Features::new(), public);
    /// let service = AccountService::new(store);
    /// let consumer = Consumer::public(&service.snapshot().lattice);
    /// let request = QueryRequest::new(root, Direction::Backward, 1, Strategy::Surrogate);
    ///
    /// let frame = service.query_sealed(&consumer, &request)?;
    /// // The frame is the exact sealed wire answer; a repeat is a cache hit.
    /// assert_eq!(service.query_sealed(&consumer, &request)?, frame);
    /// assert_eq!(service.frame_cache_stats(), (1, 1), "(hits, misses)");
    /// # Ok(())
    /// # }
    /// ```
    pub fn query_sealed(&self, consumer: &Consumer, request: &QueryRequest) -> Result<Bytes> {
        self.sealed_answer(consumer, std::slice::from_ref(request), false)
    }

    /// [`query_batch`](Self::query_batch) as a pre-sealed
    /// [`Response::Batch`](crate::wire::Response::Batch) frame, with the
    /// same caching as [`query_sealed`](Self::query_sealed).
    pub fn query_batch_sealed(
        &self,
        consumer: &Consumer,
        requests: &[QueryRequest],
    ) -> Result<Bytes> {
        self.sealed_answer(consumer, requests, true)
    }

    /// Lifetime sealed-frame cache counters, `(hits, misses)`.
    pub fn frame_cache_stats(&self) -> (u64, u64) {
        (
            self.frame_hits.load(Ordering::Relaxed),
            self.frame_misses.load(Ordering::Relaxed),
        )
    }

    /// Sealed frames currently cached (all epochs).
    pub fn cached_frames(&self) -> usize {
        self.frame_shards.iter().map(|s| s.lock().len()).sum()
    }

    fn sealed_answer(
        &self,
        consumer: &Consumer,
        requests: &[QueryRequest],
        batch: bool,
    ) -> Result<Bytes> {
        let snapshot = self.snapshot();
        let mut frontier = consumer.frontier(&snapshot.lattice);
        frontier.sort_unstable_by_key(|p| p.0);
        let key = FrameKey {
            epoch: snapshot.epoch,
            source_gen: snapshot.source_gen,
            frontier,
            request: crate::wire::encode_query_key(requests, batch)?,
        };
        let shard = &self.frame_shards[Self::frame_shard_index(&key)];
        if let Some(hit) = shard.lock().get(&key) {
            self.frame_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        self.frame_misses.fetch_add(1, Ordering::Relaxed);
        let mut responses = self.query_batch_at(&snapshot, consumer, requests)?;
        let response = if batch {
            crate::wire::Response::Batch(responses)
        } else {
            crate::wire::Response::Query(responses.remove(0))
        };
        let payload = crate::wire::encode_response(&response)?;
        if payload.len() as u64 > crate::codec::MAX_FRAME_LEN as u64 {
            // The answer cannot travel in one frame; surface the same
            // error an oversized frame would raise at the codec layer
            // (callers answer "split the batch").
            return Err(StoreError::Codec(CodecError::FrameTooLarge(
                u32::try_from(payload.len()).unwrap_or(u32::MAX),
            )));
        }
        let sealed = Bytes::from(crate::codec::seal_frame(&payload));
        let mut guard = shard.lock();
        if guard.len() >= FRAME_SHARD_CAP {
            guard.clear();
        }
        guard.insert(key, sealed.clone());
        Ok(sealed)
    }

    fn frame_shard_index(key: &FrameKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % FRAME_SHARDS
    }
}

/// Traverses a protected account from `root`, mapping each visited node
/// back to its record and surrogate status. Empty when the root has no
/// corresponding account node.
pub fn lineage_rows(
    account: &ProtectedAccount,
    root: RecordId,
    direction: Direction,
    max_depth: u32,
) -> Vec<ProtectedLineageRow> {
    let Some(root2) = account.account_node(NodeId(root.0)) else {
        return Vec::new(); // root invisible: nothing to traverse
    };
    let traversal = traverse(account.graph(), root2, direction, max_depth);
    traversal
        .iter()
        .map(|(n2, depth)| {
            let original = account.original_node(n2);
            ProtectedLineageRow {
                record: RecordId(original.0),
                label: account.graph().node(n2).label.clone(),
                depth,
                surrogate: !matches!(
                    account.correspondence(n2),
                    surrogate_core::account::Correspondence::Original
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EdgeKind, NodeKind, PolicyStatement};
    use surrogate_core::account::{generate_with_options, GenerateOptions, ProtectionContext};
    use surrogate_core::error::Result as CoreResult;
    use surrogate_core::feature::Features;

    /// source(High) → mid(Public) → sink(Public), with a Public surrogate
    /// for the source.
    fn setup() -> (Arc<Store>, Vec<RecordId>) {
        let store = Arc::new(Store::new(&["Public", "High"], &[(1, 0)]).unwrap());
        let public = store.predicate("Public").unwrap();
        let high = store.predicate("High").unwrap();
        let source = store.append_node("secret source", NodeKind::Agent, Features::new(), high);
        let mid = store.append_node("analysis", NodeKind::Process, Features::new(), public);
        let sink = store.append_node("report", NodeKind::Data, Features::new(), public);
        store.append_edge(source, mid, EdgeKind::InputTo).unwrap();
        store.append_edge(mid, sink, EdgeKind::GeneratedBy).unwrap();
        // Fig. 2(a) pattern: incidences stay Visible, so the Public
        // surrogate is wired in place of the source.
        store
            .apply_policy(PolicyStatement::AddSurrogate {
                node: source,
                label: "a trusted source".into(),
                features: Features::new(),
                lowest: public,
                info_score: 0.3,
            })
            .unwrap();
        (store, vec![source, mid, sink])
    }

    #[test]
    fn snapshot_tracks_store_version() {
        let (store, _) = setup();
        let service = AccountService::new(store.clone());
        let before = service.snapshot();
        assert_eq!(before.epoch(), store.version());
        let public = store.predicate("Public").unwrap();
        store.append_node("extra", NodeKind::Data, Features::new(), public);
        let after = service.snapshot();
        assert_eq!(after.epoch(), before.epoch() + 1);
        assert_eq!(after.graph.node_count(), before.graph.node_count() + 1);
        // Pinned snapshots are unaffected by later mutations.
        assert_eq!(before.graph.node_count(), 3);
    }

    #[test]
    fn accounts_are_cached_per_epoch() {
        let (store, _) = setup();
        let service = AccountService::new(store.clone());
        let public = store.predicate("Public").unwrap();
        let first = service.protect(&[public], &Strategy::Surrogate).unwrap();
        let second = service.protect(&[public], &Strategy::Surrogate).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same cached account");
        assert_eq!(service.cached_accounts(), 1);

        // A mutation bumps the epoch; the account regenerates and the
        // stale entry is evicted.
        store.append_node("late", NodeKind::Data, Features::new(), public);
        let third = service.protect(&[public], &Strategy::Surrogate).unwrap();
        assert!(!Arc::ptr_eq(&first, &third), "stale epoch not served");
        assert_eq!(third.graph().node_count(), first.graph().node_count() + 1);
        assert_eq!(service.cached_accounts(), 1, "stale entry evicted");
    }

    #[test]
    fn strategies_cache_independently() {
        let (store, _) = setup();
        let service = AccountService::new(store);
        let public = service.snapshot().lattice.public();
        let sur = service.protect(&[public], &Strategy::Surrogate).unwrap();
        let hide = service.protect(&[public], &Strategy::HideEdges).unwrap();
        assert!(!Arc::ptr_eq(&sur, &hide));
        assert_eq!(service.cached_accounts(), 2);
    }

    #[test]
    fn get_account_checks_credentials() {
        let (store, _) = setup();
        let service = AccountService::new(store);
        let snapshot = service.snapshot();
        let high = snapshot.lattice.by_name("High").unwrap();
        let consumer = Consumer::public(&snapshot.lattice);
        assert!(matches!(
            service.get_account_for(&consumer, high, &Strategy::Surrogate),
            Err(StoreError::NotAuthorized { .. })
        ));
        let insider = Consumer::new("insider", &snapshot.lattice, &[high]);
        let account = service
            .get_account_for(&insider, high, &Strategy::Surrogate)
            .unwrap();
        assert_eq!(account.graph().node_count(), 3);
    }

    #[test]
    fn frontier_account_serves_the_def6_set() {
        let store = Arc::new(Store::new(&["Public", "A", "B"], &[(1, 0), (2, 0)]).unwrap());
        let a = store.predicate("A").unwrap();
        let b = store.predicate("B").unwrap();
        let public = store.predicate("Public").unwrap();
        let na = store.append_node("na", NodeKind::Data, Features::new(), a);
        let np = store.append_node("np", NodeKind::Data, Features::new(), public);
        let nb = store.append_node("nb", NodeKind::Data, Features::new(), b);
        store.append_edge(na, np, EdgeKind::Related).unwrap();
        store.append_edge(np, nb, EdgeKind::Related).unwrap();
        let service = AccountService::new(store);
        let snapshot = service.snapshot();
        let dual = Consumer::new("dual", &snapshot.lattice, &[a, b]);
        let account = service.get_account(&dual, &Strategy::Surrogate).unwrap();
        assert_eq!(account.high_water().len(), 2);
        assert_eq!(account.graph().node_count(), 3);
        // Cached: the same Arc comes back.
        let again = service.get_account(&dual, &Strategy::Surrogate).unwrap();
        assert!(Arc::ptr_eq(&account, &again));
    }

    #[test]
    fn query_batch_shares_one_epoch_and_account() {
        let (store, ids) = setup();
        let service = AccountService::new(store.clone());
        let consumer = Consumer::public(&service.snapshot().lattice);
        let requests: Vec<QueryRequest> = ids
            .iter()
            .map(|&root| {
                QueryRequest::new(root, Direction::Backward, u32::MAX, Strategy::Surrogate)
            })
            .collect();
        let responses = service.query_batch(&consumer, &requests).unwrap();
        assert_eq!(responses.len(), 3);
        for response in &responses {
            assert_eq!(response.epoch, store.version());
        }
        assert_eq!(service.cached_accounts(), 1, "one account for the batch");
        // Upstream of the sink: analysis then the surrogate.
        let sink_rows = &responses[2].rows;
        assert_eq!(sink_rows.len(), 2);
        assert_eq!(sink_rows[0].label, "analysis");
        assert!(!sink_rows[0].surrogate);
        assert_eq!(sink_rows[1].label, "a trusted source");
        assert!(sink_rows[1].surrogate);
    }

    #[test]
    fn query_with_pinned_predicate_authorizes() {
        let (store, ids) = setup();
        let service = AccountService::new(store);
        let snapshot = service.snapshot();
        let high = snapshot.lattice.by_name("High").unwrap();
        let consumer = Consumer::public(&snapshot.lattice);
        let request = QueryRequest::new(ids[2], Direction::Backward, u32::MAX, Strategy::Surrogate)
            .with_predicate(high);
        assert!(matches!(
            service.query(&consumer, &request),
            Err(StoreError::NotAuthorized { .. })
        ));
    }

    #[test]
    fn invisible_root_yields_empty_rows() {
        let store = Arc::new(Store::new(&["Public", "High"], &[(1, 0)]).unwrap());
        let high = store.predicate("High").unwrap();
        let source = store.append_node("secret", NodeKind::Agent, Features::new(), high);
        let service = AccountService::new(store);
        let consumer = Consumer::public(&service.snapshot().lattice);
        let response = service
            .query(
                &consumer,
                &QueryRequest::new(source, Direction::Forward, u32::MAX, Strategy::Surrogate),
            )
            .unwrap();
        assert!(response.rows.is_empty());
    }

    /// A custom strategy registered without touching `surrogate-core`: the
    /// redundancy-filter ablation.
    struct Unfiltered;

    impl ProtectionStrategy for Unfiltered {
        fn name(&self) -> &str {
            "unfiltered"
        }

        fn protect(
            &self,
            ctx: &ProtectionContext<'_>,
            preds: &[PrivilegeId],
        ) -> CoreResult<ProtectedAccount> {
            generate_with_options(
                ctx,
                preds,
                GenerateOptions {
                    redundancy_filter: false,
                },
            )
        }
    }

    #[test]
    fn custom_strategy_registers_and_serves() {
        let (store, _) = setup();
        let service = AccountService::new(store);
        let consumer = Consumer::public(&service.snapshot().lattice);
        assert!(matches!(
            service.get_account_named(&consumer, "unfiltered"),
            Err(StoreError::UnknownStrategy(_))
        ));
        service.register_strategy(Arc::new(Unfiltered));
        let account = service.get_account_named(&consumer, "unfiltered").unwrap();
        // Unfiltered keeps every permitted pair: at least as many edges as
        // the filtered built-in, cached under its own name.
        let filtered = service.get_account_named(&consumer, "surrogate").unwrap();
        assert!(account.graph().edge_count() >= filtered.graph().edge_count());
        assert!(service.strategy_names().contains(&"unfiltered".to_string()));
    }

    /// Replaces the built-in surrogate algorithm under its own name.
    struct ReplacementSurrogate;

    impl ProtectionStrategy for ReplacementSurrogate {
        fn name(&self) -> &str {
            "surrogate"
        }

        fn protect(
            &self,
            ctx: &ProtectionContext<'_>,
            preds: &[PrivilegeId],
        ) -> CoreResult<ProtectedAccount> {
            // Observably different from the built-in: no redundancy filter.
            generate_with_options(
                ctx,
                preds,
                GenerateOptions {
                    redundancy_filter: false,
                },
            )
        }
    }

    #[test]
    fn re_registering_a_name_purges_its_cached_accounts() {
        let (store, ids) = setup();
        let service = AccountService::new(store);
        let consumer = Consumer::public(&service.snapshot().lattice);
        let before = service.get_account_named(&consumer, "surrogate").unwrap();
        service.register_strategy(Arc::new(ReplacementSurrogate));
        // The stale built-in account must not be served under the name…
        let after = service.get_account_named(&consumer, "surrogate").unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "cache purged on replace");
        // …and the enum-selector query path resolves through the registry,
        // so it serves the replacement too (same cached object).
        let response = service
            .query(
                &consumer,
                &QueryRequest::new(ids[2], Direction::Backward, u32::MAX, Strategy::Surrogate),
            )
            .unwrap();
        assert_eq!(response.rows.len(), 2);
        let via_query = service.get_account_named(&consumer, "surrogate").unwrap();
        assert!(Arc::ptr_eq(&after, &via_query));
        // The enum selector resolves through the registry as well: passing
        // &Strategy::Surrogate serves the replacement, not the built-in,
        // so the two call styles can never poison each other's cache.
        let via_enum = service
            .get_account(&consumer, &Strategy::Surrogate)
            .unwrap();
        assert!(Arc::ptr_eq(&after, &via_enum));
    }

    #[test]
    fn cache_key_is_order_insensitive_in_preds() {
        let store = Arc::new(Store::new(&["Public", "A", "B"], &[(1, 0), (2, 0)]).unwrap());
        let a = store.predicate("A").unwrap();
        let b = store.predicate("B").unwrap();
        store.append_node("na", NodeKind::Data, Features::new(), a);
        let service = AccountService::new(store);
        let ab = service.protect(&[a, b], &Strategy::Surrogate).unwrap();
        let ba = service.protect(&[b, a], &Strategy::Surrogate).unwrap();
        assert!(Arc::ptr_eq(&ab, &ba), "{{a,b}} and {{b,a}} are one account");
        assert_eq!(service.cached_accounts(), 1);
    }

    #[test]
    fn frozen_service_serves_epoch_zero() {
        let (store, ids) = setup();
        let service = AccountService::from_materialized(store.materialize());
        assert!(service.store().is_none());
        assert_eq!(service.epoch(), 0);
        let consumer = Consumer::public(&service.snapshot().lattice);
        let response = service
            .query(
                &consumer,
                &QueryRequest::new(ids[2], Direction::Backward, u32::MAX, Strategy::Surrogate),
            )
            .unwrap();
        assert_eq!(response.epoch, 0);
        assert_eq!(response.rows.len(), 2);
    }

    #[test]
    fn sealed_frames_match_fresh_encodings_and_hit_the_cache() {
        let (store, ids) = setup();
        let service = AccountService::new(store);
        let consumer = Consumer::public(&service.snapshot().lattice);
        let request = QueryRequest::new(ids[2], Direction::Backward, u32::MAX, Strategy::Surrogate);

        let cold = service.query_sealed(&consumer, &request).unwrap();
        // Golden check: the cached sealed frame is the seal of the
        // freshly encoded typed answer, byte for byte.
        let fresh = service.query(&consumer, &request).unwrap();
        let expected = crate::codec::seal_frame(
            &crate::wire::encode_response(&crate::wire::Response::Query(fresh)).unwrap(),
        );
        assert_eq!(&*cold, &expected[..]);

        let warm = service.query_sealed(&consumer, &request).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(service.frame_cache_stats(), (1, 1), "(hits, misses)");
        assert_eq!(service.cached_frames(), 1);

        // Batch frames cache independently and verify the same way.
        let batch = vec![request.clone(), request.clone()];
        let sealed_batch = service.query_batch_sealed(&consumer, &batch).unwrap();
        let fresh_batch = service.query_batch(&consumer, &batch).unwrap();
        let expected = crate::codec::seal_frame(
            &crate::wire::encode_response(&crate::wire::Response::Batch(fresh_batch)).unwrap(),
        );
        assert_eq!(&*sealed_batch, &expected[..]);
        assert_eq!(
            service.query_batch_sealed(&consumer, &batch).unwrap(),
            sealed_batch
        );
    }

    #[test]
    fn sealed_frames_invalidate_on_epoch_and_registration() {
        let (store, ids) = setup();
        let service = AccountService::new(store.clone());
        let public = store.predicate("Public").unwrap();
        let consumer = Consumer::public(&service.snapshot().lattice);
        let request = QueryRequest::new(ids[2], Direction::Backward, u32::MAX, Strategy::Surrogate);
        let before = service.query_sealed(&consumer, &request).unwrap();
        assert_eq!(service.cached_frames(), 1);

        // An epoch bump sweeps the stale frame and answers fresh (the
        // epoch is part of the response payload, so the bytes differ).
        store.append_node("late", NodeKind::Data, Features::new(), public);
        let after = service.query_sealed(&consumer, &request).unwrap();
        assert_ne!(before, after);
        assert_eq!(service.cached_frames(), 1, "stale frame swept");

        // Re-registering a strategy drops all cached frames.
        service.register_strategy(Arc::new(ReplacementSurrogate));
        assert_eq!(service.cached_frames(), 0);
        let replaced = service.query_sealed(&consumer, &request).unwrap();
        let fresh = service.query(&consumer, &request).unwrap();
        let expected = crate::codec::seal_frame(
            &crate::wire::encode_response(&crate::wire::Response::Query(fresh)).unwrap(),
        );
        assert_eq!(&*replaced, &expected[..], "frame reflects the replacement");
    }

    #[test]
    fn sealed_frames_key_by_frontier_not_name() {
        let (store, ids) = setup();
        let service = AccountService::new(store);
        let snapshot = service.snapshot();
        let request = QueryRequest::new(ids[2], Direction::Backward, u32::MAX, Strategy::Surrogate);
        let public = snapshot.lattice.public();
        let alice = Consumer::new("alice", &snapshot.lattice, &[public]);
        let bob = Consumer::new("bob", &snapshot.lattice, &[public]);
        service.query_sealed(&alice, &request).unwrap();
        service.query_sealed(&bob, &request).unwrap();
        // Same credentials ⇒ same frame: bob's query was a cache hit.
        assert_eq!(service.frame_cache_stats(), (1, 1));
        // A consumer with more credentials misses (different frontier).
        let high = snapshot.lattice.by_name("High").unwrap();
        let insider = Consumer::new("insider", &snapshot.lattice, &[high]);
        service.query_sealed(&insider, &request).unwrap();
        assert_eq!(service.frame_cache_stats(), (1, 2));
    }

    #[test]
    fn pinned_snapshot_answers_stay_consistent() {
        let (store, _) = setup();
        let service = AccountService::new(store.clone());
        let public = store.predicate("Public").unwrap();
        let pinned = service.snapshot();
        store.append_node("later", NodeKind::Data, Features::new(), public);
        // The pinned snapshot still resolves at its own epoch…
        let old = service
            .protect_at(&pinned, &[public], &Strategy::Surrogate)
            .unwrap();
        assert_eq!(old.graph().node_count(), 3);
        // …while the current snapshot sees the new node.
        let new = service.protect(&[public], &Strategy::Surrogate).unwrap();
        assert_eq!(new.graph().node_count(), 4);
    }
}
