//! Scatter-gather merge: one coherent materialization assembled from
//! the record streams of every shard of a partitioned deployment.
//!
//! A sharded cluster splits the keyspace arithmetically (see
//! [`surrogate_core::shard`]): shard `i` of `N` owns the ids congruent
//! to `i` modulo `N` and stores them densely. Each shard alone can only
//! answer point reads — a cross-shard traversal needs the union of all
//! shards' records. [`ShardMerge`] is that union: it ingests each
//! shard's snapshot and write-ahead-log stream (the same sealed frames
//! replication ships) and materializes the **whole** graph on demand.
//!
//! # Order-canonical materialization
//!
//! The merge is a pure function of the per-shard record *sets*, not of
//! the order chunks happened to arrive in:
//!
//! * **Nodes** are laid out at their global ids, with inert
//!   placeholders at ids nothing has claimed yet (the same placeholder
//!   convention a partitioned [`Store`](crate::Store) uses for foreign
//!   ids).
//! * **Edges** are sorted by `(from, to)` before insertion. An edge
//!   lives on exactly one shard (its `from`'s owner), so the sort is a
//!   total order with no cross-shard duplicates to break ties between.
//! * **Policy** is replayed per shard in shard-index order, preserving
//!   each shard's internal order. A policy statement routes by the node
//!   it governs, so two shards can never hold conflicting statements
//!   for one node — concatenation order between shards is unobservable.
//!
//! Two gathers that have ingested the same records therefore
//! materialize byte-identical graphs, whatever the interleaving of
//! their feeds — which is what makes "diff the scatter-gather answer
//! against a single-store oracle" a meaningful test.
//!
//! # Epoch vectors
//!
//! The merge's version is the **vector** of per-shard clocks
//! ([`clocks`](ShardMerge::clocks)); its scalar
//! [`version`](ShardMerge::version) — the sum — is monotone under ingestion and
//! serves as the service-layer epoch (a valid cache key). Query
//! responses stamped by a gather carry the full vector, so a client can
//! tell exactly how far into *each* shard's history an answer reflects.

use parking_lot::RwLock;
use surrogate_core::privilege::{PrivilegeId, PrivilegeLattice};
use surrogate_core::shard::ShardMap;

use crate::codec::WalRecord;
use crate::codec::{self, FrameDecode, SnapshotData};
use crate::error::{Result, StoreError};
use crate::record::{EdgeRecord, NodeRecord, PolicyStatement};
use crate::store::Materialized;

/// One shard's contribution to the merge: its records in append order
/// and the clock they extend to.
#[derive(Debug, Clone, Default)]
struct ShardSlice {
    nodes: Vec<NodeRecord>,
    edges: Vec<EdgeRecord>,
    policy: Vec<PolicyStatement>,
    clock: u64,
}

/// The gather-side union of every shard's record stream. See the
/// [module docs](self) for the merge semantics.
///
/// Not internally synchronized — wrap it in a [`MergedSource`] (or your
/// own lock) to share across feed threads.
#[derive(Debug)]
pub struct ShardMerge {
    map: ShardMap,
    slices: Vec<ShardSlice>,
    /// Lattice definition, learned from the first ingested snapshot and
    /// verified against every later one. Empty until then; the fallback
    /// materialization uses a single-"Public" lattice.
    lattice_names: Vec<String>,
    dominance: Vec<(PrivilegeId, PrivilegeId)>,
    /// Bumped by every [`reset_slot`](Self::reset_slot). A reset is the
    /// one operation that can rewind a clock, so `(generation,
    /// version)` — not `version` alone — identifies a merge state; the
    /// service layer folds the generation into its cache keys.
    generation: u64,
}

impl ShardMerge {
    /// An empty merge over `map.count()` shards.
    pub fn new(map: ShardMap) -> Self {
        Self {
            map,
            slices: (0..map.count()).map(|_| ShardSlice::default()).collect(),
            lattice_names: Vec::new(),
            dominance: Vec::new(),
            generation: 0,
        }
    }

    /// The keyspace map this merge gathers.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// The per-shard clock vector: element `i` is how many mutations of
    /// shard `i`'s history this merge reflects.
    pub fn clocks(&self) -> Vec<u64> {
        self.slices.iter().map(|s| s.clock).collect()
    }

    /// Shard `slot`'s clock — the resume cursor for its feed.
    ///
    /// # Panics
    /// Panics when `slot` is out of range.
    pub fn clock(&self, slot: u32) -> u64 {
        self.slices[slot as usize].clock
    }

    /// The scalar epoch: the sum of the per-shard clocks. Monotone
    /// under ingestion; only a [`reset_slot`](Self::reset_slot) can
    /// lower it, which is why cache keys pair it with
    /// [`generation`](Self::generation).
    pub fn version(&self) -> u64 {
        self.slices.iter().map(|s| s.clock).sum()
    }

    /// How many slot resets this merge has performed. `(generation,
    /// version)` uniquely identifies a merge state even across resets.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Discards everything ingested for shard `slot` and rewinds its
    /// clock to zero, returning the abandoned clock. This is the
    /// gather-side anti-entropy step: when a shard's feed resumes under
    /// a **higher fencing term**, the records this merge ingested from
    /// the deposed primary may include an unacknowledged tail the new
    /// primary never saw, and the only safe repair is to drop the slice
    /// and re-bootstrap from the new primary's snapshot (exactly as a
    /// rejoining replica truncates against the new term's history).
    ///
    /// Bumps [`generation`](Self::generation) so stale epoch-keyed
    /// cache entries can never be mistaken for post-reset state.
    pub fn reset_slot(&mut self, slot: u32) -> Result<u64> {
        let slice = self.slice_mut(slot)?;
        let abandoned = slice.clock;
        *slice = ShardSlice::default();
        self.generation += 1;
        Ok(abandoned)
    }

    fn slice_mut(&mut self, slot: u32) -> Result<&mut ShardSlice> {
        self.slices
            .get_mut(slot as usize)
            .ok_or(StoreError::ShardMismatch {
                slot,
                reason: "slot is outside the shard map",
            })
    }

    /// Replaces shard `slot`'s slice with a full snapshot — the cold
    /// (or post-prune) bootstrap of a feed. The snapshot must be
    /// stamped for exactly partition `slot` of this merge's map, and
    /// must agree with the lattice every other shard declared; a
    /// snapshot older than what the merge already holds is ignored.
    pub fn ingest_snapshot(&mut self, slot: u32, data: &SnapshotData) -> Result<()> {
        let count = self.map.count();
        match data.partition {
            Some(p) if p.index() == slot && p.count() == count => {}
            _ => {
                return Err(StoreError::ShardMismatch {
                    slot,
                    reason: "snapshot is not stamped for this shard slot",
                })
            }
        }
        if self.lattice_names.is_empty() {
            self.lattice_names = data.lattice_names.clone();
            self.dominance = data.dominance.clone();
        } else if self.lattice_names != data.lattice_names || self.dominance != data.dominance {
            return Err(StoreError::ShardMismatch {
                slot,
                reason: "shards disagree on the privilege lattice",
            });
        }
        let slice = self.slice_mut(slot)?;
        if data.clock < slice.clock {
            // A stale snapshot (a feed reconnecting through an old
            // checkpoint) must not rewind history the merge already has.
            return Ok(());
        }
        slice.nodes = data.nodes.clone();
        slice.edges = data.edges.clone();
        slice.policy = data.policy.clone();
        slice.clock = data.clock;
        Ok(())
    }

    /// Applies one replicated mutation of shard `slot`, advancing its
    /// clock by one.
    pub fn apply_record(&mut self, slot: u32, record: WalRecord) -> Result<()> {
        let slice = self.slice_mut(slot)?;
        match record {
            WalRecord::AppendNode(node) => slice.nodes.push(node),
            WalRecord::AppendEdge(edge) => slice.edges.push(edge),
            WalRecord::ApplyPolicy(statement) => slice.policy.push(statement),
        }
        slice.clock += 1;
        Ok(())
    }

    /// Applies a run of concatenated sealed WAL frames from shard
    /// `slot`, contiguous in clock from `start_clock` — the body of one
    /// replication chunk. Frames at clocks the merge already reflects
    /// are skipped; a gap (frames starting beyond the slice's clock) is
    /// a [`StoreError::ReplicationGap`].
    pub fn apply_frames(&mut self, slot: u32, start_clock: u64, frames: &[u8]) -> Result<()> {
        let mut clock = start_clock;
        let mut pos = 0;
        while pos < frames.len() {
            match codec::decode_frame(&frames[pos..]) {
                FrameDecode::Complete { record, consumed } => {
                    let local = self.slice_mut(slot)?.clock;
                    if clock > local {
                        return Err(StoreError::ReplicationGap {
                            expected: local,
                            found: clock,
                        });
                    }
                    if clock == local {
                        self.apply_record(slot, record)?;
                    }
                    clock += 1;
                    pos += consumed;
                }
                // The wire frame around the chunk already passed its
                // checksum, so damage inside means a buggy or hostile
                // feeder, not line noise.
                FrameDecode::Torn | FrameDecode::Corrupt(_) => {
                    return Err(StoreError::ShardMismatch {
                        slot,
                        reason: "replication chunk holds a torn or corrupt frame",
                    });
                }
            }
        }
        Ok(())
    }

    fn lattice(&self) -> PrivilegeLattice {
        let mut builder = PrivilegeLattice::builder();
        if self.lattice_names.is_empty() {
            // No shard has shipped a snapshot yet; serve the degenerate
            // single-predicate lattice (the gather refuses queries until
            // every feed connects anyway).
            builder.add("Public").expect("fresh builder accepts a name");
        } else {
            let mut ids = Vec::with_capacity(self.lattice_names.len());
            for name in &self.lattice_names {
                ids.push(
                    builder
                        .add(name.clone())
                        .expect("snapshot lattice names are unique"),
                );
            }
            for &(hi, lo) in &self.dominance {
                builder.declare_dominates(ids[hi.0 as usize], ids[lo.0 as usize]);
            }
        }
        builder.finish().expect("snapshot lattice is well-formed")
    }

    /// Materializes the merged graph — the order-canonical union of
    /// every ingested record (see the [module docs](self)).
    pub fn materialize(&self) -> Materialized {
        use surrogate_core::graph::{Graph, NodeId};
        use surrogate_core::marking::MarkingStore;
        use surrogate_core::surrogate::{SurrogateCatalog, SurrogateDef};

        let lattice = self.lattice();
        let bottom = lattice.public();

        // The graph covers every id any shard has assigned or
        // referenced: global ids equal graph node ids, with
        // placeholders at unassigned gaps.
        let mut bound: u32 = 0;
        for (i, slice) in self.slices.iter().enumerate() {
            let p = self
                .map
                .partition(i as u32)
                .expect("slices are indexed by the map");
            if let Some(n) = (slice.nodes.len() as u32).checked_sub(1) {
                bound = bound.max(p.global(n).saturating_add(1));
            }
            for edge in &slice.edges {
                bound = bound.max(edge.from.0.saturating_add(1));
                bound = bound.max(edge.to.0.saturating_add(1));
            }
        }

        let mut graph = Graph::with_capacity(
            bound as usize,
            self.slices.iter().map(|s| s.edges.len()).sum(),
        );
        for g in 0..bound {
            let p = self
                .map
                .partition(self.map.shard_of(g))
                .expect("shard_of is in range");
            let record = self.slices[p.index() as usize]
                .nodes
                .get(p.local(g) as usize);
            match record {
                Some(node) => graph.add_node_with_features(
                    node.label.clone(),
                    node.features.clone(),
                    node.lowest,
                ),
                None => graph.add_node_with_features(
                    String::new(),
                    surrogate_core::feature::Features::new(),
                    bottom,
                ),
            };
        }

        // Canonical edge order: sorted by (from, to). Each edge lives
        // on its from-id's owner, so the sort has no duplicates.
        let mut edges: Vec<&EdgeRecord> = self.slices.iter().flat_map(|s| &s.edges).collect();
        edges.sort_unstable_by_key(|e| (e.from.0, e.to.0));
        for edge in edges {
            graph
                .add_edge(NodeId(edge.from.0), NodeId(edge.to.0))
                .expect("edge endpoints are covered by the placeholder bound");
        }

        let mut markings = MarkingStore::new();
        let mut catalog = SurrogateCatalog::new();
        for slice in &self.slices {
            for statement in &slice.policy {
                match statement {
                    PolicyStatement::MarkIncidence {
                        node,
                        from,
                        to,
                        predicate,
                        marking,
                    } => {
                        let edge = (NodeId(from.0), NodeId(to.0));
                        match predicate {
                            Some(p) => markings.set(NodeId(node.0), edge, *p, *marking),
                            None => markings.set_all_predicates(NodeId(node.0), edge, *marking),
                        }
                    }
                    PolicyStatement::MarkNode {
                        node,
                        predicate,
                        marking,
                    } => match predicate {
                        Some(p) => markings.set_node(NodeId(node.0), *p, *marking),
                        None => markings.set_node_all_predicates(NodeId(node.0), *marking),
                    },
                    PolicyStatement::AddSurrogate {
                        node,
                        label,
                        features,
                        lowest,
                        info_score,
                    } => catalog.add(
                        NodeId(node.0),
                        SurrogateDef {
                            label: label.clone(),
                            features: features.clone(),
                            lowest: *lowest,
                            info_score: *info_score,
                        },
                    ),
                }
            }
        }

        Materialized {
            graph,
            lattice,
            markings,
            catalog,
        }
    }
}

/// A thread-safe [`ShardMerge`] handle: feed threads write through
/// [`update`](Self::update) while the service layer takes consistent
/// `(epoch, clocks, materialization)` reads.
#[derive(Debug)]
pub struct MergedSource {
    merge: RwLock<ShardMerge>,
}

impl MergedSource {
    /// An empty merge over `map`.
    pub fn new(map: ShardMap) -> Self {
        Self {
            merge: RwLock::new(ShardMerge::new(map)),
        }
    }

    /// The keyspace map.
    pub fn map(&self) -> ShardMap {
        self.merge.read().map()
    }

    /// The per-shard clock vector at this instant.
    pub fn clocks(&self) -> Vec<u64> {
        self.merge.read().clocks()
    }

    /// The scalar epoch (sum of clocks) at this instant.
    pub fn version(&self) -> u64 {
        self.merge.read().version()
    }

    /// The reset generation at this instant (see
    /// [`ShardMerge::generation`]).
    pub fn generation(&self) -> u64 {
        self.merge.read().generation()
    }

    /// `(generation, version)` read under one lock — the pair that
    /// uniquely identifies a merge state across slot resets.
    pub fn stamped_version(&self) -> (u64, u64) {
        let merge = self.merge.read();
        (merge.generation(), merge.version())
    }

    /// Runs `f` with exclusive access to the merge — the feed threads'
    /// ingestion entry point.
    pub fn update<R>(&self, f: impl FnOnce(&mut ShardMerge) -> R) -> R {
        f(&mut self.merge.write())
    }

    /// Drops shard `slot`'s ingested slice and rewinds its clock to
    /// zero (see [`ShardMerge::reset_slot`]), returning the abandoned
    /// clock.
    pub fn reset_slot(&self, slot: u32) -> Result<u64> {
        self.merge.write().reset_slot(slot)
    }

    /// One consistent read: the scalar epoch, the clock vector, and the
    /// materialization, all of the same instant (no ingestion can slip
    /// between them).
    pub fn materialize_versioned(&self) -> (u64, Vec<u64>, Materialized) {
        let (_, epoch, clocks, materialized) = self.materialize_stamped();
        (epoch, clocks, materialized)
    }

    /// [`materialize_versioned`](Self::materialize_versioned) plus the
    /// reset generation, all of the same instant.
    pub fn materialize_stamped(&self) -> (u64, u64, Vec<u64>, Materialized) {
        let merge = self.merge.read();
        (
            merge.generation(),
            merge.version(),
            merge.clocks(),
            merge.materialize(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EdgeKind, NodeKind, RecordId};
    use crate::store::Store;
    use surrogate_core::feature::Features;

    fn node(label: &str) -> NodeRecord {
        NodeRecord {
            label: label.into(),
            kind: NodeKind::Data,
            features: Features::new(),
            lowest: PrivilegeId(0),
            created_at: 0,
        }
    }

    fn edge(from: u32, to: u32) -> EdgeRecord {
        EdgeRecord {
            from: RecordId(from),
            to: RecordId(to),
            kind: EdgeKind::Related,
        }
    }

    #[test]
    fn merge_is_order_canonical() {
        // Two merges fed the same records in different interleavings
        // materialize identical graphs.
        let map = ShardMap::new(2).unwrap();
        let mut ab = ShardMerge::new(map);
        let mut ba = ShardMerge::new(map);
        // Shard 0 owns 0, 2; shard 1 owns 1, 3. Edge 2→1 lives on shard
        // 0 (owner of 2), edge 1→0 on shard 1.
        let shard0 = [
            WalRecord::AppendNode(node("zero")),
            WalRecord::AppendNode(node("two")),
            WalRecord::AppendEdge(edge(2, 1)),
        ];
        let shard1 = [
            WalRecord::AppendNode(node("one")),
            WalRecord::AppendNode(node("three")),
            WalRecord::AppendEdge(edge(1, 0)),
        ];
        for r in shard0.iter().chain(&shard1) {
            ab.apply_record(
                match r {
                    WalRecord::AppendEdge(e) => map.shard_of(e.from.0),
                    WalRecord::AppendNode(n) => {
                        if n.label == "zero" || n.label == "two" {
                            0
                        } else {
                            1
                        }
                    }
                    _ => unreachable!(),
                },
                r.clone(),
            )
            .unwrap();
        }
        for r in shard1.iter().chain(&shard0) {
            ba.apply_record(
                match r {
                    WalRecord::AppendEdge(e) => map.shard_of(e.from.0),
                    WalRecord::AppendNode(n) => {
                        if n.label == "zero" || n.label == "two" {
                            0
                        } else {
                            1
                        }
                    }
                    _ => unreachable!(),
                },
                r.clone(),
            )
            .unwrap();
        }
        assert_eq!(ab.clocks(), vec![3, 3]);
        assert_eq!(ab.clocks(), ba.clocks());
        let (ma, mb) = (ab.materialize(), ba.materialize());
        assert_eq!(ma.graph.node_count(), mb.graph.node_count());
        assert_eq!(ma.graph.node_count(), 4);
        assert_eq!(ma.graph.edge_count(), 2);
        for i in 0..4u32 {
            use surrogate_core::graph::NodeId;
            assert_eq!(
                ma.graph.node(NodeId(i)).label,
                mb.graph.node(NodeId(i)).label
            );
        }
    }

    #[test]
    fn merge_places_gaps_as_placeholders() {
        let map = ShardMap::new(2).unwrap();
        let mut merge = ShardMerge::new(map);
        // Only shard 1 has written: global ids 1 and 3. Ids 0 and 2 are
        // unassigned gaps the placeholder layout must cover.
        merge
            .apply_record(1, WalRecord::AppendNode(node("one")))
            .unwrap();
        merge
            .apply_record(1, WalRecord::AppendNode(node("three")))
            .unwrap();
        merge
            .apply_record(1, WalRecord::AppendEdge(edge(3, 1)))
            .unwrap();
        let m = merge.materialize();
        assert_eq!(m.graph.node_count(), 4);
        use surrogate_core::graph::NodeId;
        assert_eq!(m.graph.node(NodeId(0)).label, "");
        assert_eq!(m.graph.node(NodeId(1)).label, "one");
        assert_eq!(m.graph.node(NodeId(3)).label, "three");
        assert_eq!(m.graph.edge_count(), 1);
        assert_eq!(merge.version(), 3);
        assert_eq!(merge.clocks(), vec![0, 3]);
    }

    #[test]
    fn snapshot_ingest_bootstraps_and_verifies() {
        let map = ShardMap::new(2).unwrap();
        let mut merge = ShardMerge::new(map);
        // Build shard 0's snapshot through a real partitioned store.
        let store =
            Store::new_partitioned(&["Public", "High"], &[(1, 0)], map.partition(0).unwrap())
                .unwrap();
        let public = store.predicate("Public").unwrap();
        store.append_node("zero", NodeKind::Data, Features::new(), public);
        let data = codec::decode(&store.to_bytes()).unwrap();
        merge.ingest_snapshot(0, &data).unwrap();
        assert_eq!(merge.clocks(), vec![1, 0]);
        let m = merge.materialize();
        assert_eq!(m.lattice.len(), 2, "lattice learned from the snapshot");

        // A snapshot stamped for the wrong slot is refused.
        assert!(matches!(
            merge.ingest_snapshot(1, &data),
            Err(StoreError::ShardMismatch { slot: 1, .. })
        ));
        // A stale re-ingest (same clock) is idempotent.
        merge.ingest_snapshot(0, &data).unwrap();
        assert_eq!(merge.clocks(), vec![1, 0]);
    }

    #[test]
    fn reset_slot_rewinds_and_bumps_generation() {
        let map = ShardMap::new(2).unwrap();
        let mut merge = ShardMerge::new(map);
        merge
            .apply_record(1, WalRecord::AppendNode(node("one")))
            .unwrap();
        merge
            .apply_record(1, WalRecord::AppendNode(node("three")))
            .unwrap();
        assert_eq!(merge.generation(), 0);
        assert_eq!(merge.reset_slot(1).unwrap(), 2, "abandoned clock");
        assert_eq!(merge.generation(), 1);
        assert_eq!(merge.clocks(), vec![0, 0]);
        assert_eq!(merge.materialize().graph.node_count(), 0);
        // After the reset the slot re-ingests from scratch — a snapshot
        // that would have been "stale" against the abandoned clock now
        // bootstraps normally.
        let store = Store::new_partitioned(&["Public"], &[], map.partition(1).unwrap()).unwrap();
        let public = store.predicate("Public").unwrap();
        store.append_node("one", NodeKind::Data, Features::new(), public);
        let data = codec::decode(&store.to_bytes()).unwrap();
        merge.ingest_snapshot(1, &data).unwrap();
        assert_eq!(merge.clocks(), vec![0, 1]);
        assert!(matches!(
            merge.reset_slot(9),
            Err(StoreError::ShardMismatch { slot: 9, .. })
        ));
        assert_eq!(merge.generation(), 1, "failed reset does not bump");
    }

    #[test]
    fn frames_apply_through_the_merge() {
        let map = ShardMap::new(2).unwrap();
        let mut merge = ShardMerge::new(map);
        let mut frames = Vec::new();
        frames.extend(codec::encode_frame(&WalRecord::AppendNode(node("one"))));
        frames.extend(codec::encode_frame(&WalRecord::AppendNode(node("three"))));
        merge.apply_frames(1, 0, &frames).unwrap();
        assert_eq!(merge.clocks(), vec![0, 2]);
        // Re-delivery is idempotent; a gap is typed.
        merge.apply_frames(1, 0, &frames).unwrap();
        assert_eq!(merge.clocks(), vec![0, 2]);
        assert!(matches!(
            merge.apply_frames(1, 5, &frames),
            Err(StoreError::ReplicationGap {
                expected: 2,
                found: 5
            })
        ));
    }
}
