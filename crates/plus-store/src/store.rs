//! The provenance store: an append-only, thread-safe record log with
//! snapshot persistence and graph materialization.
//!
//! This plays the role of the PLUS prototype's storage layer in the
//! paper's Fig. 10 pipeline: **DB access** (decode a snapshot), **build
//! graph** ([`Store::materialize`]), then **protect** (hand the
//! materialization to `surrogate_core::account`).

use std::path::Path;

use parking_lot::RwLock;
use surrogate_core::graph::{Graph, NodeId};
use surrogate_core::marking::MarkingStore;
use surrogate_core::privilege::{PrivilegeId, PrivilegeLattice};
use surrogate_core::surrogate::{SurrogateCatalog, SurrogateDef};

use crate::codec::{self, SnapshotData};
use crate::error::{Result, StoreError};
use crate::record::{EdgeKind, EdgeRecord, NodeKind, NodeRecord, PolicyStatement, RecordId};

/// Everything needed to run protection over a store's contents: the graph
/// (node ids equal record indices), the lattice, and the replayed policy.
#[derive(Debug, Clone)]
pub struct Materialized {
    /// The provenance graph; `NodeId(i)` is record `RecordId(i)`.
    pub graph: Graph,
    /// The privilege lattice.
    pub lattice: PrivilegeLattice,
    /// Incidence markings replayed from the policy log.
    pub markings: MarkingStore,
    /// Surrogate catalog replayed from the policy log.
    pub catalog: SurrogateCatalog,
}

impl Materialized {
    /// Protection context over this materialization.
    pub fn context(&self) -> surrogate_core::account::ProtectionContext<'_> {
        surrogate_core::account::ProtectionContext::new(
            &self.graph,
            &self.lattice,
            &self.markings,
            &self.catalog,
        )
    }
}

#[derive(Debug)]
struct Inner {
    lattice: PrivilegeLattice,
    lattice_names: Vec<String>,
    dominance: Vec<(PrivilegeId, PrivilegeId)>,
    nodes: Vec<NodeRecord>,
    edges: Vec<EdgeRecord>,
    edge_set: std::collections::HashSet<(RecordId, RecordId)>,
    policy: Vec<PolicyStatement>,
    clock: u64,
}

/// Thread-safe provenance store.
#[derive(Debug)]
pub struct Store {
    inner: RwLock<Inner>,
}

impl Store {
    /// Creates an empty store over a lattice built from the given
    /// declarations (`names[0]` need not be the bottom; the lattice
    /// validates that one exists).
    pub fn new(names: &[&str], dominance: &[(usize, usize)]) -> Result<Self> {
        let mut builder = PrivilegeLattice::builder();
        let mut ids = Vec::with_capacity(names.len());
        for name in names {
            ids.push(builder.add(*name)?);
        }
        let mut pairs = Vec::with_capacity(dominance.len());
        for &(hi, lo) in dominance {
            builder.declare_dominates(ids[hi], ids[lo]);
            pairs.push((ids[hi], ids[lo]));
        }
        let lattice = builder.finish()?;
        Ok(Self {
            inner: RwLock::new(Inner {
                lattice,
                lattice_names: names.iter().map(|s| s.to_string()).collect(),
                dominance: pairs,
                nodes: Vec::new(),
                edges: Vec::new(),
                edge_set: std::collections::HashSet::new(),
                policy: Vec::new(),
                clock: 0,
            }),
        })
    }

    /// A store with only the `Public` predicate.
    pub fn public_only() -> Self {
        Self::new(&["Public"], &[]).expect("single predicate is valid")
    }

    /// Predicate id by nickname.
    pub fn predicate(&self, name: &str) -> Option<PrivilegeId> {
        self.inner.read().lattice.by_name(name)
    }

    /// Appends a node record, assigning its logical timestamp.
    pub fn append_node(
        &self,
        label: impl Into<String>,
        kind: NodeKind,
        features: surrogate_core::feature::Features,
        lowest: PrivilegeId,
    ) -> RecordId {
        let mut inner = self.inner.write();
        let id = RecordId(inner.nodes.len() as u32);
        let created_at = inner.clock;
        inner.clock += 1;
        inner.nodes.push(NodeRecord {
            label: label.into(),
            kind,
            features,
            lowest,
            created_at,
        });
        id
    }

    /// Appends an edge record after validating endpoints and uniqueness.
    pub fn append_edge(&self, from: RecordId, to: RecordId, kind: EdgeKind) -> Result<()> {
        let mut inner = self.inner.write();
        let n = inner.nodes.len();
        for id in [from, to] {
            if id.index() >= n {
                return Err(StoreError::UnknownRecord(id));
            }
        }
        if from == to {
            return Err(StoreError::Graph(surrogate_core::error::Error::SelfLoop(
                NodeId(from.0),
            )));
        }
        if !inner.edge_set.insert((from, to)) {
            return Err(StoreError::Graph(
                surrogate_core::error::Error::DuplicateEdge {
                    from: NodeId(from.0),
                    to: NodeId(to.0),
                },
            ));
        }
        inner.clock += 1;
        inner.edges.push(EdgeRecord { from, to, kind });
        Ok(())
    }

    /// Appends a policy statement after validating its references.
    pub fn apply_policy(&self, statement: PolicyStatement) -> Result<()> {
        let mut inner = self.inner.write();
        let n = inner.nodes.len();
        let check = |id: RecordId| {
            if id.index() >= n {
                Err(StoreError::UnknownRecord(id))
            } else {
                Ok(())
            }
        };
        match &statement {
            PolicyStatement::MarkIncidence { node, from, to, .. } => {
                check(*node)?;
                check(*from)?;
                check(*to)?;
            }
            PolicyStatement::MarkNode { node, .. } => check(*node)?,
            PolicyStatement::AddSurrogate { node, .. } => check(*node)?,
        }
        inner.clock += 1;
        inner.policy.push(statement);
        Ok(())
    }

    /// Number of node records.
    pub fn node_count(&self) -> usize {
        self.inner.read().nodes.len()
    }

    /// Number of edge records.
    pub fn edge_count(&self) -> usize {
        self.inner.read().edges.len()
    }

    /// Number of policy statements.
    pub fn policy_count(&self) -> usize {
        self.inner.read().policy.len()
    }

    /// The store's logical clock (total appends).
    pub fn clock(&self) -> u64 {
        self.inner.read().clock
    }

    /// The store's version — an alias of the logical clock, read by the
    /// serving layer as its **epoch** source. Strictly monotone: every
    /// `append_*` / `apply_policy` bumps it by exactly one.
    pub fn version(&self) -> u64 {
        self.clock()
    }

    /// [`materialize`](Self::materialize) plus the version the
    /// materialization corresponds to, read under a single lock
    /// acquisition so the pair is consistent even while writers race.
    pub fn materialize_versioned(&self) -> (u64, Materialized) {
        let inner = self.inner.read();
        (inner.clock, Self::materialize_inner(&inner))
    }

    /// A copy of node record `id`.
    pub fn node(&self, id: RecordId) -> Option<NodeRecord> {
        self.inner.read().nodes.get(id.index()).cloned()
    }

    /// A copy of all edge records in append order. Edge kinds live only at
    /// the record level (the materialized graph is untyped), so
    /// kind-filtered lineage walks read them from here.
    pub fn edges(&self) -> Vec<EdgeRecord> {
        self.inner.read().edges.clone()
    }

    /// Builds the graph, markings, and catalog from the record log — the
    /// paper's "build graph" stage.
    pub fn materialize(&self) -> Materialized {
        Self::materialize_inner(&self.inner.read())
    }

    fn materialize_inner(inner: &Inner) -> Materialized {
        let mut graph = Graph::with_capacity(inner.nodes.len(), inner.edges.len());
        for record in &inner.nodes {
            graph.add_node_with_features(
                record.label.clone(),
                record.features.clone(),
                record.lowest,
            );
        }
        for edge in &inner.edges {
            graph
                .add_edge(NodeId(edge.from.0), NodeId(edge.to.0))
                .expect("store validated edges on append");
        }

        let mut markings = MarkingStore::new();
        let mut catalog = SurrogateCatalog::new();
        for statement in &inner.policy {
            match statement {
                PolicyStatement::MarkIncidence {
                    node,
                    from,
                    to,
                    predicate,
                    marking,
                } => {
                    let edge = (NodeId(from.0), NodeId(to.0));
                    match predicate {
                        Some(p) => markings.set(NodeId(node.0), edge, *p, *marking),
                        None => markings.set_all_predicates(NodeId(node.0), edge, *marking),
                    }
                }
                PolicyStatement::MarkNode {
                    node,
                    predicate,
                    marking,
                } => match predicate {
                    Some(p) => markings.set_node(NodeId(node.0), *p, *marking),
                    None => markings.set_node_all_predicates(NodeId(node.0), *marking),
                },
                PolicyStatement::AddSurrogate {
                    node,
                    label,
                    features,
                    lowest,
                    info_score,
                } => catalog.add(
                    NodeId(node.0),
                    SurrogateDef {
                        label: label.clone(),
                        features: features.clone(),
                        lowest: *lowest,
                        info_score: *info_score,
                    },
                ),
            }
        }

        Materialized {
            graph,
            lattice: inner.lattice.clone(),
            markings,
            catalog,
        }
    }

    /// Serializes the store to snapshot bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let inner = self.inner.read();
        codec::encode(&SnapshotData {
            lattice_names: inner.lattice_names.clone(),
            dominance: inner.dominance.clone(),
            nodes: inner.nodes.clone(),
            edges: inner.edges.clone(),
            policy: inner.policy.clone(),
            clock: inner.clock,
        })
    }

    /// Rebuilds a store from snapshot bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let data = codec::decode(bytes)?;
        let mut builder = PrivilegeLattice::builder();
        let mut ids = Vec::with_capacity(data.lattice_names.len());
        for name in &data.lattice_names {
            ids.push(builder.add(name.clone())?);
        }
        for &(hi, lo) in &data.dominance {
            builder.declare_dominates(ids[hi.0 as usize], ids[lo.0 as usize]);
        }
        let lattice = builder.finish()?;
        let edge_set = data.edges.iter().map(|e| (e.from, e.to)).collect();
        Ok(Self {
            inner: RwLock::new(Inner {
                lattice,
                lattice_names: data.lattice_names,
                dominance: data.dominance,
                nodes: data.nodes,
                edges: data.edges,
                edge_set,
                policy: data.policy,
                clock: data.clock,
            }),
        })
    }

    /// Persists a snapshot to disk — the paper's "DB" write path.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads a snapshot from disk — the paper's "DB access" stage.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surrogate_core::feature::Features;
    use surrogate_core::marking::Marking;

    fn sample_store() -> (Store, RecordId, RecordId, RecordId) {
        let store = Store::new(&["Public", "High"], &[(1, 0)]).unwrap();
        let high = store.predicate("High").unwrap();
        let public = store.predicate("Public").unwrap();
        let a = store.append_node("input", NodeKind::Data, Features::new(), public);
        let p = store.append_node("analysis", NodeKind::Process, Features::new(), high);
        let b = store.append_node("output", NodeKind::Data, Features::new(), public);
        store.append_edge(a, p, EdgeKind::InputTo).unwrap();
        store.append_edge(p, b, EdgeKind::GeneratedBy).unwrap();
        store
            .apply_policy(PolicyStatement::MarkNode {
                node: p,
                predicate: Some(public),
                marking: Marking::Surrogate,
            })
            .unwrap();
        store
            .apply_policy(PolicyStatement::AddSurrogate {
                node: p,
                label: "a process".into(),
                features: Features::new(),
                lowest: public,
                info_score: 0.2,
            })
            .unwrap();
        (store, a, p, b)
    }

    #[test]
    fn append_and_counts() {
        let (store, ..) = sample_store();
        assert_eq!(store.node_count(), 3);
        assert_eq!(store.edge_count(), 2);
        assert_eq!(store.policy_count(), 2);
        assert_eq!(store.clock(), 7);
    }

    #[test]
    fn timestamps_are_monotone() {
        let (store, a, _, b) = sample_store();
        let ta = store.node(a).unwrap().created_at;
        let tb = store.node(b).unwrap().created_at;
        assert!(ta < tb);
    }

    #[test]
    fn edge_validation() {
        let (store, a, ..) = sample_store();
        assert!(matches!(
            store.append_edge(a, RecordId(99), EdgeKind::Related),
            Err(StoreError::UnknownRecord(_))
        ));
        assert!(matches!(
            store.append_edge(a, a, EdgeKind::Related),
            Err(StoreError::Graph(_))
        ));
        let p = RecordId(1);
        assert!(matches!(
            store.append_edge(a, p, EdgeKind::Related),
            Err(StoreError::Graph(
                surrogate_core::error::Error::DuplicateEdge { .. }
            ))
        ));
    }

    #[test]
    fn policy_validation() {
        let (store, ..) = sample_store();
        assert!(matches!(
            store.apply_policy(PolicyStatement::MarkNode {
                node: RecordId(42),
                predicate: None,
                marking: Marking::Hide,
            }),
            Err(StoreError::UnknownRecord(_))
        ));
    }

    #[test]
    fn materialize_replays_policy() {
        let (store, a, p, b) = sample_store();
        let m = store.materialize();
        assert_eq!(m.graph.node_count(), 3);
        assert_eq!(m.graph.edge_count(), 2);
        let public = m.lattice.by_name("Public").unwrap();
        assert_eq!(
            m.markings
                .mark(NodeId(p.0), (NodeId(a.0), NodeId(p.0)), public),
            Marking::Surrogate
        );
        assert_eq!(m.catalog.for_node(NodeId(p.0)).len(), 1);
        // End-to-end: protect the materialization for Public.
        let account = surrogate_core::account::generate_for_set(&m.context(), &[public]).unwrap();
        let a2 = account.account_node(NodeId(a.0)).unwrap();
        let b2 = account.account_node(NodeId(b.0)).unwrap();
        assert!(account.graph().has_edge(a2, b2), "surrogate edge a→b");
    }

    #[test]
    fn snapshot_roundtrip_in_memory() {
        let (store, ..) = sample_store();
        let bytes = store.to_bytes();
        let restored = Store::from_bytes(&bytes).unwrap();
        assert_eq!(restored.node_count(), store.node_count());
        assert_eq!(restored.edge_count(), store.edge_count());
        assert_eq!(restored.policy_count(), store.policy_count());
        assert_eq!(restored.clock(), store.clock());
        assert_eq!(restored.to_bytes(), bytes, "stable re-encoding");
    }

    #[test]
    fn snapshot_roundtrip_on_disk() {
        let (store, ..) = sample_store();
        let path =
            std::env::temp_dir().join(format!("plus-store-test-{}.snapshot", std::process::id()));
        store.save(&path).unwrap();
        let restored = Store::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.node_count(), 3);
        assert_eq!(restored.to_bytes(), store.to_bytes());
    }

    #[test]
    fn concurrent_appends_are_safe() {
        let store = std::sync::Arc::new(Store::public_only());
        let public = store.predicate("Public").unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store.append_node(
                        format!("n-{t}-{i}"),
                        NodeKind::Data,
                        Features::new(),
                        public,
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.node_count(), 400);
        assert_eq!(store.clock(), 400);
    }
}
