//! The provenance store: an append-only, thread-safe record log with
//! snapshot persistence, graph materialization, and (optionally) a
//! segmented write-ahead log for crash-safe durability.
//!
//! This plays the role of the PLUS prototype's storage layer in the
//! paper's Fig. 10 pipeline: **DB access** (decode a snapshot), **build
//! graph** ([`Store::materialize`]), then **protect** (hand the
//! materialization to `surrogate_core::account`).
//!
//! A store comes in two flavors:
//!
//! * **In-memory** ([`Store::new`], [`Store::load`], …): durability is
//!   whole-snapshot [`save`](Store::save)/[`load`](Store::load) — fine
//!   for experiments, but every append since the last save is lost on a
//!   crash.
//! * **Durable** ([`Store::create_durable`], [`Store::open`]): every
//!   `append_node` / `append_edge` / `apply_policy` writes a checksummed
//!   frame to the write-ahead log *before* mutating in-memory state, so
//!   [`Store::open`] recovers every acknowledged mutation — the newest
//!   valid snapshot plus a replay of the log tail, truncated at the
//!   first torn or corrupt frame. [`Store::checkpoint`] folds the log
//!   into a fresh snapshot and prunes superseded files. See the
//!   [`crate::wal`] module docs for the on-disk layout and
//!   protocol.

use std::path::{Path, PathBuf};

use parking_lot::RwLock;
use surrogate_core::graph::{Graph, NodeId};
use surrogate_core::marking::MarkingStore;
use surrogate_core::privilege::{PrivilegeId, PrivilegeLattice};
use surrogate_core::shard::Partition;
use surrogate_core::surrogate::{SurrogateCatalog, SurrogateDef};

use crate::codec::{self, SnapshotData, WalRecord};
use crate::error::{Result, StoreError};
use crate::record::{EdgeKind, EdgeRecord, NodeKind, NodeRecord, PolicyStatement, RecordId};
use crate::wal::{self, DurabilityOptions, RecoveryReport, Wal, WalIo};

/// Everything needed to run protection over a store's contents: the graph
/// (node ids equal record indices), the lattice, and the replayed policy.
#[derive(Debug, Clone)]
pub struct Materialized {
    /// The provenance graph; `NodeId(i)` is record `RecordId(i)`.
    pub graph: Graph,
    /// The privilege lattice.
    pub lattice: PrivilegeLattice,
    /// Incidence markings replayed from the policy log.
    pub markings: MarkingStore,
    /// Surrogate catalog replayed from the policy log.
    pub catalog: SurrogateCatalog,
}

impl Materialized {
    /// Protection context over this materialization.
    pub fn context(&self) -> surrogate_core::account::ProtectionContext<'_> {
        surrogate_core::account::ProtectionContext::new(
            &self.graph,
            &self.lattice,
            &self.markings,
            &self.catalog,
        )
    }
}

#[derive(Debug)]
struct Inner {
    lattice: PrivilegeLattice,
    lattice_names: Vec<String>,
    dominance: Vec<(PrivilegeId, PrivilegeId)>,
    nodes: Vec<NodeRecord>,
    edges: Vec<EdgeRecord>,
    edge_set: std::collections::HashSet<(RecordId, RecordId)>,
    policy: Vec<PolicyStatement>,
    clock: u64,
    /// The replication fencing term this store has observed — the
    /// highest promotion generation. 0 until a promotion happens
    /// anywhere in the deployment. Durable stores persist it in the
    /// [`wal::TERM_FILE`] beside the segments.
    term: u64,
    /// The write-ahead log, when this store is durable. Living inside the
    /// write lock, log order always equals clock order.
    wal: Option<Wal>,
    /// The keyspace slice this store owns when it is one shard of a
    /// partitioned deployment. `None` for ordinary stores. A partitioned
    /// store assigns **global** node ids (`local_position * count +
    /// index`), stores only its own residue class in `nodes`, and
    /// accepts foreign ids in edges and policy without validating their
    /// existence — the owning shard is the authority on those.
    partition: Option<Partition>,
}

/// Thread-safe provenance store.
#[derive(Debug)]
pub struct Store {
    inner: RwLock<Inner>,
}

impl Store {
    /// Creates an empty store over a lattice built from the given
    /// declarations (`names[0]` need not be the bottom; the lattice
    /// validates that one exists).
    pub fn new(names: &[&str], dominance: &[(usize, usize)]) -> Result<Self> {
        let mut builder = PrivilegeLattice::builder();
        let mut ids = Vec::with_capacity(names.len());
        for name in names {
            ids.push(builder.add(*name)?);
        }
        let mut pairs = Vec::with_capacity(dominance.len());
        for &(hi, lo) in dominance {
            builder.declare_dominates(ids[hi], ids[lo]);
            pairs.push((ids[hi], ids[lo]));
        }
        let lattice = builder.finish()?;
        Ok(Self {
            inner: RwLock::new(Inner {
                lattice,
                lattice_names: names.iter().map(|s| s.to_string()).collect(),
                dominance: pairs,
                nodes: Vec::new(),
                edges: Vec::new(),
                edge_set: std::collections::HashSet::new(),
                policy: Vec::new(),
                clock: 0,
                term: 0,
                wal: None,
                partition: None,
            }),
        })
    }

    /// An empty **partitioned** store: shard `partition.index()` of
    /// `partition.count()`, owning the global node ids congruent to its
    /// index. Appends assign global ids from the owned residue class;
    /// edges and policy may reference foreign ids, but their *routing*
    /// fields (`from` for edges, the target `node` for policy) must be
    /// owned — a misrouted write is refused with
    /// [`StoreError::WrongShard`].
    pub fn new_partitioned(
        names: &[&str],
        dominance: &[(usize, usize)],
        partition: Partition,
    ) -> Result<Self> {
        let store = Self::new(names, dominance)?;
        store.inner.write().partition = Some(partition);
        Ok(store)
    }

    /// A store with only the `Public` predicate.
    pub fn public_only() -> Self {
        Self::new(&["Public"], &[]).expect("single predicate is valid")
    }

    /// Predicate id by nickname.
    pub fn predicate(&self, name: &str) -> Option<PrivilegeId> {
        self.inner.read().lattice.by_name(name)
    }

    /// Number of predicates in the lattice.
    pub fn predicate_count(&self) -> usize {
        self.inner.read().lattice_names.len()
    }

    /// Appends a node record, assigning its logical timestamp.
    ///
    /// # Panics
    /// On a durable store, panics if the write-ahead-log write fails; use
    /// [`try_append_node`](Self::try_append_node) to handle I/O errors.
    pub fn append_node(
        &self,
        label: impl Into<String>,
        kind: NodeKind,
        features: surrogate_core::feature::Features,
        lowest: PrivilegeId,
    ) -> RecordId {
        self.try_append_node(label, kind, features, lowest)
            .expect("write-ahead log append failed")
    }

    /// Appends a node record, assigning its logical timestamp. On a
    /// durable store the record is logged (and, with fsync on, synced)
    /// before it is applied; an `Err` means nothing was appended.
    pub fn try_append_node(
        &self,
        label: impl Into<String>,
        kind: NodeKind,
        features: surrogate_core::feature::Features,
        lowest: PrivilegeId,
    ) -> Result<RecordId> {
        let mut inner = self.inner.write();
        // Bounds-check before logging: an out-of-range predicate would be
        // acknowledged live but rejected (as corruption) at replay,
        // truncating every later acknowledged write.
        Self::check_predicate(&inner, lowest)?;
        let record = NodeRecord {
            label: label.into(),
            kind,
            features,
            lowest,
            created_at: inner.clock,
        };
        let record = Self::log(&mut inner, WalRecord::AppendNode(record))?;
        let WalRecord::AppendNode(record) = record else {
            unreachable!()
        };
        let pos = inner.nodes.len() as u32;
        let id = RecordId(match inner.partition {
            Some(p) => p.global(pos),
            None => pos,
        });
        inner.clock += 1;
        inner.nodes.push(record);
        Ok(id)
    }

    /// Appends an edge record after validating endpoints and uniqueness.
    ///
    /// On a partitioned store `from` must be owned by this shard (edges
    /// route by their source); `to` may be a foreign id, accepted
    /// unvalidated.
    pub fn append_edge(&self, from: RecordId, to: RecordId, kind: EdgeKind) -> Result<()> {
        let mut inner = self.inner.write();
        if let Some(p) = inner.partition {
            if !p.owns(from.0) {
                return Err(StoreError::WrongShard {
                    id: from,
                    owner: p.map().shard_of(from.0),
                });
            }
        }
        Self::check_record(&inner, from)?;
        Self::check_record(&inner, to)?;
        if from == to {
            return Err(StoreError::Graph(surrogate_core::error::Error::SelfLoop(
                NodeId(from.0),
            )));
        }
        if inner.edge_set.contains(&(from, to)) {
            return Err(StoreError::Graph(
                surrogate_core::error::Error::DuplicateEdge {
                    from: NodeId(from.0),
                    to: NodeId(to.0),
                },
            ));
        }
        Self::log(
            &mut inner,
            WalRecord::AppendEdge(EdgeRecord { from, to, kind }),
        )?;
        inner.edge_set.insert((from, to));
        inner.clock += 1;
        inner.edges.push(EdgeRecord { from, to, kind });
        Ok(())
    }

    /// Appends a policy statement after validating its references.
    ///
    /// On a partitioned store the statement's target `node` must be
    /// owned by this shard (policy routes by the node it governs);
    /// incidental `from`/`to` references may be foreign.
    pub fn apply_policy(&self, statement: PolicyStatement) -> Result<()> {
        let mut inner = self.inner.write();
        if let Some(p) = inner.partition {
            let target = match &statement {
                PolicyStatement::MarkIncidence { node, .. }
                | PolicyStatement::MarkNode { node, .. }
                | PolicyStatement::AddSurrogate { node, .. } => *node,
            };
            if !p.owns(target.0) {
                return Err(StoreError::WrongShard {
                    id: target,
                    owner: p.map().shard_of(target.0),
                });
            }
        }
        match &statement {
            PolicyStatement::MarkIncidence { node, from, to, .. } => {
                Self::check_record(&inner, *node)?;
                Self::check_record(&inner, *from)?;
                Self::check_record(&inner, *to)?;
            }
            PolicyStatement::MarkNode { node, .. } => Self::check_record(&inner, *node)?,
            PolicyStatement::AddSurrogate { node, .. } => Self::check_record(&inner, *node)?,
        }
        if let (_, Some(predicate)) = codec::policy_refs(&statement) {
            Self::check_predicate(&inner, predicate)?;
        }
        let statement = match Self::log(&mut inner, WalRecord::ApplyPolicy(statement))? {
            WalRecord::ApplyPolicy(statement) => statement,
            _ => unreachable!(),
        };
        inner.clock += 1;
        inner.policy.push(statement);
        Ok(())
    }

    /// Rejects record ids that cannot exist here: out-of-range on an
    /// ordinary store; on a partitioned store, owned ids beyond the
    /// local list (foreign ids pass — the owning shard validates them).
    fn check_record(inner: &Inner, id: RecordId) -> Result<()> {
        let n = inner.nodes.len();
        let known = match inner.partition {
            Some(p) if !p.owns(id.0) => true,
            Some(p) => (p.local(id.0) as usize) < n,
            None => id.index() < n,
        };
        if known {
            Ok(())
        } else {
            Err(StoreError::UnknownRecord(id))
        }
    }

    /// Rejects predicate ids outside the lattice — mirroring the bounds
    /// check `codec::decode` applies, so nothing unreplayable is ever
    /// logged.
    fn check_predicate(inner: &Inner, predicate: PrivilegeId) -> Result<()> {
        if predicate.0 as usize >= inner.lattice_names.len() {
            return Err(StoreError::UnknownPredicate(predicate.0));
        }
        Ok(())
    }

    /// Writes the mutation's WAL frame on durable stores (a no-op on
    /// in-memory ones), handing the record back on success. Called with
    /// the write lock held, *before* the in-memory mutation.
    fn log(inner: &mut Inner, record: WalRecord) -> Result<WalRecord> {
        let clock = inner.clock;
        if let Some(wal) = inner.wal.as_mut() {
            wal.append(&record, clock)?;
        }
        Ok(record)
    }

    /// Number of node records.
    pub fn node_count(&self) -> usize {
        self.inner.read().nodes.len()
    }

    /// Number of edge records.
    pub fn edge_count(&self) -> usize {
        self.inner.read().edges.len()
    }

    /// Number of policy statements.
    pub fn policy_count(&self) -> usize {
        self.inner.read().policy.len()
    }

    /// The store's logical clock (total appends).
    pub fn clock(&self) -> u64 {
        self.inner.read().clock
    }

    /// The store's version — an alias of the logical clock, read by the
    /// serving layer as its **epoch** source. Strictly monotone: every
    /// `append_*` / `apply_policy` bumps it by exactly one.
    pub fn version(&self) -> u64 {
        self.clock()
    }

    /// [`materialize`](Self::materialize) plus the version the
    /// materialization corresponds to, read under a single lock
    /// acquisition so the pair is consistent even while writers race.
    pub fn materialize_versioned(&self) -> (u64, Materialized) {
        let inner = self.inner.read();
        (inner.clock, Self::materialize_inner(&inner))
    }

    /// The keyspace slice this store owns, when partitioned.
    pub fn partition(&self) -> Option<Partition> {
        self.inner.read().partition
    }

    /// A copy of node record `id` (a global id on partitioned stores;
    /// foreign ids return `None` — ask the owning shard).
    pub fn node(&self, id: RecordId) -> Option<NodeRecord> {
        let inner = self.inner.read();
        let pos = match inner.partition {
            Some(p) if !p.owns(id.0) => return None,
            Some(p) => p.local(id.0) as usize,
            None => id.index(),
        };
        inner.nodes.get(pos).cloned()
    }

    /// A copy of all edge records in append order. Edge kinds live only at
    /// the record level (the materialized graph is untyped), so
    /// kind-filtered lineage walks read them from here.
    pub fn edges(&self) -> Vec<EdgeRecord> {
        self.inner.read().edges.clone()
    }

    /// Builds the graph, markings, and catalog from the record log — the
    /// paper's "build graph" stage.
    pub fn materialize(&self) -> Materialized {
        Self::materialize_inner(&self.inner.read())
    }

    fn materialize_inner(inner: &Inner) -> Materialized {
        let mut graph = Graph::with_capacity(inner.nodes.len(), inner.edges.len());
        match inner.partition {
            None => {
                for record in &inner.nodes {
                    graph.add_node_with_features(
                        record.label.clone(),
                        record.features.clone(),
                        record.lowest,
                    );
                }
                for edge in &inner.edges {
                    graph
                        .add_edge(NodeId(edge.from.0), NodeId(edge.to.0))
                        .expect("store validated edges on append");
                }
            }
            Some(p) => {
                // Graph node ids must equal *global* record ids, so the
                // owned residue class is laid out at its global
                // positions with inert placeholders at foreign ids. The
                // graph covers every id any local record references;
                // edges to ids beyond the placeholder bound (foreign
                // nodes nothing pins) are dropped — a shard's partial
                // view only answers point reads, and cross-shard
                // traversal goes through the gather merge.
                let mut bound = match inner.nodes.len() as u32 {
                    0 => 0,
                    n => p.global(n - 1).saturating_add(1),
                };
                for edge in &inner.edges {
                    bound = bound.max(edge.from.0.saturating_add(1));
                    bound = bound.max(edge.to.0.saturating_add(1));
                }
                let bottom = inner.lattice.public();
                for g in 0..bound {
                    // An owned id beyond the local list can be pulled
                    // under the bound by an edge to a *higher* foreign
                    // id; it gets a placeholder like any foreign id.
                    let local = inner.nodes.get(p.local(g) as usize).filter(|_| p.owns(g));
                    match local {
                        Some(record) => graph.add_node_with_features(
                            record.label.clone(),
                            record.features.clone(),
                            record.lowest,
                        ),
                        None => graph.add_node_with_features(
                            String::new(),
                            surrogate_core::feature::Features::new(),
                            bottom,
                        ),
                    };
                }
                for edge in &inner.edges {
                    graph
                        .add_edge(NodeId(edge.from.0), NodeId(edge.to.0))
                        .expect("edge endpoints are covered by the placeholder bound");
                }
            }
        }

        let mut markings = MarkingStore::new();
        let mut catalog = SurrogateCatalog::new();
        for statement in &inner.policy {
            match statement {
                PolicyStatement::MarkIncidence {
                    node,
                    from,
                    to,
                    predicate,
                    marking,
                } => {
                    let edge = (NodeId(from.0), NodeId(to.0));
                    match predicate {
                        Some(p) => markings.set(NodeId(node.0), edge, *p, *marking),
                        None => markings.set_all_predicates(NodeId(node.0), edge, *marking),
                    }
                }
                PolicyStatement::MarkNode {
                    node,
                    predicate,
                    marking,
                } => match predicate {
                    Some(p) => markings.set_node(NodeId(node.0), *p, *marking),
                    None => markings.set_node_all_predicates(NodeId(node.0), *marking),
                },
                PolicyStatement::AddSurrogate {
                    node,
                    label,
                    features,
                    lowest,
                    info_score,
                } => catalog.add(
                    NodeId(node.0),
                    SurrogateDef {
                        label: label.clone(),
                        features: features.clone(),
                        lowest: *lowest,
                        info_score: *info_score,
                    },
                ),
            }
        }

        Materialized {
            graph,
            lattice: inner.lattice.clone(),
            markings,
            catalog,
        }
    }

    fn snapshot_data(inner: &Inner) -> SnapshotData {
        SnapshotData {
            lattice_names: inner.lattice_names.clone(),
            dominance: inner.dominance.clone(),
            nodes: inner.nodes.clone(),
            edges: inner.edges.clone(),
            policy: inner.policy.clone(),
            clock: inner.clock,
            partition: inner.partition,
        }
    }

    /// Serializes the store to snapshot bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        codec::encode(&Self::snapshot_data(&self.inner.read()))
    }

    /// Rebuilds an in-memory store from decoded snapshot data.
    fn from_snapshot_data(data: SnapshotData) -> Result<Self> {
        let mut builder = PrivilegeLattice::builder();
        let mut ids = Vec::with_capacity(data.lattice_names.len());
        for name in &data.lattice_names {
            ids.push(builder.add(name.clone())?);
        }
        for &(hi, lo) in &data.dominance {
            builder.declare_dominates(ids[hi.0 as usize], ids[lo.0 as usize]);
        }
        let lattice = builder.finish()?;
        let edge_set = data.edges.iter().map(|e| (e.from, e.to)).collect();
        Ok(Self {
            inner: RwLock::new(Inner {
                lattice,
                lattice_names: data.lattice_names,
                dominance: data.dominance,
                nodes: data.nodes,
                edges: data.edges,
                edge_set,
                policy: data.policy,
                clock: data.clock,
                term: 0,
                wal: None,
                partition: data.partition,
            }),
        })
    }

    /// Rebuilds a store from snapshot bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        Self::from_snapshot_data(codec::decode(bytes)?)
    }

    /// Persists a snapshot to disk — the paper's "DB" write path.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bytes()).map_err(|e| StoreError::io_at(path, e))
    }

    /// Loads a snapshot from disk — the paper's "DB access" stage.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| StoreError::io_at(path, e))?;
        Self::from_bytes(&bytes)
    }

    // -----------------------------------------------------------------------
    // Durability
    // -----------------------------------------------------------------------

    /// Creates a durable store in (empty or nonexistent) directory `dir`:
    /// an initial snapshot at clock 0 plus an open write-ahead-log
    /// segment every subsequent append is logged to.
    pub fn create_durable(
        dir: impl AsRef<Path>,
        names: &[&str],
        dominance: &[(usize, usize)],
    ) -> Result<Self> {
        Self::create_durable_with(dir, names, dominance, DurabilityOptions::default())
    }

    /// [`create_durable`](Self::create_durable) with explicit options.
    pub fn create_durable_with(
        dir: impl AsRef<Path>,
        names: &[&str],
        dominance: &[(usize, usize)],
        options: DurabilityOptions,
    ) -> Result<Self> {
        Self::create_durable_with_io(dir, names, dominance, options, Box::new(wal::DiskIo))
    }

    /// [`create_durable_with`](Self::create_durable_with) writing WAL
    /// frames through a custom [`WalIo`] — the fault-injection seam used
    /// by the crash-recovery test harness.
    pub fn create_durable_with_io(
        dir: impl AsRef<Path>,
        names: &[&str],
        dominance: &[(usize, usize)],
        options: DurabilityOptions,
        io: Box<dyn WalIo>,
    ) -> Result<Self> {
        Self::attach_new_wal(dir.as_ref(), Self::new(names, dominance)?, options, io)
    }

    /// [`create_durable_with`](Self::create_durable_with) for one shard
    /// of a partitioned deployment: the initial snapshot records the
    /// partition (snapshot version 2), so [`Store::open`] recovers the
    /// shard with its keyspace slice intact.
    pub fn create_durable_partitioned(
        dir: impl AsRef<Path>,
        names: &[&str],
        dominance: &[(usize, usize)],
        options: DurabilityOptions,
        partition: Partition,
    ) -> Result<Self> {
        Self::attach_new_wal(
            dir.as_ref(),
            Self::new_partitioned(names, dominance, partition)?,
            options,
            Box::new(wal::DiskIo),
        )
    }

    /// Seeds `dir` with `store`'s initial snapshot and attaches a fresh
    /// write-ahead-log writer — the shared tail of the `create_durable*`
    /// constructors.
    fn attach_new_wal(
        dir: &Path,
        store: Self,
        options: DurabilityOptions,
        io: Box<dyn WalIo>,
    ) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io_at(dir, e))?;
        wal::ensure_vacant(dir)?;
        wal::write_atomic(&wal::snapshot_path(dir, 0), &store.to_bytes())?;
        let writer = Wal::open(dir, options, io, None, 0)?;
        let term = wal::read_term(dir)?;
        let mut inner = store.inner.write();
        inner.wal = Some(writer);
        inner.term = term;
        drop(inner);
        Ok(store)
    }

    /// Opens (recovers) the durable store under `dir`: the newest valid
    /// snapshot plus a replay of the write-ahead-log tail, truncated at
    /// the first torn or corrupt frame. See the [`wal`] module docs.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(dir, DurabilityOptions::default())
    }

    /// [`open`](Self::open) with explicit options.
    pub fn open_with(dir: impl AsRef<Path>, options: DurabilityOptions) -> Result<Self> {
        Ok(Self::open_reporting(dir, options)?.0)
    }

    /// [`open_with`](Self::open_with), additionally returning the
    /// [`RecoveryReport`] describing what recovery found and repaired —
    /// the substrate of `spgraph recover --verify`.
    pub fn open_reporting(
        dir: impl AsRef<Path>,
        options: DurabilityOptions,
    ) -> Result<(Self, RecoveryReport)> {
        let dir = dir.as_ref();
        let (store, resume, report) = wal::recover(dir, true, Self::from_snapshot_data)?;
        let clock = store.clock();
        let writer = Wal::open(dir, options, Box::new(wal::DiskIo), resume, clock)?;
        let term = wal::read_term(dir)?;
        let mut inner = store.inner.write();
        inner.wal = Some(writer);
        inner.term = term;
        drop(inner);
        Ok((store, report))
    }

    /// Recovers the durable state under `dir` **without modifying the
    /// directory**: no truncation, no pruning, no write-ahead-log writer
    /// attached (the returned store is in-memory). Safe to use alongside
    /// a live writer — the substrate of the CLI's read commands.
    pub fn open_read_only(dir: impl AsRef<Path>) -> Result<Self> {
        let (store, _, _) = wal::recover(dir.as_ref(), false, Self::from_snapshot_data)?;
        store.inner.write().term = wal::read_term(dir.as_ref())?;
        Ok(store)
    }

    /// `true` when appends are logged to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.inner.read().wal.is_some()
    }

    /// The durable store's directory, when [`is_durable`](Self::is_durable).
    pub fn durable_dir(&self) -> Option<PathBuf> {
        self.inner
            .read()
            .wal
            .as_ref()
            .map(|w| w.dir().to_path_buf())
    }

    /// Seeds directory `dir` with a durable copy of this store's current
    /// state: a single snapshot at the current clock, ready for
    /// [`Store::open`]. The receiving directory must not already hold a
    /// durable store.
    pub fn save_durable(&self, dir: impl AsRef<Path>) -> Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io_at(dir, e))?;
        wal::ensure_vacant(dir)?;
        let inner = self.inner.read();
        let bytes = codec::encode(&Self::snapshot_data(&inner));
        wal::write_atomic(&wal::snapshot_path(dir, inner.clock), &bytes)?;
        if inner.term > 0 {
            wal::write_term(dir, inner.term)?;
        }
        Ok(())
    }

    /// Writes a snapshot of the current state, rotates to a fresh
    /// write-ahead-log segment, and prunes the segments and snapshots the
    /// new snapshot supersedes. Errors with [`StoreError::NotDurable`] on
    /// an in-memory store.
    pub fn checkpoint(&self) -> Result<CheckpointStats> {
        // Under the write lock: capture a consistent copy of the state
        // and rotate so the active segment starts exactly at the
        // checkpoint clock. Encoding and the fsync'd snapshot write
        // happen *outside* the lock — appends racing into the fresh
        // segment carry clocks >= the captured one, and recovery without
        // the new snapshot just replays the still-present old segments.
        let (data, dir, clock) = {
            let mut inner = self.inner.write();
            if inner.wal.is_none() {
                return Err(StoreError::NotDurable);
            }
            let clock = inner.clock;
            let data = Self::snapshot_data(&inner);
            let wal = inner.wal.as_mut().expect("checked above");
            let dir = wal.dir().to_path_buf();
            wal.rotate(clock)?;
            (data, dir, clock)
        };
        let bytes = codec::encode(&data);
        wal::write_atomic(&wal::snapshot_path(&dir, clock), &bytes)?;
        // The snapshot is durable; everything it covers can go. Tolerate
        // already-gone files — a concurrent checkpoint may prune too.
        let mut pruned_segments = 0;
        for (start, path) in wal::list_segments(&dir)? {
            if start < clock && std::fs::remove_file(&path).is_ok() {
                pruned_segments += 1;
            }
        }
        let mut pruned_snapshots = 0;
        for (snap_clock, path) in wal::list_snapshots(&dir)? {
            if snap_clock < clock && std::fs::remove_file(&path).is_ok() {
                pruned_snapshots += 1;
            }
        }
        if pruned_segments + pruned_snapshots > 0 {
            // Make the removals durable alongside the new snapshot.
            let _ = wal::sync_dir(&dir);
        }
        Ok(CheckpointStats {
            clock,
            snapshot_bytes: bytes.len() as u64,
            pruned_segments,
            pruned_snapshots,
        })
    }

    // -----------------------------------------------------------------------
    // Replication
    // -----------------------------------------------------------------------

    /// The replication fencing term this store has observed: the highest
    /// promotion generation, durably recorded beside the segments on
    /// durable stores. 0 means no promotion has ever been observed.
    pub fn replication_term(&self) -> u64 {
        self.inner.read().term
    }

    /// Observes a peer's fencing term: raises (and durably records) the
    /// local term when `term` is higher, accepts an equal term, and
    /// refuses a lower one with [`StoreError::DeposedPrimary`] — the
    /// fencing check every replicated chunk passes through before any of
    /// its frames may touch this store.
    pub fn observe_replication_term(&self, term: u64) -> Result<()> {
        let mut inner = self.inner.write();
        let current = inner.term;
        if term < current {
            return Err(StoreError::DeposedPrimary { term, current });
        }
        if term > current {
            // Persist before adopting: a term observed in memory only
            // could be forgotten by a crash, letting the deposed
            // primary's frames back in on restart.
            if let Some(wal) = inner.wal.as_ref() {
                wal::write_term(wal.dir(), term)?;
            }
            inner.term = term;
        }
        Ok(())
    }

    /// Bumps the fencing term by one and durably records it — the core
    /// of a **promotion**. Every chunk this store ships afterwards
    /// carries the new term, so the deposed primary's frames (still
    /// stamped with the old term) are refused everywhere the new term
    /// has been observed. Returns the new term.
    pub fn promote_term(&self) -> Result<u64> {
        let mut inner = self.inner.write();
        let next = inner.term + 1;
        if let Some(wal) = inner.wal.as_ref() {
            wal::write_term(wal.dir(), next)?;
        }
        inner.term = next;
        Ok(next)
    }

    /// Applies one replicated WAL record at the tail of this store's
    /// history — the **replica apply path**. The record goes through the
    /// ordinary append methods, so on a durable store it is logged to
    /// this store's *own* write-ahead log first: a replica's directory
    /// recovers by exactly the rules a primary's does, and a restarted
    /// replica resumes from its local clock.
    ///
    /// `term` is the fencing term the record's chunk carried. A term
    /// below one this store has observed is refused with
    /// [`StoreError::DeposedPrimary`] before anything else — frames
    /// from a deposed primary are never applied, even when their clocks
    /// would line up. A higher term is adopted (and durably recorded)
    /// first.
    ///
    /// Validation then mirrors the recovery replay path: a node
    /// record stamped for any clock but the current one is refused with
    /// [`StoreError::ReplicationGap`] (the stream is out of order or the
    /// primary's history diverged), and semantically invalid records
    /// surface the ordinary append errors. Nothing is applied on error.
    pub fn apply_replicated(&self, record: WalRecord, term: u64) -> Result<()> {
        self.observe_replication_term(term)?;
        match record {
            WalRecord::AppendNode(node) => {
                let expected = self.clock();
                if node.created_at != expected {
                    return Err(StoreError::ReplicationGap {
                        expected,
                        found: node.created_at,
                    });
                }
                self.try_append_node(node.label, node.kind, node.features, node.lowest)
                    .map(|_| ())
            }
            WalRecord::AppendEdge(edge) => self.append_edge(edge.from, edge.to, edge.kind),
            WalRecord::ApplyPolicy(statement) => self.apply_policy(statement),
        }
    }

    /// Replaces this durable store's entire state with `snapshot` — the
    /// replica **fast-forward path**, used when the primary has
    /// checkpointed past this store's clock and the intervening frames
    /// no longer exist. The snapshot is installed on disk (older
    /// segments and snapshots are pruned, a fresh write-ahead-log
    /// segment opens at the snapshot's clock) and the in-memory state is
    /// swapped under the write lock, so concurrent readers see either
    /// the old state or the new one, never a mix, and the epoch stays
    /// monotone.
    ///
    /// A snapshot at or behind the current clock is a no-op (the local
    /// history already covers it); the current clock is returned either
    /// way. Errors with [`StoreError::NotDurable`] on an in-memory
    /// store.
    pub fn install_snapshot(&self, snapshot: &[u8]) -> Result<u64> {
        let data = codec::decode(snapshot)?;
        let mut inner = self.inner.write();
        let Some(wal) = inner.wal.as_ref() else {
            return Err(StoreError::NotDurable);
        };
        if data.clock <= inner.clock {
            return Ok(inner.clock);
        }
        let dir = wal.dir().to_path_buf();
        let options = wal.options();
        let clock = data.clock;
        wal::write_atomic(&wal::snapshot_path(&dir, clock), snapshot)?;
        // Local history is a prefix of the primary's, so everything on
        // disk predates the installed snapshot: prune it all (tolerating
        // races, as checkpoint does).
        for (_, path) in wal::list_segments(&dir)? {
            let _ = std::fs::remove_file(&path);
        }
        for (snap_clock, path) in wal::list_snapshots(&dir)? {
            if snap_clock < clock {
                let _ = std::fs::remove_file(&path);
            }
        }
        let writer = Wal::open(&dir, options, Box::new(wal::DiskIo), None, clock)?;
        let fresh = Self::from_snapshot_data(data)?;
        let mut fresh_inner = fresh.inner.into_inner();
        fresh_inner.wal = Some(writer);
        // The fencing term outlives the state swap: it fences senders,
        // not history, and the durable term file was never touched.
        fresh_inner.term = inner.term;
        *inner = fresh_inner;
        Ok(clock)
    }
}

/// What [`Store::checkpoint`] wrote and removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// The logical clock the snapshot captures.
    pub clock: u64,
    /// Size of the written snapshot.
    pub snapshot_bytes: u64,
    /// Superseded WAL segments removed.
    pub pruned_segments: usize,
    /// Superseded snapshots removed.
    pub pruned_snapshots: usize,
}

impl wal::ReplayTarget for Store {
    fn apply(&mut self, record: WalRecord) -> std::result::Result<(), String> {
        // Replay drives the ordinary append paths; `wal` is still `None`
        // while recovering, so nothing is re-logged.
        match record {
            WalRecord::AppendNode(node) => {
                if node.created_at != self.clock() {
                    return Err(format!(
                        "node record stamped {} at clock {}",
                        node.created_at,
                        self.clock()
                    ));
                }
                if self.predicate_count() <= node.lowest.0 as usize {
                    return Err(format!(
                        "node references unknown predicate {}",
                        node.lowest.0
                    ));
                }
                self.try_append_node(node.label, node.kind, node.features, node.lowest)
                    .map_err(|e| e.to_string())?;
                Ok(())
            }
            WalRecord::AppendEdge(edge) => self
                .append_edge(edge.from, edge.to, edge.kind)
                .map_err(|e| e.to_string()),
            WalRecord::ApplyPolicy(statement) => {
                let (_, predicate) = codec::policy_refs(&statement);
                if let Some(p) = predicate {
                    if self.predicate_count() <= p.0 as usize {
                        return Err(format!("policy references unknown predicate {}", p.0));
                    }
                }
                self.apply_policy(statement).map_err(|e| e.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surrogate_core::feature::Features;
    use surrogate_core::marking::Marking;

    fn sample_store() -> (Store, RecordId, RecordId, RecordId) {
        let store = Store::new(&["Public", "High"], &[(1, 0)]).unwrap();
        let high = store.predicate("High").unwrap();
        let public = store.predicate("Public").unwrap();
        let a = store.append_node("input", NodeKind::Data, Features::new(), public);
        let p = store.append_node("analysis", NodeKind::Process, Features::new(), high);
        let b = store.append_node("output", NodeKind::Data, Features::new(), public);
        store.append_edge(a, p, EdgeKind::InputTo).unwrap();
        store.append_edge(p, b, EdgeKind::GeneratedBy).unwrap();
        store
            .apply_policy(PolicyStatement::MarkNode {
                node: p,
                predicate: Some(public),
                marking: Marking::Surrogate,
            })
            .unwrap();
        store
            .apply_policy(PolicyStatement::AddSurrogate {
                node: p,
                label: "a process".into(),
                features: Features::new(),
                lowest: public,
                info_score: 0.2,
            })
            .unwrap();
        (store, a, p, b)
    }

    #[test]
    fn append_and_counts() {
        let (store, ..) = sample_store();
        assert_eq!(store.node_count(), 3);
        assert_eq!(store.edge_count(), 2);
        assert_eq!(store.policy_count(), 2);
        assert_eq!(store.clock(), 7);
    }

    #[test]
    fn timestamps_are_monotone() {
        let (store, a, _, b) = sample_store();
        let ta = store.node(a).unwrap().created_at;
        let tb = store.node(b).unwrap().created_at;
        assert!(ta < tb);
    }

    #[test]
    fn edge_validation() {
        let (store, a, ..) = sample_store();
        assert!(matches!(
            store.append_edge(a, RecordId(99), EdgeKind::Related),
            Err(StoreError::UnknownRecord(_))
        ));
        assert!(matches!(
            store.append_edge(a, a, EdgeKind::Related),
            Err(StoreError::Graph(_))
        ));
        let p = RecordId(1);
        assert!(matches!(
            store.append_edge(a, p, EdgeKind::Related),
            Err(StoreError::Graph(
                surrogate_core::error::Error::DuplicateEdge { .. }
            ))
        ));
    }

    #[test]
    fn policy_validation() {
        let (store, ..) = sample_store();
        assert!(matches!(
            store.apply_policy(PolicyStatement::MarkNode {
                node: RecordId(42),
                predicate: None,
                marking: Marking::Hide,
            }),
            Err(StoreError::UnknownRecord(_))
        ));
    }

    #[test]
    fn materialize_replays_policy() {
        let (store, a, p, b) = sample_store();
        let m = store.materialize();
        assert_eq!(m.graph.node_count(), 3);
        assert_eq!(m.graph.edge_count(), 2);
        let public = m.lattice.by_name("Public").unwrap();
        assert_eq!(
            m.markings
                .mark(NodeId(p.0), (NodeId(a.0), NodeId(p.0)), public),
            Marking::Surrogate
        );
        assert_eq!(m.catalog.for_node(NodeId(p.0)).len(), 1);
        // End-to-end: protect the materialization for Public.
        let account = surrogate_core::account::generate_for_set(&m.context(), &[public]).unwrap();
        let a2 = account.account_node(NodeId(a.0)).unwrap();
        let b2 = account.account_node(NodeId(b.0)).unwrap();
        assert!(account.graph().has_edge(a2, b2), "surrogate edge a→b");
    }

    #[test]
    fn snapshot_roundtrip_in_memory() {
        let (store, ..) = sample_store();
        let bytes = store.to_bytes();
        let restored = Store::from_bytes(&bytes).unwrap();
        assert_eq!(restored.node_count(), store.node_count());
        assert_eq!(restored.edge_count(), store.edge_count());
        assert_eq!(restored.policy_count(), store.policy_count());
        assert_eq!(restored.clock(), store.clock());
        assert_eq!(restored.to_bytes(), bytes, "stable re-encoding");
    }

    #[test]
    fn snapshot_roundtrip_on_disk() {
        let (store, ..) = sample_store();
        let path =
            std::env::temp_dir().join(format!("plus-store-test-{}.snapshot", std::process::id()));
        store.save(&path).unwrap();
        let restored = Store::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.node_count(), 3);
        assert_eq!(restored.to_bytes(), store.to_bytes());
    }

    /// Fresh temp directory for a durable-store test.
    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("plus-store-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_sample(dir: &Path) -> Store {
        let store = Store::create_durable_with(
            dir,
            &["Public", "High"],
            &[(1, 0)],
            crate::wal::DurabilityOptions {
                fsync: false,
                ..Default::default()
            },
        )
        .unwrap();
        let high = store.predicate("High").unwrap();
        let public = store.predicate("Public").unwrap();
        let a = store.append_node("input", NodeKind::Data, Features::new(), public);
        let p = store.append_node("analysis", NodeKind::Process, Features::new(), high);
        store.append_edge(a, p, EdgeKind::InputTo).unwrap();
        store
            .apply_policy(PolicyStatement::MarkNode {
                node: p,
                predicate: Some(public),
                marking: Marking::Surrogate,
            })
            .unwrap();
        store
    }

    #[test]
    fn durable_appends_recover_without_checkpoint() {
        let dir = temp_dir("recover");
        let committed = {
            let store = durable_sample(&dir);
            assert!(store.is_durable());
            assert_eq!(store.durable_dir().unwrap(), dir);
            store.to_bytes()
        };
        let (restored, report) = Store::open_reporting(&dir, Default::default()).unwrap();
        assert_eq!(restored.to_bytes(), committed, "every append recovered");
        assert_eq!(restored.clock(), 4);
        assert_eq!(report.clock, 4);
        assert_eq!(report.records_replayed, 4);
        assert!(report.truncated.is_none());
        // Recovered stores keep appending durably.
        let public = restored.predicate("Public").unwrap();
        restored.append_node("late", NodeKind::Data, Features::new(), public);
        drop(restored);
        let again = Store::open(&dir).unwrap();
        assert_eq!(again.clock(), 5);
        assert_eq!(again.node_count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_prunes_superseded_files() {
        let dir = temp_dir("checkpoint");
        let store = durable_sample(&dir);
        let stats = store.checkpoint().unwrap();
        assert_eq!(stats.clock, 4);
        assert_eq!(stats.pruned_segments, 1, "pre-checkpoint segment pruned");
        assert_eq!(stats.pruned_snapshots, 1, "clock-0 snapshot pruned");
        assert_eq!(crate::wal::list_snapshots(&dir).unwrap().len(), 1);
        assert_eq!(crate::wal::list_segments(&dir).unwrap().len(), 1);
        // Appends continue into the fresh segment and recover on top of
        // the checkpoint snapshot.
        let public = store.predicate("Public").unwrap();
        store.append_node("post", NodeKind::Data, Features::new(), public);
        let committed = store.to_bytes();
        drop(store);
        let (restored, report) = Store::open_reporting(&dir, Default::default()).unwrap();
        assert_eq!(restored.to_bytes(), committed);
        assert_eq!(
            report.snapshot.as_ref().unwrap().1,
            4,
            "recovered from checkpoint"
        );
        assert_eq!(
            report.records_replayed, 1,
            "only the post-checkpoint append"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_predicates_are_rejected_before_logging() {
        let dir = temp_dir("bad-pred");
        let store = durable_sample(&dir);
        let clock = store.clock();
        assert!(matches!(
            store.try_append_node("x", NodeKind::Data, Features::new(), PrivilegeId(9)),
            Err(StoreError::UnknownPredicate(9))
        ));
        assert!(matches!(
            store.apply_policy(PolicyStatement::MarkNode {
                node: RecordId(0),
                predicate: Some(PrivilegeId(7)),
                marking: Marking::Hide,
            }),
            Err(StoreError::UnknownPredicate(7))
        ));
        assert_eq!(store.clock(), clock, "nothing was appended or logged");
        // The log stays fully replayable: later appends survive reopen.
        let public = store.predicate("Public").unwrap();
        store.append_node("after", NodeKind::Data, Features::new(), public);
        let committed = store.to_bytes();
        drop(store);
        assert_eq!(Store::open(&dir).unwrap().to_bytes(), committed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_only_open_never_modifies_the_directory() {
        let dir = temp_dir("read-only");
        let committed = {
            let store = durable_sample(&dir);
            store.to_bytes()
        };
        // Corrupt the tail so a repairing open *would* truncate.
        let (_, segment) = crate::wal::list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&segment).unwrap();
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        std::fs::write(&segment, &bytes).unwrap();

        let before: Vec<(std::path::PathBuf, Vec<u8>)> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let p = e.unwrap().path();
                let b = std::fs::read(&p).unwrap();
                (p, b)
            })
            .collect();
        let store = Store::open_read_only(&dir).unwrap();
        assert_eq!(store.to_bytes(), committed, "valid prefix recovered");
        assert!(!store.is_durable(), "no writer attached");
        for (path, bytes) in before {
            assert_eq!(
                std::fs::read(&path).unwrap(),
                bytes,
                "read-only open modified {}",
                path.display()
            );
        }
        // A repairing open afterwards cleans the tail.
        let (_, report) = Store::open_reporting(&dir, Default::default()).unwrap();
        assert!(report.truncated.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeated_checkpoints_leave_a_clean_log() {
        // A checkpoint whose active segment already starts at the
        // checkpoint clock (e.g. two checkpoints back to back, or a
        // checkpoint right after open) must not re-open that segment and
        // corrupt it with a second header.
        let dir = temp_dir("repeat-checkpoint");
        let store = durable_sample(&dir);
        store.checkpoint().unwrap();
        store.checkpoint().unwrap();
        let public = store.predicate("Public").unwrap();
        store.append_node("post", NodeKind::Data, Features::new(), public);
        store.checkpoint().unwrap();
        let committed = store.to_bytes();
        drop(store);
        let (restored, report) = Store::open_reporting(&dir, Default::default()).unwrap();
        assert!(
            report.truncated.is_none(),
            "checkpointing corrupted the log: {report:?}"
        );
        assert_eq!(restored.to_bytes(), committed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_requires_durability() {
        let (store, ..) = sample_store();
        assert!(matches!(store.checkpoint(), Err(StoreError::NotDurable)));
        assert!(!store.is_durable());
        assert!(store.durable_dir().is_none());
    }

    #[test]
    fn save_durable_seeds_an_openable_directory() {
        let dir = temp_dir("seed");
        let (store, ..) = sample_store();
        store.save_durable(&dir).unwrap();
        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.to_bytes(), store.to_bytes());
        assert!(reopened.is_durable());
        // Seeding over an existing store is refused.
        assert!(matches!(
            store.save_durable(&dir),
            Err(StoreError::Io { path: Some(_), .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_of_an_uninitialized_directory_is_a_clean_error() {
        let dir = temp_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            Store::open(&dir),
            Err(StoreError::NoSnapshot { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_durable_refuses_an_occupied_directory() {
        let dir = temp_dir("occupied");
        drop(durable_sample(&dir));
        assert!(matches!(
            Store::create_durable(&dir, &["Public"], &[]),
            Err(StoreError::Io { path: Some(_), .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Replays every frame of `src`'s WAL into `dst` through the
    /// replica apply path.
    fn replicate_frames(src_dir: &Path, dst: &Store) {
        let clock = {
            let src = Store::open_read_only(src_dir).unwrap();
            src.clock()
        };
        let mut next = dst.clock();
        while next < clock {
            let chunk = crate::wal::read_frames(src_dir, next, clock, 4 << 10)
                .unwrap()
                .expect("history retained");
            let mut pos = 0;
            while pos < chunk.frames.len() {
                let codec::FrameDecode::Complete { record, consumed } =
                    codec::decode_frame(&chunk.frames[pos..])
                else {
                    panic!("shipped frames are whole")
                };
                dst.apply_replicated(record, 0).unwrap();
                pos += consumed;
            }
            next = chunk.end_clock;
        }
    }

    #[test]
    fn apply_replicated_reproduces_the_primary_byte_for_byte() {
        let primary_dir = temp_dir("replicate-src");
        let replica_dir = temp_dir("replicate-dst");
        let primary = durable_sample(&primary_dir);
        let replica = Store::create_durable_with(
            &replica_dir,
            &["Public", "High"],
            &[(1, 0)],
            crate::wal::DurabilityOptions {
                fsync: false,
                ..Default::default()
            },
        )
        .unwrap();
        replicate_frames(&primary_dir, &replica);
        assert_eq!(replica.to_bytes(), primary.to_bytes());
        // The replica logged every applied record to its own WAL: it
        // recovers to the same state without the primary.
        drop(replica);
        let reopened = Store::open(&replica_dir).unwrap();
        assert_eq!(reopened.to_bytes(), primary.to_bytes());
        std::fs::remove_dir_all(&primary_dir).ok();
        std::fs::remove_dir_all(&replica_dir).ok();
    }

    #[test]
    fn apply_replicated_rejects_out_of_order_records() {
        let (store, ..) = sample_store();
        let clock = store.clock();
        let stale = NodeRecord {
            label: "stale".into(),
            kind: NodeKind::Data,
            features: Features::new(),
            lowest: PrivilegeId(0),
            created_at: clock + 5,
        };
        assert!(matches!(
            store.apply_replicated(WalRecord::AppendNode(stale), 0),
            Err(StoreError::ReplicationGap { expected, found })
                if expected == clock && found == clock + 5
        ));
        assert_eq!(store.clock(), clock, "nothing applied");
    }

    #[test]
    fn deposed_terms_are_refused_and_higher_terms_persist() {
        let dir = temp_dir("fencing");
        let store = durable_sample(&dir);
        assert_eq!(store.replication_term(), 0, "fresh store starts at 0");

        // A record from a correctly-clocked but deposed sender is
        // refused before the clock is even looked at.
        store.observe_replication_term(3).unwrap();
        let clock = store.clock();
        let record = NodeRecord {
            label: "forked".into(),
            kind: NodeKind::Data,
            features: Features::new(),
            lowest: PrivilegeId(0),
            created_at: clock,
        };
        assert!(matches!(
            store.apply_replicated(WalRecord::AppendNode(record.clone()), 2),
            Err(StoreError::DeposedPrimary {
                term: 2,
                current: 3
            })
        ));
        assert_eq!(store.clock(), clock, "nothing applied");
        // Equal and higher terms pass through to the ordinary apply path.
        store
            .apply_replicated(WalRecord::AppendNode(record), 5)
            .unwrap();
        assert_eq!(store.clock(), clock + 1);
        assert_eq!(store.replication_term(), 5);

        // The observed term survives a reopen (durably recorded), and a
        // promotion bumps past it.
        drop(store);
        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.replication_term(), 5);
        assert_eq!(reopened.promote_term().unwrap(), 6);
        drop(reopened);
        assert_eq!(Store::open(&dir).unwrap().replication_term(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn install_snapshot_fast_forwards_and_stays_durable() {
        let primary_dir = temp_dir("install-src");
        let replica_dir = temp_dir("install-dst");
        let primary = durable_sample(&primary_dir);
        let snapshot = primary.to_bytes();
        let replica = Store::create_durable_with(
            &replica_dir,
            &["Public", "High"],
            &[(1, 0)],
            crate::wal::DurabilityOptions {
                fsync: false,
                ..Default::default()
            },
        )
        .unwrap();
        let installed = replica.install_snapshot(&snapshot).unwrap();
        assert_eq!(installed, primary.clock());
        assert_eq!(replica.to_bytes(), snapshot);
        assert!(replica.is_durable(), "writer reattached at the new clock");

        // Replication continues on top of the installed snapshot…
        let public = primary.predicate("Public").unwrap();
        primary.append_node("post", NodeKind::Data, Features::new(), public);
        replicate_frames(&primary_dir, &replica);
        assert_eq!(replica.to_bytes(), primary.to_bytes());

        // …and the directory recovers to the fast-forwarded state.
        drop(replica);
        let reopened = Store::open(&replica_dir).unwrap();
        assert_eq!(reopened.to_bytes(), primary.to_bytes());

        // A snapshot at or behind the local clock is a no-op.
        let clock = reopened.clock();
        assert_eq!(reopened.install_snapshot(&snapshot).unwrap(), clock);
        assert_eq!(reopened.to_bytes(), primary.to_bytes());
        std::fs::remove_dir_all(&primary_dir).ok();
        std::fs::remove_dir_all(&replica_dir).ok();
    }

    #[test]
    fn install_snapshot_requires_durability() {
        let (in_memory, ..) = sample_store();
        let (other, ..) = sample_store();
        assert!(matches!(
            in_memory.install_snapshot(&other.to_bytes()),
            Err(StoreError::NotDurable)
        ));
    }

    #[test]
    fn concurrent_appends_are_safe() {
        let store = std::sync::Arc::new(Store::public_only());
        let public = store.predicate("Public").unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store.append_node(
                        format!("n-{t}-{i}"),
                        NodeKind::Data,
                        Features::new(),
                        public,
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.node_count(), 400);
        assert_eq!(store.clock(), 400);
    }

    #[test]
    fn partitioned_store_assigns_global_ids() {
        let p = Partition::new(1, 3).unwrap();
        let store = Store::new_partitioned(&["Public"], &[], p).unwrap();
        let public = store.predicate("Public").unwrap();
        let a = store.append_node("a", NodeKind::Data, Features::new(), public);
        let b = store.append_node("b", NodeKind::Data, Features::new(), public);
        assert_eq!(a, RecordId(1));
        assert_eq!(b, RecordId(4));
        assert_eq!(store.partition(), Some(p));
        assert_eq!(store.node(a).unwrap().label, "a");
        assert_eq!(store.node(RecordId(0)), None, "foreign id");
        assert_eq!(store.node(RecordId(7)), None, "owned but unassigned");
    }

    #[test]
    fn partitioned_store_routes_writes_by_ownership() {
        let p = Partition::new(0, 2).unwrap();
        let store = Store::new_partitioned(&["Public"], &[], p).unwrap();
        let public = store.predicate("Public").unwrap();
        let a = store.append_node("a", NodeKind::Data, Features::new(), public); // global 0
                                                                                 // Edge from an owned node to a foreign id is accepted.
        store
            .append_edge(a, RecordId(1), EdgeKind::Related)
            .unwrap();
        // Edge *from* a foreign id is a misrouted write.
        assert!(matches!(
            store.append_edge(RecordId(1), a, EdgeKind::Related),
            Err(StoreError::WrongShard {
                id: RecordId(1),
                owner: 1
            })
        ));
        // Policy targeting a foreign node is misrouted too…
        assert!(matches!(
            store.apply_policy(PolicyStatement::MarkNode {
                node: RecordId(3),
                predicate: None,
                marking: Marking::Hide,
            }),
            Err(StoreError::WrongShard {
                id: RecordId(3),
                owner: 1
            })
        ));
        // …while an owned-but-unassigned target is simply unknown.
        assert!(matches!(
            store.apply_policy(PolicyStatement::MarkNode {
                node: RecordId(4),
                predicate: None,
                marking: Marking::Hide,
            }),
            Err(StoreError::UnknownRecord(RecordId(4)))
        ));
    }

    #[test]
    fn partitioned_store_roundtrips_and_materializes_globally() {
        let p = Partition::new(1, 2).unwrap();
        let store = Store::new_partitioned(&["Public"], &[], p).unwrap();
        let public = store.predicate("Public").unwrap();
        let a = store.append_node("odd-0", NodeKind::Data, Features::new(), public); // 1
        let b = store.append_node("odd-1", NodeKind::Data, Features::new(), public); // 3
        store.append_edge(a, b, EdgeKind::Related).unwrap();
        store
            .append_edge(b, RecordId(0), EdgeKind::Related)
            .unwrap();

        let restored = Store::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(restored.partition(), Some(p));
        assert_eq!(restored.to_bytes(), store.to_bytes());

        let m = store.materialize();
        // Global ids 0..4: placeholders at 0 and 2, records at 1 and 3.
        assert_eq!(m.graph.node_count(), 4);
        assert_eq!(m.graph.node(NodeId(1)).label, "odd-0");
        assert_eq!(m.graph.node(NodeId(3)).label, "odd-1");
        assert_eq!(m.graph.node(NodeId(0)).label, "");
        assert!(m.graph.has_edge(NodeId(1), NodeId(3)));
        assert!(m.graph.has_edge(NodeId(3), NodeId(0)));
    }

    #[test]
    fn partitioned_durable_store_recovers_its_partition() {
        let dir = temp_dir("partitioned");
        let p = Partition::new(0, 2).unwrap();
        let committed = {
            let store = Store::create_durable_partitioned(
                &dir,
                &["Public"],
                &[],
                crate::wal::DurabilityOptions {
                    fsync: false,
                    ..Default::default()
                },
                p,
            )
            .unwrap();
            let public = store.predicate("Public").unwrap();
            let a = store.append_node("even", NodeKind::Data, Features::new(), public);
            assert_eq!(a, RecordId(0));
            store
                .append_edge(a, RecordId(1), EdgeKind::Related)
                .unwrap();
            store.to_bytes()
        };
        let restored = Store::open(&dir).unwrap();
        assert_eq!(restored.partition(), Some(p));
        assert_eq!(restored.to_bytes(), committed);
        // Checkpoint keeps the partition in the folded snapshot.
        restored.checkpoint().unwrap();
        drop(restored);
        let again = Store::open(&dir).unwrap();
        assert_eq!(again.partition(), Some(p));
        assert_eq!(again.to_bytes(), committed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
