//! Binary codecs for the store: the full-state **snapshot** format and
//! the per-record **write-ahead-log frame** format.
//!
//! # Snapshot format
//!
//! Little-endian, length-prefixed, versioned, and checksummed:
//!
//! ```text
//! magic "PLUS" | version u16 | clock u64
//! v2 only:  u32 shard_count | u32 shard_index
//! lattice:  u16 n  { str name }×n   u32 m  { u16 higher, u16 lower }×m
//! nodes:    u32 n  { str label, u8 kind, u16 lowest, u64 created_at, features }×n
//! edges:    u32 n  { u32 from, u32 to, u8 kind }×n
//! policy:   u32 n  { u8 tag, payload }×n
//! fnv1a-64 checksum over everything above
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes. Features are `u16` count of
//! `(str key, u8 value-tag, value)` entries. The checksum catches torn
//! writes and bit rot before a corrupt snapshot reaches the graph layer.
//!
//! Version 2 exists solely for **partitioned** (sharded) stores: an
//! unpartitioned snapshot always encodes as version 1, byte-identical to
//! what earlier releases wrote, so old snapshots decode and new
//! unpartitioned snapshots stay readable by old binaries. In a
//! partitioned snapshot the node list holds only this shard's residue
//! class (local position `p` is global id `p * shard_count +
//! shard_index`), while edge and policy records keep **global** ids —
//! foreign endpoints are accepted unvalidated, since the owning shard is
//! the authority on their existence.
//!
//! # WAL frame format
//!
//! A WAL segment file is a fixed header followed by a run of
//! independently checksummed frames, one per store mutation:
//!
//! ```text
//! header: magic "PLUSWAL\0" | version u16 | start_clock u64
//! frame:  len u32 | crc32 u32 (IEEE, over payload) | payload (len bytes)
//! payload: tag u8 — 0 AppendNode  { str label, u8 kind, u16 lowest,
//!                                   u64 created_at, features }
//!                   1 AppendEdge  { u32 from, u32 to, u8 kind }
//!                   2 ApplyPolicy { policy statement, as in snapshots }
//! ```
//!
//! The frame with index `i` in a segment records the mutation that
//! moved the store's logical clock from `start_clock + i` one tick
//! forward. Frames are written (and, when fsync is on, synced) *before*
//! the in-memory mutation is applied, so every acknowledged mutation is
//! recoverable; [`decode_frame`] distinguishes a **torn** tail (bytes
//! end mid-frame — the normal crash signature) from a **corrupt** frame
//! (checksum or structure failure), and recovery truncates at the first
//! of either instead of failing.

use bytes::{BufMut, BytesMut};
use surrogate_core::feature::{FeatureValue, Features};
use surrogate_core::marking::Marking;
use surrogate_core::privilege::PrivilegeId;
use surrogate_core::shard::Partition;

use crate::error::CodecError;
use crate::record::{EdgeKind, EdgeRecord, NodeKind, NodeRecord, PolicyStatement, RecordId};

/// Snapshot magic bytes.
pub const MAGIC: &[u8; 4] = b"PLUS";
/// Current snapshot version.
pub const VERSION: u16 = 1;
/// Snapshot version for partitioned (sharded) stores, which carry a
/// `shard_count`/`shard_index` pair after the clock. Unpartitioned
/// snapshots keep encoding as [`VERSION`].
pub const VERSION_PARTITIONED: u16 = 2;

/// WAL segment magic bytes.
pub const WAL_MAGIC: &[u8; 8] = b"PLUSWAL\0";
/// Current WAL segment version.
pub const WAL_VERSION: u16 = 1;
/// Bytes of a WAL segment header: magic, version, start clock.
pub const WAL_HEADER_LEN: usize = 8 + 2 + 8;
/// Bytes of a frame header: `len u32 | crc32 u32`.
pub const FRAME_HEADER_LEN: usize = 4 + 4;
/// Sanity bound on a single frame's payload; anything larger is treated
/// as corruption rather than allocated.
pub const MAX_FRAME_LEN: u32 = 1 << 26;

/// The plain data a snapshot carries.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotData {
    /// Predicate nicknames, index = `PrivilegeId`.
    pub lattice_names: Vec<String>,
    /// Declared dominance edges `(higher, lower)`.
    pub dominance: Vec<(PrivilegeId, PrivilegeId)>,
    /// Node records in append order.
    pub nodes: Vec<NodeRecord>,
    /// Edge records in append order.
    pub edges: Vec<EdgeRecord>,
    /// Policy statements in application order.
    pub policy: Vec<PolicyStatement>,
    /// The store's logical clock.
    pub clock: u64,
    /// The keyspace slice this store owns, when it is one shard of a
    /// partitioned deployment. `None` for ordinary single-primary
    /// stores; `Some` switches the snapshot to [`VERSION_PARTITIONED`]
    /// and relaxes reference validation for foreign (remote-shard) ids.
    pub partition: Option<Partition>,
}

/// FNV-1a 64-bit, the snapshot integrity hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Slicing-by-8 extension of [`CRC32_TABLE`]: `TABLES[t][b]` is the CRC
/// contribution of byte `b` seen `t` positions before the end of an
/// 8-byte block. Mathematically identical to the byte-at-a-time loop —
/// only the evaluation order changes — but the eight table lookups of a
/// block are independent, so the update is no longer one long serial
/// dependency chain per byte.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    tables[0] = CRC32_TABLE;
    let mut i = 0;
    while i < 256 {
        let mut crc = tables[0][i];
        let mut t = 1;
        while t < 8 {
            crc = (crc >> 8) ^ tables[0][(crc & 0xff) as usize];
            tables[t][i] = crc;
            t += 1;
        }
        i += 1;
    }
    tables
};

/// CRC-32 (IEEE), the per-frame integrity check of the WAL and the wire
/// protocol. Processes 8 bytes per step (slicing-by-8); the checksum is
/// bit-identical to the classic byte-wise definition.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("len 4")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("len 4"));
        crc = CRC32_TABLES[7][(lo & 0xff) as usize]
            ^ CRC32_TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ CRC32_TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ CRC32_TABLES[4][(lo >> 24) as usize]
            ^ CRC32_TABLES[3][(hi & 0xff) as usize]
            ^ CRC32_TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ CRC32_TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ CRC32_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC32_TABLES[0][((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn put_features(buf: &mut BytesMut, features: &Features) {
    buf.put_u16_le(features.len() as u16);
    for (key, value) in features.iter() {
        put_str(buf, key);
        match value {
            FeatureValue::Str(s) => {
                buf.put_u8(0);
                put_str(buf, s);
            }
            FeatureValue::Int(i) => {
                buf.put_u8(1);
                buf.put_i64_le(*i);
            }
            FeatureValue::Float(x) => {
                buf.put_u8(2);
                buf.put_f64_le(*x);
            }
            FeatureValue::Bool(b) => {
                buf.put_u8(3);
                buf.put_u8(*b as u8);
            }
            FeatureValue::Timestamp(t) => {
                buf.put_u8(4);
                buf.put_i64_le(*t);
            }
        }
    }
}

fn marking_tag(m: Marking) -> u8 {
    match m {
        Marking::Visible => 0,
        Marking::Hide => 1,
        Marking::Surrogate => 2,
    }
}

fn marking_from_tag(tag: u8) -> Result<Marking, CodecError> {
    match tag {
        0 => Ok(Marking::Visible),
        1 => Ok(Marking::Hide),
        2 => Ok(Marking::Surrogate),
        _ => Err(CodecError::InvalidTag {
            what: "marking",
            tag,
        }),
    }
}

fn put_opt_predicate(buf: &mut BytesMut, p: Option<PrivilegeId>) {
    match p {
        Some(p) => {
            buf.put_u8(1);
            buf.put_u16_le(p.0);
        }
        None => buf.put_u8(0),
    }
}

fn put_node(buf: &mut BytesMut, node: &NodeRecord) {
    put_str(buf, &node.label);
    buf.put_u8(node.kind.tag());
    buf.put_u16_le(node.lowest.0);
    buf.put_u64_le(node.created_at);
    put_features(buf, &node.features);
}

fn put_edge(buf: &mut BytesMut, edge: &EdgeRecord) {
    buf.put_u32_le(edge.from.0);
    buf.put_u32_le(edge.to.0);
    buf.put_u8(edge.kind.tag());
}

pub(crate) fn put_policy(buf: &mut BytesMut, statement: &PolicyStatement) {
    match statement {
        PolicyStatement::MarkIncidence {
            node,
            from,
            to,
            predicate,
            marking,
        } => {
            buf.put_u8(0);
            buf.put_u32_le(node.0);
            buf.put_u32_le(from.0);
            buf.put_u32_le(to.0);
            put_opt_predicate(buf, *predicate);
            buf.put_u8(marking_tag(*marking));
        }
        PolicyStatement::MarkNode {
            node,
            predicate,
            marking,
        } => {
            buf.put_u8(1);
            buf.put_u32_le(node.0);
            put_opt_predicate(buf, *predicate);
            buf.put_u8(marking_tag(*marking));
        }
        PolicyStatement::AddSurrogate {
            node,
            label,
            features,
            lowest,
            info_score,
        } => {
            buf.put_u8(2);
            buf.put_u32_le(node.0);
            put_str(buf, label);
            put_features(buf, features);
            buf.put_u16_le(lowest.0);
            buf.put_f64_le(*info_score);
        }
    }
}

/// Encodes a snapshot.
pub fn encode(data: &SnapshotData) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(
        64 + data.nodes.len() * 48 + data.edges.len() * 9 + data.policy.len() * 24,
    );
    buf.put_slice(MAGIC);
    buf.put_u16_le(match data.partition {
        Some(_) => VERSION_PARTITIONED,
        None => VERSION,
    });
    buf.put_u64_le(data.clock);
    if let Some(p) = data.partition {
        buf.put_u32_le(p.count());
        buf.put_u32_le(p.index());
    }

    buf.put_u16_le(data.lattice_names.len() as u16);
    for name in &data.lattice_names {
        put_str(&mut buf, name);
    }
    buf.put_u32_le(data.dominance.len() as u32);
    for &(hi, lo) in &data.dominance {
        buf.put_u16_le(hi.0);
        buf.put_u16_le(lo.0);
    }

    buf.put_u32_le(data.nodes.len() as u32);
    for node in &data.nodes {
        put_node(&mut buf, node);
    }

    buf.put_u32_le(data.edges.len() as u32);
    for edge in &data.edges {
        put_edge(&mut buf, edge);
    }

    buf.put_u32_le(data.policy.len() as u32);
    for statement in &data.policy {
        put_policy(&mut buf, statement);
    }

    let checksum = fnv1a(&buf);
    buf.put_u64_le(checksum);
    buf.to_vec()
}

/// Bounds-checked little-endian reader, shared by the snapshot, WAL, and
/// wire-protocol decoders.
pub(crate) struct Reader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub(crate) fn string(&mut self) -> Result<String, CodecError> {
        Ok(self.str_ref()?.to_owned())
    }

    /// A string borrowed from the underlying payload — the allocation-free
    /// form of [`string`](Self::string), for decoders that copy into
    /// caller-owned buffers.
    pub(crate) fn str_ref(&mut self) -> Result<&'a str, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)
    }

    pub(crate) fn features(&mut self) -> Result<Features, CodecError> {
        let count = self.u16()?;
        let mut features = Features::new();
        for _ in 0..count {
            let key = self.string()?;
            let tag = self.u8()?;
            let value = match tag {
                0 => FeatureValue::Str(self.string()?),
                1 => FeatureValue::Int(self.i64()?),
                2 => FeatureValue::Float(self.f64()?),
                3 => FeatureValue::Bool(self.u8()? != 0),
                4 => FeatureValue::Timestamp(self.i64()?),
                _ => {
                    return Err(CodecError::InvalidTag {
                        what: "feature value",
                        tag,
                    })
                }
            };
            features.set(key, value);
        }
        Ok(features)
    }

    pub(crate) fn opt_predicate(&mut self) -> Result<Option<PrivilegeId>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(PrivilegeId(self.u16()?))),
            tag => Err(CodecError::InvalidTag {
                what: "optional predicate",
                tag,
            }),
        }
    }

    pub(crate) fn node_record(&mut self) -> Result<NodeRecord, CodecError> {
        let label = self.string()?;
        let kind_tag = self.u8()?;
        let kind = NodeKind::from_tag(kind_tag).ok_or(CodecError::InvalidTag {
            what: "node kind",
            tag: kind_tag,
        })?;
        let lowest = PrivilegeId(self.u16()?);
        let created_at = self.u64()?;
        let features = self.features()?;
        Ok(NodeRecord {
            label,
            kind,
            features,
            lowest,
            created_at,
        })
    }

    pub(crate) fn edge_record(&mut self) -> Result<EdgeRecord, CodecError> {
        let from = RecordId(self.u32()?);
        let to = RecordId(self.u32()?);
        let kind_tag = self.u8()?;
        let kind = EdgeKind::from_tag(kind_tag).ok_or(CodecError::InvalidTag {
            what: "edge kind",
            tag: kind_tag,
        })?;
        Ok(EdgeRecord { from, to, kind })
    }

    pub(crate) fn policy_statement(&mut self) -> Result<PolicyStatement, CodecError> {
        let tag = self.u8()?;
        match tag {
            0 => Ok(PolicyStatement::MarkIncidence {
                node: RecordId(self.u32()?),
                from: RecordId(self.u32()?),
                to: RecordId(self.u32()?),
                predicate: self.opt_predicate()?,
                marking: marking_from_tag(self.u8()?)?,
            }),
            1 => Ok(PolicyStatement::MarkNode {
                node: RecordId(self.u32()?),
                predicate: self.opt_predicate()?,
                marking: marking_from_tag(self.u8()?)?,
            }),
            2 => Ok(PolicyStatement::AddSurrogate {
                node: RecordId(self.u32()?),
                label: self.string()?,
                features: self.features()?,
                lowest: PrivilegeId(self.u16()?),
                info_score: self.f64()?,
            }),
            _ => Err(CodecError::InvalidTag {
                what: "policy statement",
                tag,
            }),
        }
    }
}

/// References a [`PolicyStatement`] makes, for bounds validation.
pub(crate) fn policy_refs(statement: &PolicyStatement) -> (Vec<RecordId>, Option<PrivilegeId>) {
    match statement {
        PolicyStatement::MarkIncidence {
            node,
            from,
            to,
            predicate,
            ..
        } => (vec![*node, *from, *to], *predicate),
        PolicyStatement::MarkNode {
            node, predicate, ..
        } => (vec![*node], *predicate),
        PolicyStatement::AddSurrogate { node, lowest, .. } => (vec![*node], Some(*lowest)),
    }
}

/// Decodes and verifies a snapshot.
pub fn decode(bytes: &[u8]) -> Result<SnapshotData, CodecError> {
    if bytes.len() < MAGIC.len() + 2 + 8 + 8 {
        return Err(CodecError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("len 8"));
    if fnv1a(body) != stored {
        return Err(CodecError::ChecksumMismatch);
    }

    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    if r.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION && version != VERSION_PARTITIONED {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let clock = r.u64()?;
    let partition = if version == VERSION_PARTITIONED {
        let count = r.u32()?;
        let index = r.u32()?;
        Some(Partition::new(index, count).ok_or(CodecError::DanglingReference)?)
    } else {
        None
    };

    let name_count = r.u16()? as usize;
    let mut lattice_names = Vec::with_capacity(name_count);
    for _ in 0..name_count {
        lattice_names.push(r.string()?);
    }
    let dom_count = r.u32()? as usize;
    let mut dominance = Vec::with_capacity(dom_count);
    for _ in 0..dom_count {
        let hi = PrivilegeId(r.u16()?);
        let lo = PrivilegeId(r.u16()?);
        if hi.0 as usize >= name_count || lo.0 as usize >= name_count {
            return Err(CodecError::DanglingReference);
        }
        dominance.push((hi, lo));
    }

    let check_pred = |p: PrivilegeId| {
        if p.0 as usize >= name_count {
            Err(CodecError::DanglingReference)
        } else {
            Ok(p)
        }
    };

    let node_count = r.u32()? as usize;
    let mut nodes = Vec::with_capacity(node_count.min(1 << 20));
    for _ in 0..node_count {
        let node = r.node_record()?;
        check_pred(node.lowest)?;
        nodes.push(node);
    }

    // Partitioned stores hold only their own residue class: an owned id
    // must land inside the local node list, while a foreign id's
    // existence is the owning shard's business and passes unvalidated.
    let check_node = |id: RecordId| match partition {
        Some(p) if !p.owns(id.0) => Ok(id),
        Some(p) if (p.local(id.0) as usize) < node_count => Ok(id),
        Some(_) => Err(CodecError::DanglingReference),
        None if id.index() < node_count => Ok(id),
        None => Err(CodecError::DanglingReference),
    };

    let edge_count = r.u32()? as usize;
    let mut edges = Vec::with_capacity(edge_count.min(1 << 20));
    for _ in 0..edge_count {
        let edge = r.edge_record()?;
        check_node(edge.from)?;
        check_node(edge.to)?;
        edges.push(edge);
    }

    let policy_count = r.u32()? as usize;
    let mut policy = Vec::with_capacity(policy_count.min(1 << 20));
    for _ in 0..policy_count {
        let statement = r.policy_statement()?;
        let (records, predicate) = policy_refs(&statement);
        for id in records {
            check_node(id)?;
        }
        if let Some(p) = predicate {
            check_pred(p)?;
        }
        policy.push(statement);
    }

    if r.pos != body.len() {
        return Err(CodecError::Truncated); // trailing garbage
    }

    Ok(SnapshotData {
        lattice_names,
        dominance,
        nodes,
        edges,
        policy,
        clock,
        partition,
    })
}

// ---------------------------------------------------------------------------
// WAL frames
// ---------------------------------------------------------------------------

/// One logged store mutation — the unit of durability. See the module
/// docs for the frame layout.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `Store::append_node`, with the clock-assigned `created_at`.
    AppendNode(NodeRecord),
    /// `Store::append_edge`.
    AppendEdge(EdgeRecord),
    /// `Store::apply_policy`.
    ApplyPolicy(PolicyStatement),
}

/// Encodes a WAL segment header.
pub fn encode_wal_header(start_clock: u64) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(WAL_HEADER_LEN);
    buf.put_slice(WAL_MAGIC);
    buf.put_u16_le(WAL_VERSION);
    buf.put_u64_le(start_clock);
    buf.to_vec()
}

/// Decodes a WAL segment header, returning the segment's start clock.
pub fn decode_wal_header(bytes: &[u8]) -> Result<u64, CodecError> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[8..10].try_into().expect("len 2"));
    if version != WAL_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    Ok(u64::from_le_bytes(bytes[10..18].try_into().expect("len 8")))
}

/// Encodes one record as a self-checking frame.
pub fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let mut payload = BytesMut::with_capacity(64);
    match record {
        WalRecord::AppendNode(node) => {
            payload.put_u8(0);
            put_node(&mut payload, node);
        }
        WalRecord::AppendEdge(edge) => {
            payload.put_u8(1);
            put_edge(&mut payload, edge);
        }
        WalRecord::ApplyPolicy(statement) => {
            payload.put_u8(2);
            put_policy(&mut payload, statement);
        }
    }
    seal_frame(&payload)
}

/// Outcome of decoding the frame at the head of `bytes`.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameDecode {
    /// A whole, checksum-valid frame.
    Complete {
        /// The decoded record.
        record: WalRecord,
        /// Total frame bytes consumed (header + payload).
        consumed: usize,
    },
    /// The bytes end mid-frame — the signature of a crash during an
    /// append. Everything before this frame is intact.
    Torn,
    /// The frame is structurally invalid or fails its checksum:
    /// corruption rather than a torn tail.
    Corrupt(CodecError),
}

/// Outcome of opening the raw frame at the head of a byte slice, before
/// any payload interpretation. The WAL record decoder and the wire
/// protocol share this layer (`len u32 | crc32 u32 | payload`).
#[derive(Debug, Clone, PartialEq)]
pub enum RawFrame<'a> {
    /// A whole, checksum-valid frame; `payload` is its body.
    Complete {
        /// The checksum-verified payload bytes.
        payload: &'a [u8],
        /// Total frame bytes consumed (header + payload).
        consumed: usize,
    },
    /// The bytes end mid-frame — a torn tail or a short read.
    Torn,
    /// The frame is structurally invalid or fails its checksum.
    Corrupt(CodecError),
}

/// Wraps a payload in the shared frame convention:
/// `len u32 | crc32 u32 (IEEE, over payload) | payload`.
pub fn seal_frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64);
    let mut frame = BytesMut::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.put_u32_le(payload.len() as u32);
    frame.put_u32_le(crc32(payload));
    frame.put_slice(payload);
    frame.to_vec()
}

/// Opens the frame at the head of `bytes`: checks the length bound and
/// the CRC, but does not interpret the payload. Never panics.
pub fn open_frame(bytes: &[u8]) -> RawFrame<'_> {
    if bytes.len() < FRAME_HEADER_LEN {
        return RawFrame::Torn;
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("len 4"));
    if len > MAX_FRAME_LEN {
        return RawFrame::Corrupt(CodecError::FrameTooLarge(len));
    }
    let stored_crc = u32::from_le_bytes(bytes[4..8].try_into().expect("len 4"));
    let end = FRAME_HEADER_LEN + len as usize;
    if bytes.len() < end {
        return RawFrame::Torn;
    }
    let payload = &bytes[FRAME_HEADER_LEN..end];
    if crc32(payload) != stored_crc {
        return RawFrame::Corrupt(CodecError::ChecksumMismatch);
    }
    RawFrame::Complete {
        payload,
        consumed: end,
    }
}

/// Decodes the frame at the head of `bytes`. Never panics: arbitrary
/// bytes produce [`FrameDecode::Torn`] or [`FrameDecode::Corrupt`].
///
/// An empty slice is a *clean* end of log, which the caller should test
/// for before calling; here it reports `Torn` like any other short read.
pub fn decode_frame(bytes: &[u8]) -> FrameDecode {
    let (payload, end) = match open_frame(bytes) {
        RawFrame::Complete { payload, consumed } => (payload, consumed),
        RawFrame::Torn => return FrameDecode::Torn,
        RawFrame::Corrupt(e) => return FrameDecode::Corrupt(e),
    };
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let record = match r.u8() {
        Ok(0) => r.node_record().map(WalRecord::AppendNode),
        Ok(1) => r.edge_record().map(WalRecord::AppendEdge),
        Ok(2) => r.policy_statement().map(WalRecord::ApplyPolicy),
        Ok(tag) => Err(CodecError::InvalidTag {
            what: "wal record",
            tag,
        }),
        Err(e) => Err(e),
    };
    match record {
        Ok(record) if r.pos == payload.len() => FrameDecode::Complete {
            record,
            consumed: end,
        },
        // Payload bytes left over after a clean read: the frame does not
        // describe one record, so it cannot be trusted.
        Ok(_) => FrameDecode::Corrupt(CodecError::Truncated),
        Err(e) => FrameDecode::Corrupt(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sliced CRC must be bit-identical to the textbook byte-wise
    /// definition at every length, especially around the 8-byte block
    /// boundary and the known check value `crc32(b"123456789")`.
    #[test]
    fn crc32_matches_bytewise_reference() {
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in bytes {
                crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xff) as usize];
            }
            !crc
        }
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        let mut data = Vec::new();
        let mut x = 0x12u8;
        for len in 0..256 {
            data.clear();
            for _ in 0..len {
                x = x.wrapping_mul(31).wrapping_add(7);
                data.push(x);
            }
            assert_eq!(crc32(&data), reference(&data), "length {len}");
        }
    }

    fn sample() -> SnapshotData {
        SnapshotData {
            lattice_names: vec!["Public".into(), "High".into()],
            dominance: vec![(PrivilegeId(1), PrivilegeId(0))],
            nodes: vec![
                NodeRecord {
                    label: "report".into(),
                    kind: NodeKind::Data,
                    features: Features::new().with("score", 0.5).with("n", 3i64),
                    lowest: PrivilegeId(0),
                    created_at: 10,
                },
                NodeRecord {
                    label: "analysis".into(),
                    kind: NodeKind::Process,
                    features: Features::new()
                        .with("ok", true)
                        .with("at", FeatureValue::Timestamp(99))
                        .with("who", "alice"),
                    lowest: PrivilegeId(1),
                    created_at: 11,
                },
            ],
            edges: vec![EdgeRecord {
                from: RecordId(0),
                to: RecordId(1),
                kind: EdgeKind::InputTo,
            }],
            policy: vec![
                PolicyStatement::MarkNode {
                    node: RecordId(1),
                    predicate: Some(PrivilegeId(0)),
                    marking: Marking::Surrogate,
                },
                PolicyStatement::MarkIncidence {
                    node: RecordId(0),
                    from: RecordId(0),
                    to: RecordId(1),
                    predicate: None,
                    marking: Marking::Visible,
                },
                PolicyStatement::AddSurrogate {
                    node: RecordId(1),
                    label: "a process".into(),
                    features: Features::new(),
                    lowest: PrivilegeId(0),
                    info_score: 0.25,
                },
            ],
            clock: 12,
            partition: None,
        }
    }

    #[test]
    fn roundtrip() {
        let data = sample();
        let bytes = encode(&data);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_roundtrip() {
        let data = SnapshotData {
            lattice_names: vec!["Public".into()],
            dominance: vec![],
            nodes: vec![],
            edges: vec![],
            policy: vec![],
            clock: 0,
            partition: None,
        };
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn unpartitioned_snapshots_stay_version_1() {
        let bytes = encode(&sample());
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        assert_eq!(version, VERSION);
    }

    #[test]
    fn partitioned_roundtrip() {
        // Shard 1 of 2 owns the odd ids; its two local nodes are global
        // ids 1 and 3. Edges and policy reference the foreign (even)
        // ids freely.
        let mut data = sample();
        data.partition = Partition::new(1, 2);
        data.edges = vec![EdgeRecord {
            from: RecordId(1),
            to: RecordId(2), // foreign: owned by shard 0
            kind: EdgeKind::InputTo,
        }];
        data.policy = vec![PolicyStatement::MarkNode {
            node: RecordId(3),
            predicate: None,
            marking: Marking::Hide,
        }];
        let bytes = encode(&data);
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        assert_eq!(version, VERSION_PARTITIONED);
        assert_eq!(decode(&bytes).unwrap(), data);
    }

    #[test]
    fn partitioned_rejects_out_of_range_local_id() {
        // Shard 1 of 2 with two nodes owns global ids 1 and 3; global
        // id 5 is owned but beyond the node list.
        let mut data = sample();
        data.partition = Partition::new(1, 2);
        data.edges = vec![EdgeRecord {
            from: RecordId(5),
            to: RecordId(1),
            kind: EdgeKind::InputTo,
        }];
        data.policy.clear();
        assert_eq!(
            decode(&encode(&data)).unwrap_err(),
            CodecError::DanglingReference
        );
    }

    #[test]
    fn partitioned_rejects_invalid_partition_pair() {
        // Hand-corrupt a v2 snapshot so index >= count, re-seal the
        // checksum, and confirm the decoder refuses it.
        let mut data = sample();
        data.partition = Partition::new(0, 2);
        data.edges.clear();
        data.policy.clear();
        let mut bytes = encode(&data);
        // Layout: magic(4) version(2) clock(8) count(4) index(4).
        bytes[18..22].copy_from_slice(&7u32.to_le_bytes());
        let body_len = bytes.len() - 8;
        let checksum = super::fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::DanglingReference);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = encode(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::ChecksumMismatch);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample());
        assert_eq!(
            decode(&bytes[..bytes.len() - 9]).unwrap_err(),
            CodecError::ChecksumMismatch
        );
        assert_eq!(decode(&bytes[..4]).unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        // Checksum covers the magic too, so recompute it to isolate the
        // magic check.
        let body_len = bytes.len() - 8;
        let checksum = super::fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn dangling_edge_reference_is_detected() {
        let mut data = sample();
        data.edges[0].to = RecordId(99);
        let bytes = encode(&data);
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::DanglingReference);
    }

    #[test]
    fn dangling_predicate_reference_is_detected() {
        let mut data = sample();
        data.nodes[0].lowest = PrivilegeId(40);
        let bytes = encode(&data);
        assert_eq!(decode(&bytes).unwrap_err(), CodecError::DanglingReference);
    }
}
