//! The segmented write-ahead log: durable appends, crash recovery, and
//! checkpointing for [`Store`](crate::store::Store).
//!
//! # On-disk layout
//!
//! A durable store is a directory:
//!
//! ```text
//! store/
//!   snap-<clock:016x>.snap   full snapshot at logical clock <clock>
//!   wal-<start:016x>.wal     segment of frames for clocks <start>, <start>+1, …
//!   term                     replication fencing term, u64 LE (absent = 0)
//! ```
//!
//! Snapshots use the [`codec`] snapshot format; segments are a
//! [`codec::WAL_HEADER_LEN`]-byte header followed by CRC-checksummed
//! frames (see the [`codec`] module docs for both layouts). Segment `i`'s
//! frames are contiguous in clock: the `k`-th frame of a segment starting
//! at clock `s` records the mutation `s + k`.
//!
//! # Protocol
//!
//! * **Append**: the frame is written (and optionally fsynced) *before*
//!   the in-memory mutation is applied, so an acknowledged mutation is
//!   always recoverable. Segments rotate once the active one crosses
//!   [`DurabilityOptions::segment_max_bytes`].
//! * **Recovery** (`recover`, run by `Store::open*`): load the newest
//!   decodable snapshot (falling back through older ones), then replay
//!   segments in clock
//!   order. Replay stops — and the log is physically truncated — at the
//!   first torn or corrupt frame; segments beyond a truncation or a clock
//!   gap are unreachable and removed. The result is always a valid
//!   *prefix* of the committed history, never an error for torn tails.
//! * **Checkpoint**: write a snapshot of the current state to a temp file,
//!   fsync, rename into place, rotate to a fresh segment, then prune
//!   segments and snapshots the new snapshot supersedes.
//!
//! # Single writer
//!
//! A durable store directory assumes **at most one attached writer** at
//! a time: recovery repairs the directory (truncating torn tails,
//! removing unreachable segments) before appending, and checkpointing
//! prunes files, so a second concurrent writer — another process calling
//! `Store::open` or `Store::checkpoint` on the same directory — can
//! destroy the first writer's acknowledged frames. There is no lock
//! file; exclusion is the operator's responsibility. Read-only recovery
//! (`Store::open_read_only`, used by the CLI's read commands) never
//! modifies the directory and is safe alongside a live writer up to
//! ordinary read-torn-tail raciness.
//!
//! # Fault injection
//!
//! The writer performs all file writes through the [`WalFile`] /
//! [`WalIo`] traits. Production uses [`DiskIo`]; the crash-recovery test
//! harness substitutes a failing in-memory implementation to kill the
//! writer after every byte-prefix of the log and prove recovery of each.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::codec::{self, FrameDecode, RawFrame, WalRecord};
use crate::error::{Result, StoreError};

/// Suffix of snapshot files in a durable store directory.
pub const SNAPSHOT_SUFFIX: &str = ".snap";
/// Suffix of WAL segment files in a durable store directory.
pub const SEGMENT_SUFFIX: &str = ".wal";
/// Name of the durable fencing-term file beside the segments.
pub const TERM_FILE: &str = "term";

/// Tuning knobs for a durable store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// Rotate to a fresh segment once the active one reaches this many
    /// bytes.
    pub segment_max_bytes: u64,
    /// `fsync` the active segment after every appended frame. On, the
    /// default, survives power loss; off survives process crashes only.
    pub fsync: bool,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self {
            segment_max_bytes: 4 << 20,
            fsync: true,
        }
    }
}

/// An open, append-only WAL segment file. The writer-side I/O seam: the
/// fault-injection harness substitutes an implementation that fails after
/// a byte budget, proving every crash point recovers.
///
/// `Sync` is required only so the store stays `Sync` with a writer
/// embedded; all calls happen under the store's write lock.
pub trait WalFile: Send + Sync + fmt::Debug {
    /// Appends bytes at the end of the file.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Flushes appended bytes to stable storage.
    fn sync(&mut self) -> std::io::Result<()>;
}

/// Opens WAL segment files for the writer. See [`WalFile`].
pub trait WalIo: Send + Sync + fmt::Debug {
    /// Opens `path` for appending, creating it if absent.
    fn open_segment(&mut self, path: &Path) -> std::io::Result<Box<dyn WalFile>>;
}

/// The production [`WalIo`]: plain files opened in append mode.
#[derive(Debug, Default)]
pub struct DiskIo;

impl WalIo for DiskIo {
    fn open_segment(&mut self, path: &Path) -> std::io::Result<Box<dyn WalFile>> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(DiskFile(file)))
    }
}

#[derive(Debug)]
struct DiskFile(fs::File);

impl WalFile for DiskFile {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.0.write_all(bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.0.sync_data()
    }
}

/// Path of the snapshot at `clock` inside `dir`.
pub fn snapshot_path(dir: &Path, clock: u64) -> PathBuf {
    dir.join(format!("snap-{clock:016x}{SNAPSHOT_SUFFIX}"))
}

/// Path of the segment starting at `clock` inside `dir`.
pub fn segment_path(dir: &Path, clock: u64) -> PathBuf {
    dir.join(format!("wal-{start:016x}{SEGMENT_SUFFIX}", start = clock))
}

/// Parses the clock out of a `prefix-<clock:016x><suffix>` file name.
fn parse_clock(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let hex = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    u64::from_str_radix(hex, 16).ok()
}

/// Lists `(clock, path)` of files matching the prefix/suffix, ascending.
fn list_clocked(dir: &Path, prefix: &str, suffix: &str) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| StoreError::io_at(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io_at(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(clock) = parse_clock(name, prefix, suffix) {
            out.push((clock, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(clock, _)| clock);
    Ok(out)
}

/// Snapshots in `dir`, ascending by clock.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    list_clocked(dir, "snap-", SNAPSHOT_SUFFIX)
}

/// Segments in `dir`, ascending by start clock.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    list_clocked(dir, "wal-", SEGMENT_SUFFIX)
}

/// Writes `bytes` to `path` atomically and durably: temp file, fsync,
/// rename, parent-directory fsync.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    let mut file = fs::File::create(&tmp).map_err(|e| StoreError::io_at(&tmp, e))?;
    file.write_all(bytes)
        .map_err(|e| StoreError::io_at(&tmp, e))?;
    file.sync_data().map_err(|e| StoreError::io_at(&tmp, e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| StoreError::io_at(path, e))?;
    if let Some(dir) = path.parent() {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Path of the fencing-term file inside `dir`.
pub fn term_path(dir: &Path) -> PathBuf {
    dir.join(TERM_FILE)
}

/// Reads the durable replication fencing term of the store under `dir`.
///
/// A store that predates fencing (no `term` file) is at term 0, the
/// lowest possible term, so pre-v4 directories interoperate unchanged. A
/// present-but-undecodable file is an error, never silently term 0 — a
/// reset fencing term could let a deposed primary's frames back in.
pub fn read_term(dir: &Path) -> Result<u64> {
    let path = term_path(dir);
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(StoreError::io_at(&path, e)),
    };
    let raw: [u8; 8] = match bytes.as_slice().try_into() {
        Ok(raw) => raw,
        Err(_) => {
            return Err(StoreError::io_at(
                &path,
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("term file must be exactly 8 bytes, found {}", bytes.len()),
                ),
            ))
        }
    };
    Ok(u64::from_le_bytes(raw))
}

/// Durably records `term` as the fencing term of the store under `dir`
/// (atomic write: temp file, fsync, rename, directory fsync).
pub fn write_term(dir: &Path, term: u64) -> Result<()> {
    write_atomic(&term_path(dir), &term.to_le_bytes())
}

/// One WAL segment's identity for anti-entropy: peers compare these to
/// find where their logs diverge without shipping frame data.
///
/// Two segments with equal `(start_clock, bytes, crc)` hold the same
/// sealed frames; any difference — content, length, or existence — marks
/// the divergence point, and everything from that segment's `start_clock`
/// on must be considered suspect on the side that is not the primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentDigest {
    /// Clock of the segment's first frame (its `wal-<start>` name).
    pub start_clock: u64,
    /// Total file length in bytes, header included.
    pub bytes: u64,
    /// CRC-32C over the entire file contents.
    pub crc: u32,
}

/// Digests every segment under `dir`, ascending by start clock — the
/// anti-entropy exchange payload. Safe against a live writer: a segment
/// still being appended simply digests its current prefix, which compares
/// unequal and lands on the divergent-suffix path (re-shipping frames the
/// subscriber would have received anyway).
pub fn segment_digests(dir: &Path) -> Result<Vec<SegmentDigest>> {
    let mut out = Vec::new();
    for (start_clock, path) in list_segments(dir)? {
        // Pruned between listing and read (checkpoint): skip, the peer
        // falls back to snapshot backfill exactly as the feeder does.
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(StoreError::io_at(&path, e)),
        };
        out.push(SegmentDigest {
            start_clock,
            bytes: bytes.len() as u64,
            crc: codec::crc32(&bytes),
        });
    }
    Ok(out)
}

/// Removes every segment starting at or after `clock` and every snapshot
/// taken after `clock` — the anti-entropy repair a deposed primary
/// applies before rejoining as a replica, discarding its unreplicated
/// (and possibly forked) tail. Returns the removed paths. The caller
/// must not have a store attached to `dir`.
pub fn truncate_history_from(dir: &Path, clock: u64) -> Result<Vec<PathBuf>> {
    let mut removed = Vec::new();
    for (start, path) in list_segments(dir)? {
        if start >= clock {
            fs::remove_file(&path).map_err(|e| StoreError::io_at(&path, e))?;
            removed.push(path);
        }
    }
    for (snap_clock, path) in list_snapshots(dir)? {
        if snap_clock > clock {
            fs::remove_file(&path).map_err(|e| StoreError::io_at(&path, e))?;
            removed.push(path);
        }
    }
    if !removed.is_empty() {
        sync_dir(dir)?;
    }
    Ok(removed)
}

/// Fsyncs a directory so freshly created/renamed/removed entries survive
/// power loss (file-data fsync alone does not make the *name* durable).
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    let handle = fs::File::open(dir).map_err(|e| StoreError::io_at(dir, e))?;
    handle.sync_all().map_err(|e| StoreError::io_at(dir, e))
}

/// Errors unless `dir` is free of store files — shared guard of
/// `Store::create_durable*` and `Store::save_durable`.
pub(crate) fn ensure_vacant(dir: &Path) -> Result<()> {
    if !list_snapshots(dir)?.is_empty() || !list_segments(dir)?.is_empty() {
        return Err(StoreError::io_at(
            dir,
            std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "directory already holds a durable store; use Store::open",
            ),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// The store-side WAL writer: owns the active segment, rotates, and
/// poisons itself on the first write failure (a partial frame may be on
/// disk; only a reopen-with-recovery can re-establish a clean tail).
pub(crate) struct Wal {
    dir: PathBuf,
    options: DurabilityOptions,
    io: Box<dyn WalIo>,
    active: Box<dyn WalFile>,
    active_path: PathBuf,
    active_bytes: u64,
    poisoned: bool,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("options", &self.options)
            .field("active_path", &self.active_path)
            .field("active_bytes", &self.active_bytes)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl Wal {
    /// Opens the writer over `dir`, continuing `resume` (a segment that
    /// survived recovery with its current length) or creating a fresh
    /// segment starting at `clock`.
    pub(crate) fn open(
        dir: &Path,
        options: DurabilityOptions,
        mut io: Box<dyn WalIo>,
        resume: Option<(PathBuf, u64)>,
        clock: u64,
    ) -> Result<Self> {
        let (active_path, active_bytes, header) = match resume {
            Some((path, len)) => (path, len, None),
            None => (
                segment_path(dir, clock),
                0,
                Some(codec::encode_wal_header(clock)),
            ),
        };
        let mut active = io
            .open_segment(&active_path)
            .map_err(|e| StoreError::io_at(&active_path, e))?;
        let mut active_bytes = active_bytes;
        if let Some(header) = header {
            active
                .append(&header)
                .map_err(|e| StoreError::io_at(&active_path, e))?;
            if options.fsync {
                active
                    .sync()
                    .map_err(|e| StoreError::io_at(&active_path, e))?;
                // The segment's *name* must be durable too.
                sync_dir(dir)?;
            }
            active_bytes = header.len() as u64;
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            options,
            io,
            active,
            active_path,
            active_bytes,
            poisoned: false,
        })
    }

    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    pub(crate) fn options(&self) -> DurabilityOptions {
        self.options
    }

    /// Logs the mutation that will move the clock from `clock` to
    /// `clock + 1`. Must be called *before* the in-memory mutation.
    pub(crate) fn append(&mut self, record: &WalRecord, clock: u64) -> Result<()> {
        if self.poisoned {
            return Err(StoreError::WalPoisoned);
        }
        if self.active_bytes >= self.options.segment_max_bytes {
            self.rotate(clock)?;
        }
        let frame = codec::encode_frame(record);
        if let Err(e) = self.active.append(&frame) {
            // The frame may be partially on disk; refuse further appends
            // so the torn tail stays the *last* thing in the log.
            self.poisoned = true;
            return Err(StoreError::io_at(&self.active_path, e));
        }
        self.active_bytes += frame.len() as u64;
        if self.options.fsync {
            if let Err(e) = self.active.sync() {
                self.poisoned = true;
                return Err(StoreError::io_at(&self.active_path, e));
            }
        }
        Ok(())
    }

    /// Starts a fresh segment whose first frame will be `clock`. Any
    /// failure poisons the writer: a partially written header would
    /// otherwise be appended-after on retry, corrupting the segment from
    /// birth.
    pub(crate) fn rotate(&mut self, clock: u64) -> Result<()> {
        if self.poisoned {
            return Err(StoreError::WalPoisoned);
        }
        let path = segment_path(&self.dir, clock);
        if path == self.active_path {
            // The active segment already starts at `clock` (and therefore
            // holds no frames yet — frames would have advanced the
            // clock). Reopening it would append a second header into the
            // frame stream; there is nothing to rotate away from.
            return Ok(());
        }
        match self.rotate_inner(&path, clock) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn rotate_inner(&mut self, path: &Path, clock: u64) -> Result<()> {
        let mut file = self
            .io
            .open_segment(path)
            .map_err(|e| StoreError::io_at(path, e))?;
        let header = codec::encode_wal_header(clock);
        file.append(&header)
            .map_err(|e| StoreError::io_at(path, e))?;
        if self.options.fsync {
            file.sync().map_err(|e| StoreError::io_at(path, e))?;
            sync_dir(&self.dir)?;
        }
        self.active = file;
        self.active_path = path.to_path_buf();
        self.active_bytes = header.len() as u64;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Why replay stopped before a segment's physical end.
#[derive(Debug, Clone)]
pub struct Truncation {
    /// The segment holding the first invalid frame.
    pub segment: PathBuf,
    /// Byte offset of the first invalid frame within that segment.
    pub offset: u64,
    /// Bytes dropped from that segment (and any later segments entirely).
    pub dropped_bytes: u64,
    /// Human-readable cause: a torn tail or a named corruption.
    pub reason: String,
}

/// What recovery (any of the `Store::open*` constructors) found and
/// did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// The snapshot recovery started from: path and its clock.
    pub snapshot: Option<(PathBuf, u64)>,
    /// Newer snapshots that failed to decode and were skipped.
    pub corrupt_snapshots: Vec<PathBuf>,
    /// Segments whose frames were scanned.
    pub segments_scanned: usize,
    /// Frames replayed on top of the snapshot.
    pub records_replayed: u64,
    /// The torn/corrupt point the log was truncated at, if any (in
    /// read-only recovery: *would* be truncated at).
    pub truncated: Option<Truncation>,
    /// Unreachable segments (beyond a truncation or clock gap), removed
    /// when repairing and merely identified in read-only recovery.
    pub orphaned_segments: Vec<PathBuf>,
    /// The recovered logical clock.
    pub clock: u64,
}

/// Where [`recover`] applies replayed records: the store layer implements
/// this over its in-memory state. An `Err` marks the record semantically
/// invalid (a reference to a record that does not exist, a clock
/// mismatch, …), which recovery treats exactly like a corrupt frame —
/// truncate there and keep the valid prefix.
pub(crate) trait ReplayTarget {
    /// Applies one recovered record.
    fn apply(&mut self, record: WalRecord) -> std::result::Result<(), String>;
}

/// One scanned segment: its header clock and decoded frames, plus how it
/// ended.
struct SegmentScan {
    start_clock: u64,
    /// `(byte offset, record)` for each complete frame, in order.
    frames: Vec<(u64, WalRecord)>,
    end: SegmentEnd,
}

enum SegmentEnd {
    /// The file ends exactly at a frame boundary.
    Clean,
    /// Invalid data begins at this byte offset.
    Invalid { offset: u64, reason: String },
}

/// Scans one segment file. A bad or short header is reported as invalid
/// at offset 0 (the whole segment is dropped).
fn scan_segment(path: &Path) -> Result<SegmentScan> {
    let bytes = fs::read(path).map_err(|e| StoreError::io_at(path, e))?;
    let start_clock = match codec::decode_wal_header(&bytes) {
        Ok(clock) => clock,
        Err(e) => {
            return Ok(SegmentScan {
                start_clock: 0,
                frames: Vec::new(),
                end: SegmentEnd::Invalid {
                    offset: 0,
                    reason: format!("segment header: {e}"),
                },
            })
        }
    };
    let mut frames = Vec::new();
    let mut pos = codec::WAL_HEADER_LEN;
    let end = loop {
        if pos == bytes.len() {
            break SegmentEnd::Clean;
        }
        match codec::decode_frame(&bytes[pos..]) {
            FrameDecode::Complete { record, consumed } => {
                frames.push((pos as u64, record));
                pos += consumed;
            }
            FrameDecode::Torn => {
                break SegmentEnd::Invalid {
                    offset: pos as u64,
                    reason: "torn frame (bytes end mid-frame)".to_string(),
                }
            }
            FrameDecode::Corrupt(e) => {
                break SegmentEnd::Invalid {
                    offset: pos as u64,
                    reason: format!("corrupt frame: {e}"),
                }
            }
        }
    };
    Ok(SegmentScan {
        start_clock,
        frames,
        end,
    })
}

/// Truncates `path` to `len` bytes, dropping a torn/corrupt tail.
fn truncate_file(path: &Path, len: u64) -> Result<()> {
    let file = fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StoreError::io_at(path, e))?;
    file.set_len(len).map_err(|e| StoreError::io_at(path, e))?;
    file.sync_data().map_err(|e| StoreError::io_at(path, e))?;
    Ok(())
}

/// Where the writer resumes appending after recovery: the surviving
/// tail segment's path and valid length.
pub(crate) type ResumePoint = Option<(PathBuf, u64)>;

/// Recovers the durable state under `dir`: builds a replay target from
/// the newest decodable snapshot (via `init`), then applies the longest
/// valid, contiguous run of logged records after it. With `repair` set,
/// torn or corrupt tails are physically truncated and unreachable
/// segments removed (required before attaching a writer); without it the
/// directory is left untouched — read-only recovery — and the report
/// merely describes what a repair would do. Returns the target, the
/// [`ResumePoint`] the writer should continue at (`None` when not
/// repairing), and the report. See the module docs for the protocol.
pub(crate) fn recover<T: ReplayTarget>(
    dir: &Path,
    repair: bool,
    init: impl FnOnce(codec::SnapshotData) -> Result<T>,
) -> Result<(T, ResumePoint, RecoveryReport)> {
    let mut report = RecoveryReport::default();

    // Newest decodable snapshot wins; corrupt ones are skipped, not fatal.
    let mut snapshots = list_snapshots(dir)?;
    snapshots.reverse();
    if snapshots.is_empty() {
        return Err(StoreError::NoSnapshot {
            dir: dir.to_path_buf(),
        });
    }
    let mut chosen = None;
    for (clock, path) in snapshots {
        let Ok(bytes) = fs::read(&path) else {
            report.corrupt_snapshots.push(path);
            continue;
        };
        match codec::decode(&bytes) {
            Ok(data) if data.clock == clock => {
                chosen = Some((path, data));
                break;
            }
            _ => report.corrupt_snapshots.push(path),
        }
    }
    let Some((snap_path, snapshot)) = chosen else {
        return Err(StoreError::NoSnapshot {
            dir: dir.to_path_buf(),
        });
    };
    report.snapshot = Some((snap_path, snapshot.clock));
    let snapshot_clock = snapshot.clock;
    let mut target = init(snapshot)?;

    // Replay segments in clock order, keeping only the contiguous run.
    let mut next_clock = snapshot_clock;
    let mut resume: Option<(PathBuf, u64)> = None;
    let mut stopped = false;
    for (name_clock, path) in list_segments(dir)? {
        if stopped {
            // Unreachable after a truncation or gap: a later writer could
            // otherwise collide with or resurrect these frames.
            if repair {
                fs::remove_file(&path).map_err(|e| StoreError::io_at(&path, e))?;
            }
            report.orphaned_segments.push(path);
            continue;
        }
        let scan = scan_segment(&path)?;
        report.segments_scanned += 1;

        // A segment that cannot even state its start clock (torn or
        // corrupt header) holds nothing recoverable: remove it and stop.
        if matches!(scan.end, SegmentEnd::Invalid { offset: 0, .. }) {
            let SegmentEnd::Invalid { reason, .. } = scan.end else {
                unreachable!()
            };
            let len = fs::metadata(&path)
                .map_err(|e| StoreError::io_at(&path, e))?
                .len();
            report.truncated = Some(Truncation {
                segment: path.clone(),
                offset: 0,
                dropped_bytes: len,
                reason,
            });
            if repair {
                fs::remove_file(&path).map_err(|e| StoreError::io_at(&path, e))?;
            }
            report.orphaned_segments.push(path);
            stopped = true;
            continue;
        }

        // A renamed file or a start clock ahead of contiguous history
        // makes this segment (and everything after) unreachable.
        if scan.start_clock != name_clock || scan.start_clock > next_clock {
            if repair {
                fs::remove_file(&path).map_err(|e| StoreError::io_at(&path, e))?;
            }
            report.orphaned_segments.push(path);
            stopped = true;
            continue;
        }

        // Apply frames past the snapshot's clock; earlier ones are
        // already folded into the snapshot. Within a segment the k-th
        // frame has clock `start + k`, so once replay catches up the
        // frames are exactly contiguous.
        let frame_count = scan.frames.len() as u64;
        let mut replay_failure: Option<(u64, String)> = None;
        for (i, (offset, record)) in scan.frames.into_iter().enumerate() {
            let frame_clock = scan.start_clock + i as u64;
            if frame_clock < next_clock {
                continue;
            }
            debug_assert_eq!(frame_clock, next_clock);
            match target.apply(record) {
                Ok(()) => {
                    report.records_replayed += 1;
                    next_clock += 1;
                }
                Err(reason) => {
                    replay_failure = Some((offset, format!("invalid record: {reason}")));
                    break;
                }
            }
        }
        let (end, end_clock) = match replay_failure {
            // A semantically invalid record truncates like a corrupt
            // frame; everything applied before it ends at `next_clock`.
            Some((offset, reason)) => (SegmentEnd::Invalid { offset, reason }, next_clock),
            None => (scan.end, scan.start_clock + frame_count),
        };

        match end {
            SegmentEnd::Clean => {
                // The writer may only resume a segment whose frames end
                // exactly at the recovered clock; an older, fully
                // snapshot-covered segment stays behind untouched and a
                // fresh segment is started instead.
                if end_clock == next_clock {
                    let len = fs::metadata(&path)
                        .map_err(|e| StoreError::io_at(&path, e))?
                        .len();
                    resume = Some((path, len));
                } else {
                    resume = None;
                }
            }
            SegmentEnd::Invalid { offset, reason } => {
                let len = fs::metadata(&path)
                    .map_err(|e| StoreError::io_at(&path, e))?
                    .len();
                if repair {
                    truncate_file(&path, offset)?;
                }
                report.truncated = Some(Truncation {
                    segment: path.clone(),
                    offset,
                    dropped_bytes: len.saturating_sub(offset),
                    reason,
                });
                resume = (end_clock == next_clock).then_some((path, offset));
                stopped = true;
            }
        }
    }

    report.clock = next_clock;
    if !repair {
        resume = None;
    }
    Ok((target, resume, report))
}

// ---------------------------------------------------------------------------
// Tail reading (replication feed)
// ---------------------------------------------------------------------------

/// A contiguous run of sealed WAL frames read from a durable store
/// directory — what a replication feeder ships per
/// `WalChunk`.
///
/// `frames` is byte-identical to the segment contents: whole sealed
/// frames (`len u32 | crc32 u32 | payload`), so every hop re-verifies
/// the same checksums the recovery path does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailChunk {
    /// Clock of the first frame in `frames`.
    pub start_clock: u64,
    /// Clock after the last frame (`start_clock` + frame count).
    pub end_clock: u64,
    /// Concatenated sealed frames, contiguous in clock.
    pub frames: Vec<u8>,
}

/// Resume state for sequential tail reading: where the previous
/// [`read_frames_with`] call stopped, so the next call can pick up with
/// a positioned read of the segment's unread suffix instead of
/// re-reading and re-decoding the whole file. Purely an optimization —
/// any stale or mismatched cursor falls back to the full scan, which
/// re-derives it.
#[derive(Debug, Clone, Default)]
pub struct TailCursor {
    /// `(segment path, byte offset of the next unread frame, its clock)`.
    at: Option<(PathBuf, u64, u64)>,
}

/// Reads up to `max_bytes` of contiguous sealed frames from `dir`,
/// starting at clock `from_clock` and stopping before `up_to` — the
/// replication feeder's read path, safe to run against a **live
/// writer** (the caller must observe the store's clock reach `up_to`
/// *before* calling, which guarantees every frame below `up_to` is
/// fully written; a torn in-flight frame beyond that merely ends the
/// chunk early).
///
/// Returns `Ok(None)` when no retained segment covers `from_clock` —
/// a checkpoint pruned that range (or the directory was never seeded) —
/// in which case the caller should fall back to
/// [`read_newest_snapshot`]. An `Ok(Some)` chunk may be empty
/// (`start_clock == end_clock`) when the covering segment holds nothing
/// new yet; at least one frame is returned otherwise, even if it alone
/// exceeds `max_bytes`.
pub fn read_frames(
    dir: &Path,
    from_clock: u64,
    up_to: u64,
    max_bytes: usize,
) -> Result<Option<TailChunk>> {
    read_frames_with(
        dir,
        from_clock,
        up_to,
        max_bytes,
        &mut TailCursor::default(),
    )
}

/// [`read_frames`] with a [`TailCursor`]: a streaming caller (one
/// feeder per subscriber, advancing monotonically) does O(chunk) work
/// per call instead of re-scanning the covering segment from its
/// header. Safe because live segments are strictly append-only — files
/// are only truncated by recovery (no writer attached) and checkpoints
/// rotate to *new* files — so a previously valid `(path, offset,
/// clock)` triple can only become invalid by deletion, which the
/// fallback full scan handles.
pub fn read_frames_with(
    dir: &Path,
    from_clock: u64,
    up_to: u64,
    max_bytes: usize,
    cursor: &mut TailCursor,
) -> Result<Option<TailChunk>> {
    if from_clock >= up_to {
        return Ok(Some(TailChunk {
            start_clock: from_clock,
            end_clock: from_clock,
            frames: Vec::new(),
        }));
    }
    // Fast path: the cursor points exactly at from_clock — read only
    // the segment's unread suffix.
    if let Some((path, offset, clock)) = cursor.at.clone() {
        if clock == from_clock {
            if let Some(chunk) = resume_segment(&path, offset, from_clock, up_to, max_bytes)? {
                if chunk.end_clock > chunk.start_clock {
                    cursor.at = Some((path, offset + chunk.frames.len() as u64, chunk.end_clock));
                    return Ok(Some(chunk));
                }
                // No progress at this offset: either the live tail has
                // nothing new yet, or this segment ended and a later
                // one continues the history. Only the full scan can
                // tell — fall through.
            }
        }
    }
    // The newest segment starting at or before from_clock is the only
    // one that can hold it (later frames of an earlier segment would
    // overlap a later segment's start, which the writer never produces).
    let segments = list_segments(dir)?;
    let Some((name_clock, path)) = segments
        .into_iter()
        .rev()
        .find(|&(start, _)| start <= from_clock)
    else {
        return Ok(None);
    };
    // The file can vanish between the listing and the read when a
    // checkpoint prunes it — that is the snapshot-fallback case, not an
    // error.
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io_at(&path, e)),
    };
    let Ok(start_clock) = codec::decode_wal_header(&bytes) else {
        return Ok(None); // unreadable header: let recovery-grade tooling repair
    };
    if start_clock != name_clock {
        return Ok(None); // renamed file; recovery treats it as unreachable
    }
    let mut clock = start_clock;
    let mut pos = codec::WAL_HEADER_LEN;
    let mut chunk_start = pos;
    let mut collected = 0usize;
    // Skip fully past frames below from_clock, then collect whole sealed
    // frames until the clock, byte, or damage bound is hit.
    loop {
        if clock >= up_to || (collected > 0 && collected >= max_bytes) {
            break;
        }
        match codec::open_frame(&bytes[pos..]) {
            RawFrame::Complete { consumed, .. } => {
                pos += consumed;
                clock += 1;
                if clock <= from_clock {
                    chunk_start = pos;
                } else {
                    collected += consumed;
                }
            }
            // A torn or corrupt tail ends what this segment can ship;
            // recovery owns deciding what it means.
            RawFrame::Torn | RawFrame::Corrupt(_) => break,
        }
    }
    if clock < from_clock {
        // The segment's frames end before from_clock: the range is not
        // covered here (a gap recovery would repair) — snapshot fallback.
        cursor.at = None;
        return Ok(None);
    }
    cursor.at = Some((path, pos as u64, clock));
    Ok(Some(TailChunk {
        start_clock: from_clock,
        end_clock: clock.max(from_clock),
        frames: bytes[chunk_start..pos].to_vec(),
    }))
}

/// The [`read_frames_with`] fast path: decode sealed frames from a
/// known `(offset, clock)` position in one segment file, reading only
/// the unread suffix. `Ok(None)` when the file is gone (pruned) —
/// caller falls back to the full scan.
fn resume_segment(
    path: &Path,
    offset: u64,
    from_clock: u64,
    up_to: u64,
    max_bytes: usize,
) -> Result<Option<TailChunk>> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = match fs::File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io_at(path, e)),
    };
    file.seek(SeekFrom::Start(offset))
        .map_err(|e| StoreError::io_at(path, e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| StoreError::io_at(path, e))?;
    let mut clock = from_clock;
    let mut pos = 0usize;
    loop {
        if clock >= up_to || (pos > 0 && pos >= max_bytes) {
            break;
        }
        match codec::open_frame(&bytes[pos..]) {
            RawFrame::Complete { consumed, .. } => {
                pos += consumed;
                clock += 1;
            }
            RawFrame::Torn | RawFrame::Corrupt(_) => break,
        }
    }
    bytes.truncate(pos);
    Ok(Some(TailChunk {
        start_clock: from_clock,
        end_clock: clock,
        frames: bytes,
    }))
}

/// Reads the newest decodable snapshot in `dir`, returning its clock and
/// raw bytes — the replication feeder's backfill source for subscribers
/// whose clock predates the retained log.
pub fn read_newest_snapshot(dir: &Path) -> Result<(u64, Vec<u8>)> {
    let mut snapshots = list_snapshots(dir)?;
    snapshots.reverse();
    for (clock, path) in snapshots {
        let Ok(bytes) = fs::read(&path) else { continue };
        if matches!(codec::decode(&bytes), Ok(data) if data.clock == clock) {
            return Ok((clock, bytes));
        }
    }
    Err(StoreError::NoSnapshot {
        dir: dir.to_path_buf(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_roundtrip_through_listing() {
        let dir = std::env::temp_dir().join(format!("wal-paths-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let snap = snapshot_path(&dir, 0x2a);
        let seg = segment_path(&dir, 7);
        fs::write(&snap, b"x").unwrap();
        fs::write(&seg, b"y").unwrap();
        fs::write(dir.join("unrelated.txt"), b"z").unwrap();
        assert_eq!(list_snapshots(&dir).unwrap(), vec![(0x2a, snap)]);
        assert_eq!(list_segments(&dir).unwrap(), vec![(7, seg)]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_options_favor_safety() {
        let options = DurabilityOptions::default();
        assert!(options.fsync, "fsync must default on");
        assert!(options.segment_max_bytes >= 1 << 20);
    }

    fn tail_test_store(dir: &Path, segment_max_bytes: u64) -> crate::store::Store {
        let store = crate::store::Store::create_durable_with(
            dir,
            &["Public"],
            &[],
            DurabilityOptions {
                segment_max_bytes,
                fsync: false,
            },
        )
        .unwrap();
        let public = store.predicate("Public").unwrap();
        for i in 0..40 {
            store.append_node(
                format!("n{i}"),
                crate::record::NodeKind::Data,
                surrogate_core::feature::Features::new(),
                public,
            );
        }
        store
    }

    #[test]
    fn tail_reader_ships_contiguous_sealed_frames_across_rotation() {
        let dir = std::env::temp_dir().join(format!("wal-tail-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // A tiny segment bound forces several rotations mid-workload.
        let store = tail_test_store(&dir, 256);
        let clock = store.clock();
        assert!(
            list_segments(&dir).unwrap().len() > 1,
            "workload must span segments"
        );

        // Drain the tail in small chunks, as a feeder would — through
        // the resume cursor, so the fast path is what gets proven.
        let mut next = 7; // start mid-history: a warm subscriber
        let mut cursor = TailCursor::default();
        let mut frames = Vec::new();
        while next < clock {
            let chunk = read_frames_with(&dir, next, clock, 128, &mut cursor)
                .unwrap()
                .unwrap();
            assert_eq!(chunk.start_clock, next, "chunks are contiguous");
            assert!(chunk.end_clock > next, "live history always progresses");
            frames.extend_from_slice(&chunk.frames);
            next = chunk.end_clock;
        }

        // The shipped bytes decode to exactly the records after clock 7.
        let mut pos = 0;
        let mut decoded = 0u64;
        while pos < frames.len() {
            match codec::decode_frame(&frames[pos..]) {
                FrameDecode::Complete { record, consumed } => {
                    let WalRecord::AppendNode(node) = record else {
                        panic!("workload appends nodes only")
                    };
                    assert_eq!(node.created_at, 7 + decoded, "clock-contiguous");
                    pos += consumed;
                    decoded += 1;
                }
                other => panic!("shipped frames must be whole: {other:?}"),
            }
        }
        assert_eq!(decoded, clock - 7);

        // Caught-up reads return an empty chunk, not a fallback.
        let caught_up = read_frames(&dir, clock, clock, 128).unwrap().unwrap();
        assert_eq!(caught_up.start_clock, caught_up.end_clock);
        assert!(caught_up.frames.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_reader_falls_back_to_snapshot_after_checkpoint() {
        let dir = std::env::temp_dir().join(format!("wal-tail-ckpt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = tail_test_store(&dir, 4 << 20);
        let clock = store.clock();
        store.checkpoint().unwrap();

        // The pre-checkpoint range is pruned: not coverable by frames…
        assert_eq!(read_frames(&dir, 0, clock, 1 << 20).unwrap(), None);
        // …but the newest snapshot carries the whole state.
        let (snap_clock, bytes) = read_newest_snapshot(&dir).unwrap();
        assert_eq!(snap_clock, clock);
        assert_eq!(codec::decode(&bytes).unwrap().clock, clock);

        // From the checkpoint clock onward, frames flow again.
        let public = store.predicate("Public").unwrap();
        store.append_node(
            "post",
            crate::record::NodeKind::Data,
            surrogate_core::feature::Features::new(),
            public,
        );
        let chunk = read_frames(&dir, clock, clock + 1, 1 << 20)
            .unwrap()
            .unwrap();
        assert_eq!((chunk.start_clock, chunk.end_clock), (clock, clock + 1));
        fs::remove_dir_all(&dir).ok();
    }
}
