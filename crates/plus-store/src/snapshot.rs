//! The per-epoch CSR snapshot index: the dense, read-only form of a
//! materialized store that the protection hot path runs against.
//!
//! A [`Materialized`] store is hash-map-shaped: adjacency behind
//! `Graph`'s edge index, markings behind `MarkingStore` lookups. That is
//! the right shape for ingest, but the protection algorithms (account
//! generation, permitted-reach BFS, lineage traversal) touch every edge
//! many times per request — at serving scale the hashing dominates. A
//! [`SnapshotIndex`] is built **once per epoch** when the service
//! materializes a [`Snapshot`](crate::Snapshot), and every protection
//! against that epoch then runs over flat arrays:
//!
//! * a compressed-sparse-row adjacency ([`Csr`]) with both edge
//!   directions split into `offsets + targets + edge-id` arrays, so
//!   out- and in-walks are cache-linear and per-edge side tables are
//!   indexed by edge id instead of hashed `(from, to)` pairs;
//! * an interned per-node [`PrivilegeId`] array ([`node_lowest`]) — the
//!   `lowest(n)` predicate of every record, addressable by `NodeId`
//!   index without touching node payloads.
//!
//! The index is immutable and cheap to share: the service stores it
//! inside the epoch's `Snapshot`, and account generation borrows it via
//! `ProtectionContext::with_csr`. An epoch bump simply builds a new
//! index; nothing is patched in place.
//!
//! [`node_lowest`]: SnapshotIndex::node_lowest

use surrogate_core::graph::{Csr, NodeId};
use surrogate_core::privilege::PrivilegeId;

use crate::store::Materialized;

/// The dense per-epoch index of one materialized store. See the
/// [module docs](self) for layout and sharing semantics.
#[derive(Debug, Clone)]
pub struct SnapshotIndex {
    csr: Csr,
    node_lowest: Vec<PrivilegeId>,
}

impl SnapshotIndex {
    /// Builds the index from a materialization in `O(V + E)` — one pass
    /// over the insertion-ordered edge list, no hashing.
    pub fn build(materialized: &Materialized) -> SnapshotIndex {
        let graph = &materialized.graph;
        let node_lowest = graph.node_ids().map(|n| graph.node(n).lowest).collect();
        SnapshotIndex {
            csr: Csr::build(graph),
            node_lowest,
        }
    }

    /// The CSR adjacency (both directions, edge-id-carrying).
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// `lowest(n)` per node, indexed by [`NodeId::index`]. Interned here
    /// so visibility planning can scan a flat `PrivilegeId` array.
    pub fn node_lowest(&self) -> &[PrivilegeId] {
        &self.node_lowest
    }

    /// The `lowest` predicate of one node.
    pub fn lowest(&self, node: NodeId) -> PrivilegeId {
        self.node_lowest[node.index()]
    }

    /// Number of nodes indexed.
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// Number of directed edges indexed.
    pub fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EdgeKind, NodeKind};
    use crate::store::Store;
    use surrogate_core::feature::Features;

    #[test]
    fn index_mirrors_the_materialization() {
        let store = Store::new(&["Public", "High"], &[(1, 0)]).unwrap();
        let public = store.predicate("Public").unwrap();
        let high = store.predicate("High").unwrap();
        let a = store.append_node("a", NodeKind::Agent, Features::new(), high);
        let b = store.append_node("b", NodeKind::Data, Features::new(), public);
        let c = store.append_node("c", NodeKind::Data, Features::new(), public);
        store.append_edge(a, b, EdgeKind::InputTo).unwrap();
        store.append_edge(b, c, EdgeKind::GeneratedBy).unwrap();
        let materialized = store.materialize();
        let index = SnapshotIndex::build(&materialized);
        assert_eq!(index.node_count(), 3);
        assert_eq!(index.edge_count(), 2);
        assert_eq!(index.lowest(NodeId(0)), high);
        assert_eq!(index.lowest(NodeId(1)), public);
        assert_eq!(index.node_lowest().len(), 3);
        for id in 0..index.edge_count() {
            assert_eq!(index.csr().endpoints(id), materialized.graph.edge_at(id));
        }
    }
}
