//! The query-serving wire protocol: what crosses the trust boundary
//! between a data owner's store and a remote consumer.
//!
//! The paper's deployment sketch (§6.4) and the whole protection argument
//! assume the unprotected graph never leaves the owner's process: remote
//! consumers only ever see [`QueryResponse`] rows computed through a
//! protected account. This module defines the messages of that boundary
//! and their binary codecs; the `server` crate speaks them over TCP.
//!
//! # Framing
//!
//! Every message travels in the same frame convention as the write-ahead
//! log ([`codec`](crate::codec) module):
//!
//! ```text
//! frame: len u32 | crc32 u32 (IEEE, over payload) | payload (len bytes)
//! ```
//!
//! with the same `MAX_FRAME_LEN` sanity bound. A frame whose length field
//! exceeds the bound, whose checksum fails, or whose payload does not
//! decode to exactly one message is **malformed** — a server hangs up on
//! it rather than guessing (a typed [`Response::Error`] is sent
//! best-effort first).
//!
//! # Messages
//!
//! Payloads are tagged little-endian structures (strings are `u32` length
//! + UTF-8, like snapshots):
//!
//! ```text
//! request:  tag u8 — 0 Hello         { version u16, consumer str,
//!                                      u16 n { pred-name str }×n }
//!                    1 Query         { query-request }
//!                    2 Batch         { u32 n (≤ MAX_BATCH), query-request ×n }
//!                    3 Epoch         { }
//!                    4 Checkpoint    { }
//!                    5 Subscribe     { from_clock u64 }
//!                    6 ReplicaStatus { }
//!                    7 LogDigests    { }
//!                    8 Promote       { }
//!                    9 Write         { write-op }
//!                   10 ShardStatus   { }
//!
//! response: tag u8 — 0 Hello         { version u16, epoch u64, nodes u64,
//!                                      shard_count u32,
//!                                      shard_index (0 | 1 u32),
//!                                      u16 n { pred-name str }×n,
//!                                      u32 p (≤ MAX_SHARDS)
//!                                      { peer-addr str }×p }
//!                    1 Query         { query-response }
//!                    2 Batch         { u32 n, query-response ×n }
//!                    3 Epoch         { epoch u64 }
//!                    4 Checkpoint    { clock u64, snapshot_bytes u64,
//!                                      pruned_segments u64, pruned_snapshots u64 }
//!                    5 Error         { kind u8, message str }
//!                    6 WalChunk      { start_clock u64, primary_epoch u64,
//!                                      term u64,
//!                                      snapshot (0 | 1 u32-len bytes),
//!                                      frames u32-len bytes (≤ MAX_WAL_CHUNK) }
//!                    7 ReplicaStatus { role u8, local_epoch u64,
//!                                      primary_epoch u64, term u64,
//!                                      connected u8, error (0 | 1 str),
//!                                      primary_addr (0 | 1 str) }
//!                    8 LogDigests    { term u64, u32 n (≤ MAX_SEGMENT_DIGESTS)
//!                                      { start_clock u64, bytes u64, crc u32 }×n }
//!                    9 Promoted      { term u64 }
//!                   10 Written       { clock u64, id (0 | 1 u32) }
//!                   11 ShardStatus   { count u32, index (0 | 1 u32),
//!                                      u32 n (≤ MAX_SHARDS) { epoch u64 }×n,
//!                                      u32 s (≤ MAX_SHARDS)
//!                                      { u32 r (≤ MAX_REPLICAS)
//!                                        { replica-addr str }×r }×s }
//!
//! query-request:  root u32 | direction u8 (0 back, 1 fwd, 2 both) |
//!                 max_depth u32 | strategy u8 (0 surrogate, 1 hide,
//!                 2 naive) | predicate (0 | 1 u16)
//! query-response: epoch u64 | root u32 | u32 n { record u32, label str,
//!                 depth u32, surrogate u8 }×n |
//!                 u32 m (≤ MAX_SHARDS) { shard-epoch u64 }×m
//! write-op:       tag u8 — 0 AppendNode  { label str, kind u8,
//!                                          lowest u16, features }
//!                          1 AppendEdge  { from u32, to u32, kind u8 }
//!                          2 ApplyPolicy { policy statement, as in
//!                                          snapshots }
//! ```
//!
//! The Hello exchange authenticates nothing (credential generation is out
//! of scope for the paper, §2): the client *names* the predicates it
//! claims, the server resolves them against its lattice and derives the
//! [`Consumer`](surrogate_core::credential::Consumer). An empty claim set
//! is the Public consumer. The server's Hello answers with its protocol
//! version, current epoch, record count, and the lattice's predicate
//! names — everything a client needs to phrase requests, and nothing
//! about the unprotected graph.
//!
//! # Replication messages
//!
//! [`Request::Subscribe`] converts a connection into a one-way
//! replication stream: the server (a **primary** fronting a durable
//! store) answers with a run of [`Response::WalChunk`] frames, each
//! carrying sealed write-ahead-log frames — the exact bytes of the
//! primary's segments, re-checked by the same `len | crc32 | payload`
//! rules at every hop — plus the primary's epoch at send time. A cold
//! subscriber (`from_clock == 0`), or one whose clock predates the
//! primary's retained log (a checkpoint pruned it), first receives a
//! chunk whose `snapshot` field holds full snapshot bytes to install
//! before any frame applies.
//!
//! **These messages cross the trust boundary in the other direction**:
//! WAL frames carry *raw* records — original labels, features, policy —
//! not protected views. A server therefore refuses `Subscribe` unless
//! its operator opted in (`--allow-replication`), and replication links
//! belong inside the owner's trust domain, next to the store, never on
//! a consumer-facing socket.
//!
//! [`Request::ReplicaStatus`] is consumer-safe: it reports only epochs
//! and connectivity ([`ReplicaStatus`]), letting clients and operators
//! measure a replica's lag without seeing any data.
//!
//! # Fencing
//!
//! Every [`Response::WalChunk`] carries the sender's **fencing term** —
//! a durable counter bumped exactly once per promotion. A store refuses
//! frames stamped with a term lower than one it has observed, so a
//! deposed primary that comes back after a `spgraph promote` cannot
//! extend (fork) anyone's history: its chunks die with a typed
//! `DeposedPrimary` error instead of being applied. The anti-entropy
//! exchange ([`Request::LogDigests`]) closes the loop in the other
//! direction: the deposed primary compares per-segment digests against
//! the new primary, truncates its unreplicated tail, and rejoins as a
//! replica.
//!
//! # Sharding messages
//!
//! A partitioned deployment splits the keyspace across `N` shard
//! primaries (shard `i` owns ids ≡ `i` mod `N`; see
//! [`surrogate_core::shard`]). [`Request::Write`] carries one mutation —
//! a [`WriteOp`] — to the shard that owns its routing id; a mis-routed
//! write is refused with [`WireErrorKind::WrongShard`], whose message is
//! the owning shard's address when known (a redirect, like
//! [`NotWritable`](WireErrorKind::NotWritable)). [`Request::ShardStatus`]
//! asks any server where it sits in the topology and how much of each
//! shard's history it reflects; consumer-safe, like `ReplicaStatus`.
//!
//! Every [`QueryResponse`] carries a per-shard **epoch vector** next to
//! its scalar epoch: empty from an unsharded server; one live slot from
//! a shard primary; the full vector from a scatter-gather server, whose
//! scalar epoch is the vector's sum. A gather that has lost a feed
//! refuses queries with [`WireErrorKind::ShardUnavailable`] rather than
//! serving an answer with a silent gap in it.

use bytes::{BufMut, BytesMut};
use surrogate_core::account::Strategy;
use surrogate_core::feature::Features;
use surrogate_core::privilege::PrivilegeId;
use surrogate_core::query::Direction;

use crate::codec::{put_features, put_policy, put_str, Reader};
use crate::error::CodecError;
use crate::record::{EdgeKind, NodeKind, PolicyStatement, RecordId};
use crate::service::{ProtectedLineageRow, QueryRequest, QueryResponse};
use crate::store::CheckpointStats;
use crate::wal::SegmentDigest;

/// Version of the wire protocol spoken by this build. A server answers a
/// mismatched [`Request::Hello`] with [`WireErrorKind::VersionMismatch`]
/// and hangs up.
///
/// Version 2 added the replication messages ([`Request::Subscribe`],
/// [`Response::WalChunk`], [`Request::ReplicaStatus`]); version-1 peers
/// would treat their tags as malformed frames, so the bump keeps the
/// failure a clean handshake refusal instead of a mid-stream hangup.
///
/// Version 3 added [`WireErrorKind::Overloaded`] — the admission-control
/// refusal a server sheds load with. Error-kind tags are part of the
/// frame (an unknown tag is a malformed frame), so the new kind needs
/// the bump for the same reason the replication tags did.
///
/// Version 4 added failover: a fencing `term` field in
/// [`Response::WalChunk`] and [`ReplicaStatus`] (and a `primary_addr`
/// redirect hint in the latter), the anti-entropy exchange
/// ([`Request::LogDigests`] / [`Response::LogDigests`]), live promotion
/// ([`Request::Promote`] / [`Response::Promoted`]), and
/// [`WireErrorKind::NotWritable`] — the typed refusal a read-only
/// replica answers write-path requests with, carrying the writable
/// primary's address so clients can fail over without restart.
///
/// Version 5 added sharding: [`Request::Write`] / [`Response::Written`]
/// (single-record remote mutation, routed by ownership),
/// [`Request::ShardStatus`] / [`Response::ShardStatus`] (topology and
/// the per-shard epoch vector), shard fields in the server Hello, the
/// shard-epoch vector appended to every query response, and the
/// [`WireErrorKind::WrongShard`] / [`WireErrorKind::ShardUnavailable`]
/// refusals.
///
/// Version 6 added replicated-shard topology discovery: the server
/// Hello now carries the shard primaries' addresses in shard order
/// (`peers`, empty when the server does not know its deployment's
/// topology), and [`Response::ShardStatus`] carries each shard's
/// configured replica addresses (`replicas`, bounded per shard by
/// [`MAX_REPLICAS`]) — together, everything a client or gather needs to
/// re-resolve a promoted shard primary after a failover without an
/// out-of-band directory.
pub const PROTOCOL_VERSION: u16 = 6;

/// Sanity bound on requests per [`Request::Batch`] frame; larger batches
/// are rejected at decode time so a hostile frame cannot force an
/// unbounded allocation or an unbounded amount of server work.
pub const MAX_BATCH: u32 = 1 << 14;

/// Sanity bound on the sealed-frame bytes one [`Response::WalChunk`] may
/// carry; larger declarations are rejected at decode time (the feeder
/// cuts chunks far smaller — this guards the *reader* against hostile or
/// corrupt length fields, like [`MAX_BATCH`] does for batches).
pub const MAX_WAL_CHUNK: u32 = 1 << 22;

/// Sanity bound on segment digests per [`Response::LogDigests`] frame.
/// A store would need an absurd retained log to exceed it (segments
/// rotate at megabytes each); hostile declarations beyond it are
/// rejected at decode time before any allocation.
pub const MAX_SEGMENT_DIGESTS: u32 = 1 << 20;

/// Sanity bound on the shard-epoch vectors in query responses and
/// [`Response::ShardStatus`]: no real cluster approaches a thousand
/// shards, and a hostile count beyond it is rejected at decode time
/// before any allocation.
pub const MAX_SHARDS: u32 = 1 << 10;

/// Sanity bound on the replica addresses listed *per shard* in
/// [`Response::ShardStatus`]: no shard runs hundreds of replicas, and a
/// hostile count beyond it is rejected at decode time before any
/// allocation (the whole replica table is further bounded by
/// [`MAX_SHARDS`] shards).
pub const MAX_REPLICAS: u32 = 1 << 8;

/// Every [`Request`] variant name, in tag order — the normative list
/// the wire-spec conformance test checks `docs/WIRE.md` against.
pub const REQUEST_VARIANTS: [&str; 11] = [
    "Hello",
    "Query",
    "Batch",
    "Epoch",
    "Checkpoint",
    "Subscribe",
    "ReplicaStatus",
    "LogDigests",
    "Promote",
    "Write",
    "ShardStatus",
];

/// Every [`Response`] variant name, in tag order (see
/// [`REQUEST_VARIANTS`]).
pub const RESPONSE_VARIANTS: [&str; 12] = [
    "Hello",
    "Query",
    "Batch",
    "Epoch",
    "Checkpoint",
    "Error",
    "WalChunk",
    "ReplicaStatus",
    "LogDigests",
    "Promoted",
    "Written",
    "ShardStatus",
];

/// Every [`WireErrorKind`] name, in tag order (see
/// [`REQUEST_VARIANTS`]).
pub const ERROR_KINDS: [&str; 11] = [
    "NotAuthorized",
    "UnknownStrategy",
    "UnknownPredicate",
    "NotDurable",
    "VersionMismatch",
    "BadRequest",
    "Internal",
    "Overloaded",
    "NotWritable",
    "WrongShard",
    "ShardUnavailable",
];

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens a connection: protocol version, consumer name, and the
    /// predicate names the consumer claims. Empty claims = Public.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u16,
        /// Display name of the consumer (shows up in error messages).
        consumer: String,
        /// Claimed predicate names, resolved against the server lattice.
        claims: Vec<String>,
    },
    /// One lineage query.
    Query(QueryRequest),
    /// Many lineage queries answered against one pinned epoch.
    Batch(Vec<QueryRequest>),
    /// Asks for the server's current epoch.
    Epoch,
    /// Asks the server to checkpoint its durable store.
    Checkpoint,
    /// Converts the connection into a replication stream: the server
    /// answers with [`Response::WalChunk`] frames from `from_clock`
    /// onward (a snapshot first when the clock predates the retained
    /// log, or is 0) and keeps streaming until either side hangs up.
    ///
    /// Owner-side only: the stream carries **raw** WAL records, so a
    /// server refuses this unless replication was explicitly enabled.
    Subscribe {
        /// The subscriber's local clock — the first frame it needs.
        from_clock: u64,
    },
    /// Asks for the server's replication status ([`ReplicaStatus`]).
    /// Safe for any consumer: it reveals epochs and connectivity only.
    ReplicaStatus,
    /// Asks for the server's per-segment WAL digests
    /// ([`Response::LogDigests`]) — the anti-entropy exchange a rejoining
    /// peer uses to find where its log diverged from the primary's.
    ///
    /// Owner-side only, like [`Request::Subscribe`]: digests reveal log
    /// structure, so a server refuses this unless replication is enabled.
    LogDigests,
    /// Asks the server to promote itself to primary: bump its durable
    /// fencing term, flip [`ReplicaRole::Primary`], and stop following
    /// its old primary. Idempotent on a server that is already primary
    /// (answers with the current term). Owner-side only.
    Promote,
    /// One remote mutation, routed to the shard that owns its routing
    /// id (a node append may go to any shard; an edge goes to `from`'s
    /// owner, policy to the governed node's owner). A mis-routed write
    /// is refused with [`WireErrorKind::WrongShard`]; an unsharded
    /// writable server accepts any write. The mutation crosses the
    /// trust boundary *into* the store, so servers gate it like
    /// checkpointing (operator opt-in), not like queries.
    Write {
        /// The mutation to apply.
        op: WriteOp,
    },
    /// Asks where this server sits in the shard topology and how much
    /// of each shard's history it reflects ([`Response::ShardStatus`]).
    /// Safe for any consumer: epochs and indices only, like
    /// [`Request::ReplicaStatus`].
    ShardStatus,
}

/// One mutation crossing the wire — the payload of [`Request::Write`].
///
/// The store-assigned fields of the corresponding records (`created_at`,
/// the node's id) are *absent*: the owning shard assigns them at apply
/// time and answers with [`Response::Written`].
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp {
    /// Append a node record. The answering shard assigns the global id
    /// (its next local position, mapped through its partition).
    AppendNode {
        /// Display label.
        label: String,
        /// Provenance role.
        kind: NodeKind,
        /// Attribute–value features.
        features: Features,
        /// Lowest privilege-predicate required to see the node.
        lowest: PrivilegeId,
    },
    /// Append an edge. Routed by `from`'s owner; `to` may be foreign.
    AppendEdge {
        /// Source node (global id; must be owned by the answering shard).
        from: RecordId,
        /// Destination node (global id; may be foreign).
        to: RecordId,
        /// Relationship kind.
        kind: EdgeKind,
    },
    /// Apply a policy statement. Routed by the owner of the node the
    /// statement governs.
    ApplyPolicy(PolicyStatement),
}

impl WriteOp {
    /// The global id that decides which shard must apply this write, or
    /// `None` for node appends (any shard may take them).
    pub fn routing_id(&self) -> Option<RecordId> {
        match self {
            WriteOp::AppendNode { .. } => None,
            WriteOp::AppendEdge { from, .. } => Some(*from),
            WriteOp::ApplyPolicy(statement) => Some(match statement {
                PolicyStatement::MarkIncidence { node, .. }
                | PolicyStatement::MarkNode { node, .. }
                | PolicyStatement::AddSurrogate { node, .. } => *node,
            }),
        }
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Hello`].
    Hello(ServerHello),
    /// Answer to [`Request::Query`].
    Query(QueryResponse),
    /// Answer to [`Request::Batch`], one response per request, in order.
    Batch(Vec<QueryResponse>),
    /// Answer to [`Request::Epoch`].
    Epoch(u64),
    /// Answer to [`Request::Checkpoint`].
    Checkpoint(CheckpointStats),
    /// A typed failure. Recoverable kinds leave the connection open;
    /// protocol violations are followed by a hangup.
    Error(WireError),
    /// One replication chunk, streamed after [`Request::Subscribe`].
    WalChunk(WalChunk),
    /// Answer to [`Request::ReplicaStatus`].
    ReplicaStatus(ReplicaStatus),
    /// Answer to [`Request::LogDigests`]: the server's fencing term and
    /// one digest per retained WAL segment, ascending by start clock.
    LogDigests {
        /// The server's current fencing term.
        term: u64,
        /// Per-segment digests (see [`SegmentDigest`]).
        segments: Vec<SegmentDigest>,
    },
    /// Answer to [`Request::Promote`]: the (possibly just bumped)
    /// fencing term the server now serves at.
    Promoted {
        /// The server's fencing term after the promotion.
        term: u64,
    },
    /// Answer to [`Request::Write`]: the mutation was applied durably
    /// (by the store's durability options).
    Written {
        /// The server's clock after the mutation — the epoch at which
        /// the write is first visible.
        clock: u64,
        /// The assigned global id, for [`WriteOp::AppendNode`]; `None`
        /// for edges and policy.
        id: Option<RecordId>,
    },
    /// Answer to [`Request::ShardStatus`].
    ShardStatus(ShardStatusInfo),
}

/// A server's place in the shard topology and its view of each shard's
/// history. Contains no graph data — safe for any consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatusInfo {
    /// Total shards in the deployment; 0 for an unsharded server.
    pub count: u32,
    /// The answering server's own shard index; `None` on a
    /// scatter-gather server (it serves all shards) and on unsharded
    /// servers.
    pub index: Option<u32>,
    /// Per-shard epochs as this server knows them: its own slot live
    /// and the rest zero on a shard primary; the full gather vector on
    /// a scatter-gather server; a single element (the store version) on
    /// an unsharded server.
    pub epochs: Vec<u64>,
    /// Per-shard replica addresses, in shard order, as configured on
    /// the answering server's topology: `replicas[i]` lists the
    /// replicas following shard `i`'s primary (the promotion candidates
    /// a client re-resolves against when that primary dies). Empty when
    /// the server knows no replica topology; bounded by [`MAX_SHARDS`]
    /// shards of [`MAX_REPLICAS`] addresses each.
    pub replicas: Vec<Vec<String>>,
}

/// One replication stream element: sealed write-ahead-log frames (and,
/// when the subscriber must backfill, a snapshot to install first).
///
/// `frames` holds whole sealed frames — `len u32 | crc32 u32 | payload`,
/// byte-identical to the primary's segment contents — concatenated and
/// contiguous in clock from [`start_clock`](Self::start_clock). An empty
/// `frames` with no snapshot is a **heartbeat**: it refreshes
/// [`primary_epoch`](Self::primary_epoch) (and proves the link is live)
/// while the subscriber is caught up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalChunk {
    /// Clock of the first frame in `frames` — or, when `snapshot` is
    /// present, the clock the snapshot captures (frames then continue
    /// from there).
    pub start_clock: u64,
    /// The primary's clock when the chunk was cut. A replica's **lag**
    /// is `primary_epoch - local_epoch`.
    pub primary_epoch: u64,
    /// The sender's fencing term. A subscriber refuses chunks carrying a
    /// term lower than one it has observed
    /// ([`StoreError::DeposedPrimary`](crate::error::StoreError)): after
    /// a promotion the deposed primary keeps its old term and can no
    /// longer extend anyone's history.
    pub term: u64,
    /// Full snapshot bytes to install before applying any frame — sent
    /// on the first chunk of a cold backfill only.
    pub snapshot: Option<Vec<u8>>,
    /// Concatenated sealed WAL frames, contiguous from `start_clock`.
    pub frames: Vec<u8>,
}

/// Whether the answering server is the writable primary or a read-only
/// replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaRole {
    /// The single writer: its epoch *is* the primary epoch.
    Primary,
    /// A read-only replica replaying a primary's log.
    Replica,
}

impl std::fmt::Display for ReplicaRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplicaRole::Primary => "primary",
            ReplicaRole::Replica => "replica",
        })
    }
}

/// A server's replication status: role, epochs, and link health.
/// Contains no graph data — safe to expose to any consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Primary or replica.
    pub role: ReplicaRole,
    /// The answering server's own epoch.
    pub local_epoch: u64,
    /// The primary's epoch as last observed (equal to `local_epoch` on
    /// a primary; possibly stale on a disconnected replica).
    pub primary_epoch: u64,
    /// The server's fencing term: the highest promotion generation it
    /// has durably observed. Exposing it lets operators confirm a
    /// promotion propagated.
    pub term: u64,
    /// Whether a replica's feed link is currently up (always true on a
    /// primary).
    pub connected: bool,
    /// The last replication error, if the link is degraded.
    pub last_error: Option<String>,
    /// The address of the writable primary, as this server knows it: a
    /// replica reports the endpoint it follows, a primary may report its
    /// own. Write clients use it to re-resolve after a failover; `None`
    /// when unknown. An address, not graph data — still consumer-safe.
    pub primary_addr: Option<String>,
}

impl ReplicaStatus {
    /// How many mutations behind the primary this server is:
    /// `primary_epoch - local_epoch` (0 on a primary; a *lower bound*
    /// on a disconnected replica, whose `primary_epoch` is stale).
    pub fn lag(&self) -> u64 {
        self.primary_epoch.saturating_sub(self.local_epoch)
    }
}

/// What a server tells a client at connection time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// The server's [`PROTOCOL_VERSION`].
    pub version: u16,
    /// The epoch at handshake time.
    pub epoch: u64,
    /// Node records in the store at handshake time — lets load drivers
    /// and CLIs pick valid roots without another round trip.
    pub nodes: u64,
    /// Total shards in the deployment this server belongs to; 0 for an
    /// ordinary unsharded server.
    pub shard_count: u32,
    /// This server's shard index, when it is one shard primary; `None`
    /// on unsharded servers and on scatter-gather servers (which serve
    /// the whole keyspace).
    pub shard_index: Option<u32>,
    /// The lattice's predicate names, index = [`PrivilegeId`]. Clients
    /// resolve `-p <name>` flags against this without seeing the graph.
    pub predicates: Vec<String>,
    /// The shard primaries' addresses in shard order (`peers[i]` is
    /// shard `i` of [`shard_count`](Self::shard_count)), when the
    /// answering server knows its deployment's topology; empty
    /// otherwise (including every unsharded server). Lets a client
    /// route writes without a directory service.
    pub peers: Vec<String>,
}

impl ServerHello {
    /// Resolves a predicate name against the handshake lattice.
    pub fn predicate(&self, name: &str) -> Option<PrivilegeId> {
        self.predicates
            .iter()
            .position(|p| p == name)
            .map(|i| PrivilegeId(i as u16))
    }
}

/// A typed error crossing the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The machine-readable category.
    pub kind: WireErrorKind,
    /// Human-readable detail, safe to show a remote consumer.
    pub message: String,
}

impl WireError {
    /// Builds an error of `kind` with a message.
    pub fn new(kind: WireErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for WireError {}

/// Machine-readable categories of [`WireError`].
///
/// `#[non_exhaustive]`: the protocol will grow kinds (admission control,
/// quotas, …) without a version bump; unknown tags decode to
/// [`WireErrorKind::Internal`]-compatible handling on old clients is NOT
/// attempted — instead the tag is part of the frame and an unknown tag is
/// a malformed frame, which is why new kinds require a protocol version
/// bump after all. Keep matches non-exhaustive anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireErrorKind {
    /// The consumer does not satisfy the predicate it asked through.
    NotAuthorized,
    /// The request named an unregistered protection strategy.
    UnknownStrategy,
    /// A claimed or pinned predicate is not in the server's lattice.
    UnknownPredicate,
    /// The server's store is in-memory; checkpoint has no meaning.
    NotDurable,
    /// The client spoke a different protocol version.
    VersionMismatch,
    /// The frame decoded but the message is invalid in this state
    /// (e.g. a second Hello, or a request before Hello).
    BadRequest,
    /// The server failed internally; the message carries no store detail
    /// beyond the error's display form.
    Internal,
    /// The server is shedding load: the connection cap is reached, the
    /// consumer's rate limit is exhausted, or the connection's outbound
    /// queue is saturated. **Retryable** — the request was refused, not
    /// failed, and the connection (when one exists) stays usable. Typed
    /// so admission control is visible to clients instead of a hangup.
    Overloaded,
    /// The request needs the writable primary but this server is a
    /// read-only replica (or a freshly deposed primary). The message is
    /// the writable primary's address when known (empty otherwise) — a
    /// redirect, so write clients fail over without restart.
    NotWritable,
    /// The write's routing id is owned by another shard. The message is
    /// the owning shard's address when the answering server knows it
    /// (a redirect, like [`NotWritable`](Self::NotWritable)); otherwise
    /// the owning shard's index as decimal text.
    WrongShard,
    /// A scatter-gather server is missing at least one shard feed and
    /// refuses to answer with a silent gap. **Retryable** once the feed
    /// reconnects; the message names the missing shard(s).
    ShardUnavailable,
}

impl WireErrorKind {
    fn tag(self) -> u8 {
        match self {
            WireErrorKind::NotAuthorized => 0,
            WireErrorKind::UnknownStrategy => 1,
            WireErrorKind::UnknownPredicate => 2,
            WireErrorKind::NotDurable => 3,
            WireErrorKind::VersionMismatch => 4,
            WireErrorKind::BadRequest => 5,
            WireErrorKind::Internal => 6,
            WireErrorKind::Overloaded => 7,
            WireErrorKind::NotWritable => 8,
            WireErrorKind::WrongShard => 9,
            WireErrorKind::ShardUnavailable => 10,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        Ok(match tag {
            0 => WireErrorKind::NotAuthorized,
            1 => WireErrorKind::UnknownStrategy,
            2 => WireErrorKind::UnknownPredicate,
            3 => WireErrorKind::NotDurable,
            4 => WireErrorKind::VersionMismatch,
            5 => WireErrorKind::BadRequest,
            6 => WireErrorKind::Internal,
            7 => WireErrorKind::Overloaded,
            8 => WireErrorKind::NotWritable,
            9 => WireErrorKind::WrongShard,
            10 => WireErrorKind::ShardUnavailable,
            _ => {
                return Err(CodecError::InvalidTag {
                    what: "wire error kind",
                    tag,
                })
            }
        })
    }
}

impl std::fmt::Display for WireErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WireErrorKind::NotAuthorized => "not authorized",
            WireErrorKind::UnknownStrategy => "unknown strategy",
            WireErrorKind::UnknownPredicate => "unknown predicate",
            WireErrorKind::NotDurable => "not durable",
            WireErrorKind::VersionMismatch => "protocol version mismatch",
            WireErrorKind::BadRequest => "bad request",
            WireErrorKind::Internal => "internal error",
            WireErrorKind::Overloaded => "overloaded",
            WireErrorKind::NotWritable => "not writable",
            WireErrorKind::WrongShard => "wrong shard",
            WireErrorKind::ShardUnavailable => "shard unavailable",
        })
    }
}

fn direction_tag(direction: Direction) -> u8 {
    match direction {
        Direction::Backward => 0,
        Direction::Forward => 1,
        Direction::Both => 2,
    }
}

fn direction_from_tag(tag: u8) -> Result<Direction, CodecError> {
    match tag {
        0 => Ok(Direction::Backward),
        1 => Ok(Direction::Forward),
        2 => Ok(Direction::Both),
        _ => Err(CodecError::InvalidTag {
            what: "direction",
            tag,
        }),
    }
}

fn strategy_tag(strategy: Strategy) -> u8 {
    match strategy {
        Strategy::Surrogate => 0,
        Strategy::HideEdges => 1,
        Strategy::HideNodes => 2,
        // `Strategy` is #[non_exhaustive]; a new selector needs a wire
        // tag (and a protocol version bump) before it can be serialized.
        _ => unreachable!("unserializable strategy selector"),
    }
}

fn strategy_from_tag(tag: u8) -> Result<Strategy, CodecError> {
    match tag {
        0 => Ok(Strategy::Surrogate),
        1 => Ok(Strategy::HideEdges),
        2 => Ok(Strategy::HideNodes),
        _ => Err(CodecError::InvalidTag {
            what: "strategy",
            tag,
        }),
    }
}

fn put_query_request(buf: &mut BytesMut, request: &QueryRequest) {
    buf.put_u32_le(request.root.0);
    buf.put_u8(direction_tag(request.direction));
    buf.put_u32_le(request.max_depth);
    buf.put_u8(strategy_tag(request.strategy));
    match request.predicate {
        Some(p) => {
            buf.put_u8(1);
            buf.put_u16_le(p.0);
        }
        None => buf.put_u8(0),
    }
}

fn read_query_request(r: &mut Reader<'_>) -> Result<QueryRequest, CodecError> {
    let root = RecordId(r.u32()?);
    let direction = direction_from_tag(r.u8()?)?;
    let max_depth = r.u32()?;
    let strategy = strategy_from_tag(r.u8()?)?;
    let predicate = r.opt_predicate()?;
    let mut request = QueryRequest::new(root, direction, max_depth, strategy);
    if let Some(p) = predicate {
        request = request.with_predicate(p);
    }
    Ok(request)
}

fn put_write_op(buf: &mut BytesMut, op: &WriteOp) {
    match op {
        WriteOp::AppendNode {
            label,
            kind,
            features,
            lowest,
        } => {
            buf.put_u8(0);
            put_str(buf, label);
            buf.put_u8(kind.tag());
            buf.put_u16_le(lowest.0);
            put_features(buf, features);
        }
        WriteOp::AppendEdge { from, to, kind } => {
            buf.put_u8(1);
            buf.put_u32_le(from.0);
            buf.put_u32_le(to.0);
            buf.put_u8(kind.tag());
        }
        WriteOp::ApplyPolicy(statement) => {
            buf.put_u8(2);
            put_policy(buf, statement);
        }
    }
}

fn read_write_op(r: &mut Reader<'_>) -> Result<WriteOp, CodecError> {
    Ok(match r.u8()? {
        0 => {
            let label = r.string()?;
            let tag = r.u8()?;
            let kind = NodeKind::from_tag(tag).ok_or(CodecError::InvalidTag {
                what: "node kind",
                tag,
            })?;
            let lowest = PrivilegeId(r.u16()?);
            let features = r.features()?;
            WriteOp::AppendNode {
                label,
                kind,
                features,
                lowest,
            }
        }
        1 => {
            let from = RecordId(r.u32()?);
            let to = RecordId(r.u32()?);
            let tag = r.u8()?;
            let kind = EdgeKind::from_tag(tag).ok_or(CodecError::InvalidTag {
                what: "edge kind",
                tag,
            })?;
            WriteOp::AppendEdge { from, to, kind }
        }
        2 => WriteOp::ApplyPolicy(r.policy_statement()?),
        tag => {
            return Err(CodecError::InvalidTag {
                what: "write op",
                tag,
            })
        }
    })
}

/// Refuses a count its wire field cannot carry. Encoding is where this
/// must fail: a bare `as` cast here would truncate the count silently
/// and desynchronize the peer's decoder mid-payload.
fn check_count(what: &'static str, count: usize, max: u64) -> Result<(), CodecError> {
    if count as u64 > max {
        return Err(CodecError::CountOverflow { what, count, max });
    }
    Ok(())
}

fn put_query_response(buf: &mut BytesMut, response: &QueryResponse) -> Result<(), CodecError> {
    buf.put_u64_le(response.epoch);
    buf.put_u32_le(response.root.0);
    check_count("lineage rows", response.rows.len(), u32::MAX as u64)?;
    buf.put_u32_le(response.rows.len() as u32);
    for row in &response.rows {
        buf.put_u32_le(row.record.0);
        put_str(buf, &row.label);
        buf.put_u32_le(row.depth);
        buf.put_u8(row.surrogate as u8);
    }
    check_count(
        "shard epochs",
        response.shard_epochs.len(),
        MAX_SHARDS as u64,
    )?;
    buf.put_u32_le(response.shard_epochs.len() as u32);
    for &epoch in &response.shard_epochs {
        buf.put_u64_le(epoch);
    }
    Ok(())
}

fn read_query_response(r: &mut Reader<'_>) -> Result<QueryResponse, CodecError> {
    let mut response = QueryResponse {
        epoch: 0,
        root: RecordId(0),
        rows: Vec::new(),
        shard_epochs: Vec::new(),
    };
    read_query_response_into(r, &mut response)?;
    Ok(response)
}

/// Decodes one query response into `response`, reusing its `rows` vector
/// and the label `String` buffers of the rows already in it. After the
/// steady first round of a closed-loop client this path performs no heap
/// allocation at all — the row structures of the previous answer are
/// overwritten in place.
fn read_query_response_into(
    r: &mut Reader<'_>,
    response: &mut QueryResponse,
) -> Result<(), CodecError> {
    response.epoch = r.u64()?;
    response.root = RecordId(r.u32()?);
    let count = r.u32()? as usize;
    let rows = &mut response.rows;
    rows.truncate(count);
    for i in 0..count {
        let record = RecordId(r.u32()?);
        let label = r.str_ref()?;
        let depth = r.u32()?;
        let surrogate = match r.u8()? {
            0 => false,
            1 => true,
            tag => {
                return Err(CodecError::InvalidTag {
                    what: "surrogate flag",
                    tag,
                })
            }
        };
        if let Some(row) = rows.get_mut(i) {
            row.record = record;
            row.label.clear();
            row.label.push_str(label);
            row.depth = depth;
            row.surrogate = surrogate;
        } else {
            rows.push(ProtectedLineageRow {
                record,
                label: label.to_owned(),
                depth,
                surrogate,
            });
        }
    }
    let shards = r.u32()?;
    if shards > MAX_SHARDS {
        return Err(CodecError::FrameTooLarge(shards));
    }
    response.shard_epochs.clear();
    response.shard_epochs.reserve(shards as usize);
    for _ in 0..shards {
        response.shard_epochs.push(r.u64()?);
    }
    Ok(())
}

/// Decodes a [`Response::Batch`] payload into `out`, reusing its
/// allocations (the response vector, each response's rows, and each
/// row's label buffer) — the zero-garbage receive path for closed-loop
/// clients that drain one batch after another.
///
/// Returns `Ok(None)` on a batch frame; `Ok(Some(error))` when the
/// server answered with a typed [`Response::Error`] frame instead (the
/// wire-level refusal, e.g. an over-[`MAX_BATCH`] request). Any other
/// response type is a protocol violation and decodes to
/// [`CodecError::InvalidTag`].
pub fn decode_batch_response_into(
    payload: &[u8],
    out: &mut Vec<QueryResponse>,
) -> Result<Option<WireError>, CodecError> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    match r.u8()? {
        2 => {}
        5 => {
            let kind = WireErrorKind::from_tag(r.u8()?)?;
            let message = r.string()?;
            if r.pos != payload.len() {
                return Err(CodecError::Truncated);
            }
            return Ok(Some(WireError { kind, message }));
        }
        tag => {
            return Err(CodecError::InvalidTag {
                what: "batch response",
                tag,
            })
        }
    }
    let count = r.u32()?;
    if count > MAX_BATCH {
        return Err(CodecError::FrameTooLarge(count));
    }
    let count = count as usize;
    out.truncate(count);
    for i in 0..count {
        if i == out.len() {
            out.push(QueryResponse {
                epoch: 0,
                root: RecordId(0),
                rows: Vec::new(),
                shard_epochs: Vec::new(),
            });
        }
        read_query_response_into(&mut r, &mut out[i])?;
    }
    if r.pos != payload.len() {
        return Err(CodecError::Truncated); // trailing garbage
    }
    Ok(None)
}

/// The canonical [`Request::Batch`] payload for `requests` — what
/// [`encode_request`] would produce, without requiring an owned
/// [`Request`]. The allocation-free client batch path pairs this with
/// [`decode_batch_response_into`].
pub fn encode_batch_request(requests: &[QueryRequest]) -> Result<Vec<u8>, CodecError> {
    encode_query_key(requests, true)
}

fn put_names(buf: &mut BytesMut, names: &[String]) -> Result<(), CodecError> {
    check_count("predicate names", names.len(), u16::MAX as u64)?;
    buf.put_u16_le(names.len() as u16);
    for name in names {
        put_str(buf, name);
    }
    Ok(())
}

fn read_names(r: &mut Reader<'_>) -> Result<Vec<String>, CodecError> {
    let count = r.u16()? as usize;
    let mut names = Vec::with_capacity(count);
    for _ in 0..count {
        names.push(r.string()?);
    }
    Ok(names)
}

/// The canonical payload bytes of a Query (`batch == false`, exactly one
/// request) or Batch (`batch == true`) request — shared by
/// [`encode_request`] and the service's sealed-frame cache key, so a
/// cached frame is keyed by exactly the bytes a client would send.
pub(crate) fn encode_query_key(
    requests: &[QueryRequest],
    batch: bool,
) -> Result<Vec<u8>, CodecError> {
    let mut buf = BytesMut::with_capacity(8 + requests.len() * 16);
    if batch {
        buf.put_u8(2);
        // Mirror the decode-side bound: an encoded batch the peer would
        // refuse is an encoding error, not a surprise hangup.
        check_count("batch requests", requests.len(), MAX_BATCH as u64)?;
        buf.put_u32_le(requests.len() as u32);
    } else {
        debug_assert_eq!(requests.len(), 1, "a non-batch query is one request");
        buf.put_u8(1);
    }
    for query in requests {
        put_query_request(&mut buf, query);
    }
    Ok(buf.to_vec())
}

/// Encodes a request payload (frame it with
/// [`seal_frame`](crate::codec::seal_frame) before writing).
///
/// Fails with [`CodecError::CountOverflow`] when a collection is larger
/// than its wire count field (or the decode-side [`MAX_BATCH`] bound) —
/// never truncates silently.
pub fn encode_request(request: &Request) -> Result<Vec<u8>, CodecError> {
    let mut buf = BytesMut::with_capacity(32);
    match request {
        Request::Hello {
            version,
            consumer,
            claims,
        } => {
            buf.put_u8(0);
            buf.put_u16_le(*version);
            put_str(&mut buf, consumer);
            put_names(&mut buf, claims)?;
        }
        Request::Query(query) => {
            return encode_query_key(std::slice::from_ref(query), false);
        }
        Request::Batch(queries) => {
            return encode_query_key(queries, true);
        }
        Request::Epoch => buf.put_u8(3),
        Request::Checkpoint => buf.put_u8(4),
        Request::Subscribe { from_clock } => {
            buf.put_u8(5);
            buf.put_u64_le(*from_clock);
        }
        Request::ReplicaStatus => buf.put_u8(6),
        Request::LogDigests => buf.put_u8(7),
        Request::Promote => buf.put_u8(8),
        Request::Write { op } => {
            buf.put_u8(9);
            put_write_op(&mut buf, op);
        }
        Request::ShardStatus => buf.put_u8(10),
    }
    Ok(buf.to_vec())
}

/// Decodes a request payload. The payload must hold exactly one message;
/// trailing bytes are an error (the frame does not describe one request).
pub fn decode_request(payload: &[u8]) -> Result<Request, CodecError> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let request = match r.u8()? {
        0 => {
            let version = r.u16()?;
            let consumer = r.string()?;
            let claims = read_names(&mut r)?;
            Request::Hello {
                version,
                consumer,
                claims,
            }
        }
        1 => Request::Query(read_query_request(&mut r)?),
        2 => {
            let count = r.u32()?;
            if count > MAX_BATCH {
                return Err(CodecError::FrameTooLarge(count));
            }
            let mut queries = Vec::with_capacity(count as usize);
            for _ in 0..count {
                queries.push(read_query_request(&mut r)?);
            }
            Request::Batch(queries)
        }
        3 => Request::Epoch,
        4 => Request::Checkpoint,
        5 => Request::Subscribe {
            from_clock: r.u64()?,
        },
        6 => Request::ReplicaStatus,
        7 => Request::LogDigests,
        8 => Request::Promote,
        9 => Request::Write {
            op: read_write_op(&mut r)?,
        },
        10 => Request::ShardStatus,
        tag => {
            return Err(CodecError::InvalidTag {
                what: "request",
                tag,
            })
        }
    };
    if r.pos != payload.len() {
        return Err(CodecError::Truncated); // trailing garbage
    }
    Ok(request)
}

/// Encodes a response payload (frame it with
/// [`seal_frame`](crate::codec::seal_frame) before writing).
///
/// Fails with [`CodecError::CountOverflow`] when a collection is larger
/// than its wire count field (or the decode-side [`MAX_BATCH`] /
/// [`MAX_WAL_CHUNK`] bounds) — never truncates silently.
pub fn encode_response(response: &Response) -> Result<Vec<u8>, CodecError> {
    let mut buf = BytesMut::with_capacity(64);
    match response {
        Response::Hello(hello) => {
            buf.put_u8(0);
            buf.put_u16_le(hello.version);
            buf.put_u64_le(hello.epoch);
            buf.put_u64_le(hello.nodes);
            buf.put_u32_le(hello.shard_count);
            match hello.shard_index {
                Some(index) => {
                    buf.put_u8(1);
                    buf.put_u32_le(index);
                }
                None => buf.put_u8(0),
            }
            put_names(&mut buf, &hello.predicates)?;
            check_count("hello peers", hello.peers.len(), MAX_SHARDS as u64)?;
            buf.put_u32_le(hello.peers.len() as u32);
            for peer in &hello.peers {
                put_str(&mut buf, peer);
            }
        }
        Response::Query(query) => {
            buf.put_u8(1);
            put_query_response(&mut buf, query)?;
        }
        Response::Batch(queries) => {
            buf.put_u8(2);
            check_count("batch responses", queries.len(), MAX_BATCH as u64)?;
            buf.put_u32_le(queries.len() as u32);
            for query in queries {
                put_query_response(&mut buf, query)?;
            }
        }
        Response::Epoch(epoch) => {
            buf.put_u8(3);
            buf.put_u64_le(*epoch);
        }
        Response::Checkpoint(stats) => {
            buf.put_u8(4);
            buf.put_u64_le(stats.clock);
            buf.put_u64_le(stats.snapshot_bytes);
            buf.put_u64_le(stats.pruned_segments as u64);
            buf.put_u64_le(stats.pruned_snapshots as u64);
        }
        Response::Error(error) => {
            buf.put_u8(5);
            buf.put_u8(error.kind.tag());
            put_str(&mut buf, &error.message);
        }
        Response::WalChunk(chunk) => {
            buf.put_u8(6);
            buf.put_u64_le(chunk.start_clock);
            buf.put_u64_le(chunk.primary_epoch);
            buf.put_u64_le(chunk.term);
            match &chunk.snapshot {
                Some(snapshot) => {
                    buf.put_u8(1);
                    check_count(
                        "snapshot bytes",
                        snapshot.len(),
                        crate::codec::MAX_FRAME_LEN as u64,
                    )?;
                    buf.put_u32_le(snapshot.len() as u32);
                    buf.put_slice(snapshot);
                }
                None => buf.put_u8(0),
            }
            check_count("wal chunk bytes", chunk.frames.len(), MAX_WAL_CHUNK as u64)?;
            buf.put_u32_le(chunk.frames.len() as u32);
            buf.put_slice(&chunk.frames);
        }
        Response::ReplicaStatus(status) => {
            buf.put_u8(7);
            buf.put_u8(match status.role {
                ReplicaRole::Primary => 0,
                ReplicaRole::Replica => 1,
            });
            buf.put_u64_le(status.local_epoch);
            buf.put_u64_le(status.primary_epoch);
            buf.put_u64_le(status.term);
            buf.put_u8(status.connected as u8);
            match &status.last_error {
                Some(error) => {
                    buf.put_u8(1);
                    put_str(&mut buf, error);
                }
                None => buf.put_u8(0),
            }
            match &status.primary_addr {
                Some(addr) => {
                    buf.put_u8(1);
                    put_str(&mut buf, addr);
                }
                None => buf.put_u8(0),
            }
        }
        Response::LogDigests { term, segments } => {
            buf.put_u8(8);
            buf.put_u64_le(*term);
            check_count(
                "segment digests",
                segments.len(),
                MAX_SEGMENT_DIGESTS as u64,
            )?;
            buf.put_u32_le(segments.len() as u32);
            for digest in segments {
                buf.put_u64_le(digest.start_clock);
                buf.put_u64_le(digest.bytes);
                buf.put_u32_le(digest.crc);
            }
        }
        Response::Promoted { term } => {
            buf.put_u8(9);
            buf.put_u64_le(*term);
        }
        Response::Written { clock, id } => {
            buf.put_u8(10);
            buf.put_u64_le(*clock);
            match id {
                Some(id) => {
                    buf.put_u8(1);
                    buf.put_u32_le(id.0);
                }
                None => buf.put_u8(0),
            }
        }
        Response::ShardStatus(status) => {
            buf.put_u8(11);
            buf.put_u32_le(status.count);
            match status.index {
                Some(index) => {
                    buf.put_u8(1);
                    buf.put_u32_le(index);
                }
                None => buf.put_u8(0),
            }
            check_count("shard epochs", status.epochs.len(), MAX_SHARDS as u64)?;
            buf.put_u32_le(status.epochs.len() as u32);
            for &epoch in &status.epochs {
                buf.put_u64_le(epoch);
            }
            check_count(
                "shard replica lists",
                status.replicas.len(),
                MAX_SHARDS as u64,
            )?;
            buf.put_u32_le(status.replicas.len() as u32);
            for shard_replicas in &status.replicas {
                check_count(
                    "replica addresses",
                    shard_replicas.len(),
                    MAX_REPLICAS as u64,
                )?;
                buf.put_u32_le(shard_replicas.len() as u32);
                for addr in shard_replicas {
                    put_str(&mut buf, addr);
                }
            }
        }
    }
    Ok(buf.to_vec())
}

/// Decodes a response payload. Exactly one message per payload, as with
/// [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<Response, CodecError> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let response = match r.u8()? {
        0 => {
            let version = r.u16()?;
            let epoch = r.u64()?;
            let nodes = r.u64()?;
            let shard_count = r.u32()?;
            let shard_index = match r.u8()? {
                0 => None,
                1 => Some(r.u32()?),
                tag => {
                    return Err(CodecError::InvalidTag {
                        what: "optional shard index",
                        tag,
                    })
                }
            };
            let predicates = read_names(&mut r)?;
            let peer_count = r.u32()?;
            if peer_count > MAX_SHARDS {
                return Err(CodecError::FrameTooLarge(peer_count));
            }
            let mut peers = Vec::with_capacity(peer_count as usize);
            for _ in 0..peer_count {
                peers.push(r.string()?);
            }
            Response::Hello(ServerHello {
                version,
                epoch,
                nodes,
                shard_count,
                shard_index,
                predicates,
                peers,
            })
        }
        1 => Response::Query(read_query_response(&mut r)?),
        2 => {
            let count = r.u32()?;
            if count > MAX_BATCH {
                return Err(CodecError::FrameTooLarge(count));
            }
            let mut queries = Vec::with_capacity(count as usize);
            for _ in 0..count {
                queries.push(read_query_response(&mut r)?);
            }
            Response::Batch(queries)
        }
        3 => Response::Epoch(r.u64()?),
        4 => {
            let clock = r.u64()?;
            let snapshot_bytes = r.u64()?;
            let pruned_segments = r.u64()? as usize;
            let pruned_snapshots = r.u64()? as usize;
            Response::Checkpoint(CheckpointStats {
                clock,
                snapshot_bytes,
                pruned_segments,
                pruned_snapshots,
            })
        }
        5 => {
            let kind = WireErrorKind::from_tag(r.u8()?)?;
            let message = r.string()?;
            Response::Error(WireError { kind, message })
        }
        6 => {
            let start_clock = r.u64()?;
            let primary_epoch = r.u64()?;
            let term = r.u64()?;
            let snapshot = match r.u8()? {
                0 => None,
                1 => {
                    let len = r.u32()?;
                    if len > crate::codec::MAX_FRAME_LEN {
                        return Err(CodecError::FrameTooLarge(len));
                    }
                    Some(r.take(len as usize)?.to_vec())
                }
                tag => {
                    return Err(CodecError::InvalidTag {
                        what: "optional snapshot",
                        tag,
                    })
                }
            };
            let len = r.u32()?;
            if len > MAX_WAL_CHUNK {
                return Err(CodecError::FrameTooLarge(len));
            }
            let frames = r.take(len as usize)?.to_vec();
            Response::WalChunk(WalChunk {
                start_clock,
                primary_epoch,
                term,
                snapshot,
                frames,
            })
        }
        7 => {
            let role = match r.u8()? {
                0 => ReplicaRole::Primary,
                1 => ReplicaRole::Replica,
                tag => {
                    return Err(CodecError::InvalidTag {
                        what: "replica role",
                        tag,
                    })
                }
            };
            let local_epoch = r.u64()?;
            let primary_epoch = r.u64()?;
            let term = r.u64()?;
            let connected = match r.u8()? {
                0 => false,
                1 => true,
                tag => {
                    return Err(CodecError::InvalidTag {
                        what: "connected flag",
                        tag,
                    })
                }
            };
            let last_error = match r.u8()? {
                0 => None,
                1 => Some(r.string()?),
                tag => {
                    return Err(CodecError::InvalidTag {
                        what: "optional error",
                        tag,
                    })
                }
            };
            let primary_addr = match r.u8()? {
                0 => None,
                1 => Some(r.string()?),
                tag => {
                    return Err(CodecError::InvalidTag {
                        what: "optional primary address",
                        tag,
                    })
                }
            };
            Response::ReplicaStatus(ReplicaStatus {
                role,
                local_epoch,
                primary_epoch,
                term,
                connected,
                last_error,
                primary_addr,
            })
        }
        8 => {
            let term = r.u64()?;
            let count = r.u32()?;
            if count > MAX_SEGMENT_DIGESTS {
                return Err(CodecError::FrameTooLarge(count));
            }
            let mut segments = Vec::with_capacity(count as usize);
            for _ in 0..count {
                segments.push(SegmentDigest {
                    start_clock: r.u64()?,
                    bytes: r.u64()?,
                    crc: r.u32()?,
                });
            }
            Response::LogDigests { term, segments }
        }
        9 => Response::Promoted { term: r.u64()? },
        10 => {
            let clock = r.u64()?;
            let id = match r.u8()? {
                0 => None,
                1 => Some(RecordId(r.u32()?)),
                tag => {
                    return Err(CodecError::InvalidTag {
                        what: "optional record id",
                        tag,
                    })
                }
            };
            Response::Written { clock, id }
        }
        11 => {
            let count = r.u32()?;
            let index = match r.u8()? {
                0 => None,
                1 => Some(r.u32()?),
                tag => {
                    return Err(CodecError::InvalidTag {
                        what: "optional shard index",
                        tag,
                    })
                }
            };
            let epochs_len = r.u32()?;
            if epochs_len > MAX_SHARDS {
                return Err(CodecError::FrameTooLarge(epochs_len));
            }
            let mut epochs = Vec::with_capacity(epochs_len as usize);
            for _ in 0..epochs_len {
                epochs.push(r.u64()?);
            }
            let replicas_len = r.u32()?;
            if replicas_len > MAX_SHARDS {
                return Err(CodecError::FrameTooLarge(replicas_len));
            }
            let mut replicas = Vec::with_capacity(replicas_len as usize);
            for _ in 0..replicas_len {
                let addr_count = r.u32()?;
                if addr_count > MAX_REPLICAS {
                    return Err(CodecError::FrameTooLarge(addr_count));
                }
                let mut addrs = Vec::with_capacity(addr_count as usize);
                for _ in 0..addr_count {
                    addrs.push(r.string()?);
                }
                replicas.push(addrs);
            }
            Response::ShardStatus(ShardStatusInfo {
                count,
                index,
                epochs,
                replicas,
            })
        }
        tag => {
            return Err(CodecError::InvalidTag {
                what: "response",
                tag,
            })
        }
    };
    if r.pos != payload.len() {
        return Err(CodecError::Truncated); // trailing garbage
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<Request> {
        vec![
            Request::Hello {
                version: PROTOCOL_VERSION,
                consumer: "alice".into(),
                claims: vec!["Public".into(), "High".into()],
            },
            Request::Hello {
                version: 7,
                consumer: String::new(),
                claims: vec![],
            },
            Request::Query(QueryRequest::new(
                RecordId(9),
                Direction::Backward,
                u32::MAX,
                Strategy::Surrogate,
            )),
            Request::Query(
                QueryRequest::new(RecordId(0), Direction::Both, 3, Strategy::HideNodes)
                    .with_predicate(PrivilegeId(2)),
            ),
            Request::Batch(vec![
                QueryRequest::new(RecordId(1), Direction::Forward, 1, Strategy::HideEdges),
                QueryRequest::new(RecordId(2), Direction::Backward, 0, Strategy::Surrogate)
                    .with_predicate(PrivilegeId(0)),
            ]),
            Request::Batch(vec![]),
            Request::Epoch,
            Request::Checkpoint,
            Request::Subscribe { from_clock: 0 },
            Request::Subscribe {
                from_clock: u64::MAX,
            },
            Request::ReplicaStatus,
            Request::LogDigests,
            Request::Promote,
            Request::Write {
                op: WriteOp::AppendNode {
                    label: "invoice".into(),
                    kind: NodeKind::Data,
                    features: Features::new().with("origin", "edi"),
                    lowest: PrivilegeId(1),
                },
            },
            Request::Write {
                op: WriteOp::AppendEdge {
                    from: RecordId(4),
                    to: RecordId(9),
                    kind: EdgeKind::GeneratedBy,
                },
            },
            Request::Write {
                op: WriteOp::ApplyPolicy(PolicyStatement::MarkNode {
                    node: RecordId(2),
                    predicate: Some(PrivilegeId(1)),
                    marking: surrogate_core::marking::Marking::Hide,
                }),
            },
            Request::Write {
                op: WriteOp::ApplyPolicy(PolicyStatement::AddSurrogate {
                    node: RecordId(3),
                    label: "a trusted source".into(),
                    features: Features::new(),
                    lowest: PrivilegeId(0),
                    info_score: 2.0,
                }),
            },
            Request::ShardStatus,
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Hello(ServerHello {
                version: PROTOCOL_VERSION,
                epoch: 42,
                nodes: 11,
                shard_count: 0,
                shard_index: None,
                predicates: vec!["Public".into(), "High-1".into(), "High-2".into()],
                peers: vec![],
            }),
            Response::Hello(ServerHello {
                version: PROTOCOL_VERSION,
                epoch: 7,
                nodes: 3,
                shard_count: 4,
                shard_index: Some(2),
                predicates: vec!["Public".into()],
                peers: vec![
                    "10.0.0.1:7660".into(),
                    "10.0.0.2:7660".into(),
                    "10.0.0.3:7660".into(),
                    "10.0.0.4:7660".into(),
                ],
            }),
            Response::Query(QueryResponse {
                epoch: 3,
                root: RecordId(7),
                rows: vec![
                    ProtectedLineageRow {
                        record: RecordId(5),
                        label: "analysis".into(),
                        depth: 1,
                        surrogate: false,
                    },
                    ProtectedLineageRow {
                        record: RecordId(2),
                        label: "a trusted source".into(),
                        depth: 2,
                        surrogate: true,
                    },
                ],
                shard_epochs: vec![7, 9],
            }),
            Response::Batch(vec![QueryResponse {
                epoch: 0,
                root: RecordId(0),
                rows: vec![],
                shard_epochs: vec![],
            }]),
            Response::Epoch(u64::MAX),
            Response::Checkpoint(CheckpointStats {
                clock: 17,
                snapshot_bytes: 4096,
                pruned_segments: 2,
                pruned_snapshots: 1,
            }),
            Response::Error(WireError::new(WireErrorKind::NotAuthorized, "nope")),
            Response::Error(WireError::new(WireErrorKind::Internal, "")),
            Response::WalChunk(WalChunk {
                start_clock: 7,
                primary_epoch: 9,
                term: 2,
                snapshot: None,
                frames: crate::codec::seal_frame(b"opaque payload"),
            }),
            Response::WalChunk(WalChunk {
                start_clock: 0,
                primary_epoch: 0,
                term: 0,
                snapshot: Some(vec![0xde, 0xad, 0xbe, 0xef]),
                frames: Vec::new(),
            }),
            Response::ReplicaStatus(ReplicaStatus {
                role: ReplicaRole::Primary,
                local_epoch: 3,
                primary_epoch: 3,
                term: 1,
                connected: true,
                last_error: None,
                primary_addr: None,
            }),
            Response::ReplicaStatus(ReplicaStatus {
                role: ReplicaRole::Replica,
                local_epoch: 5,
                primary_epoch: 11,
                term: u64::MAX,
                connected: false,
                last_error: Some("connection refused".into()),
                primary_addr: Some("10.0.0.7:7655".into()),
            }),
            Response::LogDigests {
                term: 3,
                segments: vec![
                    SegmentDigest {
                        start_clock: 0,
                        bytes: 18,
                        crc: 0xdead_beef,
                    },
                    SegmentDigest {
                        start_clock: 40,
                        bytes: 4096,
                        crc: 7,
                    },
                ],
            },
            Response::LogDigests {
                term: 0,
                segments: vec![],
            },
            Response::Promoted { term: 2 },
            Response::Written {
                clock: 19,
                id: Some(RecordId(6)),
            },
            Response::Written {
                clock: u64::MAX,
                id: None,
            },
            Response::ShardStatus(ShardStatusInfo {
                count: 3,
                index: Some(1),
                epochs: vec![4, 0, 9],
                replicas: vec![
                    vec!["10.0.0.5:7661".into(), "10.0.0.6:7661".into()],
                    vec![],
                    vec!["10.0.0.7:7661".into()],
                ],
            }),
            Response::ShardStatus(ShardStatusInfo {
                count: 2,
                index: None,
                epochs: vec![],
                replicas: vec![],
            }),
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for request in requests() {
            let payload = encode_request(&request).unwrap();
            assert_eq!(decode_request(&payload).unwrap(), request, "{request:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        for response in responses() {
            let payload = encode_response(&response).unwrap();
            assert_eq!(decode_response(&payload).unwrap(), response, "{response:?}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&Request::Epoch).unwrap();
        payload.push(0);
        assert_eq!(decode_request(&payload).unwrap_err(), CodecError::Truncated);
        let mut payload = encode_response(&Response::Epoch(1)).unwrap();
        payload.push(0);
        assert_eq!(
            decode_response(&payload).unwrap_err(),
            CodecError::Truncated
        );
    }

    #[test]
    fn oversized_counts_fail_encoding_instead_of_truncating() {
        // 2^16 claimed predicate names would truncate to 0 under the old
        // bare `as u16` cast — the peer would then misparse everything
        // after the count field.
        let request = Request::Hello {
            version: PROTOCOL_VERSION,
            consumer: "alice".into(),
            claims: vec![String::new(); u16::MAX as usize + 1],
        };
        assert_eq!(
            encode_request(&request).unwrap_err(),
            CodecError::CountOverflow {
                what: "predicate names",
                count: u16::MAX as usize + 1,
                max: u16::MAX as u64,
            }
        );
        // Batches beyond the decode-side bound fail symmetrically at
        // encode time rather than surprising the sender with a hangup.
        let query = QueryRequest::new(RecordId(0), Direction::Backward, 1, Strategy::Surrogate);
        let batch = Request::Batch(vec![query; MAX_BATCH as usize + 1]);
        assert!(matches!(
            encode_request(&batch).unwrap_err(),
            CodecError::CountOverflow {
                what: "batch requests",
                ..
            }
        ));
        let empty = QueryResponse {
            epoch: 0,
            root: RecordId(0),
            rows: vec![],
            shard_epochs: vec![],
        };
        let batch = Response::Batch(vec![empty; MAX_BATCH as usize + 1]);
        assert!(matches!(
            encode_response(&batch).unwrap_err(),
            CodecError::CountOverflow {
                what: "batch responses",
                ..
            }
        ));
        // WalChunk byte runs beyond their decode-side bounds, likewise.
        let chunk = Response::WalChunk(WalChunk {
            start_clock: 0,
            primary_epoch: 0,
            term: 0,
            snapshot: None,
            frames: vec![0; MAX_WAL_CHUNK as usize + 1],
        });
        assert!(matches!(
            encode_response(&chunk).unwrap_err(),
            CodecError::CountOverflow {
                what: "wal chunk bytes",
                ..
            }
        ));
    }

    #[test]
    fn boundary_counts_still_encode() {
        // Exactly at each bound the message must encode and roundtrip —
        // the overflow checks must be strict, not off-by-one.
        let request = Request::Hello {
            version: PROTOCOL_VERSION,
            consumer: String::new(),
            claims: vec![String::new(); u16::MAX as usize],
        };
        let payload = encode_request(&request).unwrap();
        assert_eq!(decode_request(&payload).unwrap(), request);
        let query = QueryRequest::new(RecordId(0), Direction::Backward, 1, Strategy::Surrogate);
        let batch = Request::Batch(vec![query; MAX_BATCH as usize]);
        let payload = encode_request(&batch).unwrap();
        assert_eq!(decode_request(&payload).unwrap(), batch);
    }

    #[test]
    fn oversized_batch_counts_are_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(2);
        buf.put_u32_le(MAX_BATCH + 1);
        assert_eq!(
            decode_request(&buf).unwrap_err(),
            CodecError::FrameTooLarge(MAX_BATCH + 1)
        );
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(matches!(
            decode_request(&[99]).unwrap_err(),
            CodecError::InvalidTag {
                what: "request",
                ..
            }
        ));
        assert!(matches!(
            decode_response(&[99]).unwrap_err(),
            CodecError::InvalidTag {
                what: "response",
                ..
            }
        ));
        assert!(decode_request(&[]).is_err());
        assert!(decode_response(&[]).is_err());
    }

    #[test]
    fn oversized_wal_chunks_are_rejected() {
        // A declared frames length beyond the bound must be refused
        // before allocation, like oversized batches.
        let mut buf = BytesMut::new();
        buf.put_u8(6);
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        buf.put_u64_le(0); // term
        buf.put_u8(0);
        buf.put_u32_le(MAX_WAL_CHUNK + 1);
        assert_eq!(
            decode_response(&buf).unwrap_err(),
            CodecError::FrameTooLarge(MAX_WAL_CHUNK + 1)
        );
        // Same for an implausible snapshot length.
        let mut buf = BytesMut::new();
        buf.put_u8(6);
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        buf.put_u64_le(0); // term
        buf.put_u8(1);
        buf.put_u32_le(crate::codec::MAX_FRAME_LEN + 1);
        assert_eq!(
            decode_response(&buf).unwrap_err(),
            CodecError::FrameTooLarge(crate::codec::MAX_FRAME_LEN + 1)
        );
        // And for a hostile digest count.
        let mut buf = BytesMut::new();
        buf.put_u8(8);
        buf.put_u64_le(1); // term
        buf.put_u32_le(MAX_SEGMENT_DIGESTS + 1);
        assert_eq!(
            decode_response(&buf).unwrap_err(),
            CodecError::FrameTooLarge(MAX_SEGMENT_DIGESTS + 1)
        );
    }

    #[test]
    fn replica_status_lag_saturates() {
        let mut status = ReplicaStatus {
            role: ReplicaRole::Replica,
            local_epoch: 10,
            primary_epoch: 25,
            term: 1,
            connected: true,
            last_error: None,
            primary_addr: None,
        };
        assert_eq!(status.lag(), 15);
        // A replica momentarily ahead of a stale primary_epoch reading
        // reports 0, never underflows.
        status.local_epoch = 30;
        assert_eq!(status.lag(), 0);
    }

    #[test]
    fn oversized_topology_fields_are_refused_at_encode_time() {
        let status = ShardStatusInfo {
            count: 1,
            index: Some(0),
            epochs: vec![0],
            replicas: vec![vec![String::new(); MAX_REPLICAS as usize + 1]],
        };
        assert!(encode_response(&Response::ShardStatus(status)).is_err());
        let hello = ServerHello {
            version: PROTOCOL_VERSION,
            epoch: 0,
            nodes: 0,
            shard_count: 0,
            shard_index: None,
            predicates: vec![],
            peers: vec![String::new(); MAX_SHARDS as usize + 1],
        };
        assert!(encode_response(&Response::Hello(hello)).is_err());
    }

    #[test]
    fn hello_resolves_predicates_by_name() {
        let hello = ServerHello {
            version: PROTOCOL_VERSION,
            epoch: 0,
            nodes: 0,
            shard_count: 0,
            shard_index: None,
            predicates: vec!["Public".into(), "High".into()],
            peers: vec![],
        };
        assert_eq!(hello.predicate("High"), Some(PrivilegeId(1)));
        assert_eq!(hello.predicate("Nope"), None);
    }
}
