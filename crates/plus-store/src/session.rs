//! Consumer sessions: privilege-checked, cached access to protected
//! accounts and protected lineage answers.
//!
//! A session pins a consumer against a materialized store. Accounts are
//! generated lazily per `(predicate, strategy)` and cached, matching the
//! paper's deployment sketch where a protected account is computed once
//! and then serves many path queries (§6.4).

use std::collections::HashMap;

use surrogate_core::account::{ProtectedAccount, Strategy};
use surrogate_core::credential::Consumer;
use surrogate_core::graph::NodeId;
use surrogate_core::privilege::PrivilegeId;
use surrogate_core::query::{traverse, Direction};

use crate::error::{Result, StoreError};
use crate::record::RecordId;
use crate::store::Materialized;

/// A lineage row as seen through a protected account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectedLineageRow {
    /// The original record reached (known to the server, not the client).
    pub record: RecordId,
    /// The label the consumer sees (original or surrogate).
    pub label: String,
    /// Hops from the root *in the protected account*.
    pub depth: u32,
    /// Whether the consumer sees a surrogate stand-in.
    pub surrogate: bool,
}

/// A consumer session over one materialized store.
pub struct Session {
    materialized: Materialized,
    consumer: Consumer,
    cache: HashMap<(PrivilegeId, Strategy), ProtectedAccount>,
    frontier_cache: HashMap<Strategy, ProtectedAccount>,
}

impl Session {
    /// Opens a session.
    pub fn new(materialized: Materialized, consumer: Consumer) -> Self {
        Self {
            materialized,
            consumer,
            cache: HashMap::new(),
            frontier_cache: HashMap::new(),
        }
    }

    /// The consumer this session authenticates.
    pub fn consumer(&self) -> &Consumer {
        &self.consumer
    }

    /// The underlying materialization.
    pub fn materialized(&self) -> &Materialized {
        &self.materialized
    }

    /// The strongest predicates the consumer can request accounts for.
    pub fn frontier(&self) -> Vec<PrivilegeId> {
        self.consumer.frontier(&self.materialized.lattice)
    }

    /// The protected account for `predicate`, generating and caching on
    /// first use. Fails if the consumer does not satisfy the predicate —
    /// an account's high-water set must be dominated by the consumer's
    /// credentials (§3.1).
    pub fn account(
        &mut self,
        predicate: PrivilegeId,
        strategy: Strategy,
    ) -> Result<&ProtectedAccount> {
        if !self.consumer.satisfies(predicate) {
            return Err(StoreError::NotAuthorized {
                consumer: self.consumer.name().to_string(),
                predicate: predicate.0,
            });
        }
        if !self.cache.contains_key(&(predicate, strategy)) {
            let account = self.materialized.context().protect(predicate, strategy)?;
            self.cache.insert((predicate, strategy), account);
        }
        Ok(&self.cache[&(predicate, strategy)])
    }

    /// The account for the consumer's *entire* credential frontier — the
    /// multi-predicate high-water account (Def. 6) a consumer holding
    /// several incomparable grants is entitled to. Cached per strategy.
    pub fn frontier_account(&mut self, strategy: Strategy) -> Result<&ProtectedAccount> {
        if !self.frontier_cache.contains_key(&strategy) {
            let frontier = self.consumer.frontier(&self.materialized.lattice);
            let account = self
                .materialized
                .context()
                .protect_set(&frontier, strategy)?;
            self.frontier_cache.insert(strategy, account);
        }
        Ok(&self.frontier_cache[&strategy])
    }

    /// Protected upstream lineage of `root` for `predicate`: the answer a
    /// consumer actually receives, traversing the protected account rather
    /// than the raw graph. Returns `None` rows for roots the consumer
    /// cannot see at all.
    pub fn upstream(
        &mut self,
        predicate: PrivilegeId,
        root: RecordId,
        max_depth: u32,
    ) -> Result<Vec<ProtectedLineageRow>> {
        self.lineage(predicate, root, max_depth, Direction::Backward)
    }

    /// Protected downstream lineage of `root` for `predicate`.
    pub fn downstream(
        &mut self,
        predicate: PrivilegeId,
        root: RecordId,
        max_depth: u32,
    ) -> Result<Vec<ProtectedLineageRow>> {
        self.lineage(predicate, root, max_depth, Direction::Forward)
    }

    /// The paper's motivating question (§1): through this consumer's
    /// protected account, is `a` related to `b` — i.e. does a directed
    /// path connect their visible representatives? `false` when either
    /// record is invisible to the consumer.
    pub fn related(&mut self, predicate: PrivilegeId, a: RecordId, b: RecordId) -> Result<bool> {
        let account = self.account(predicate, Strategy::Surrogate)?;
        let (Some(a2), Some(b2)) = (
            account.account_node(NodeId(a.0)),
            account.account_node(NodeId(b.0)),
        ) else {
            return Ok(false);
        };
        Ok(surrogate_core::query::reaches(account.graph(), a2, b2))
    }

    fn lineage(
        &mut self,
        predicate: PrivilegeId,
        root: RecordId,
        max_depth: u32,
        direction: Direction,
    ) -> Result<Vec<ProtectedLineageRow>> {
        let account = self.account(predicate, Strategy::Surrogate)?;
        let Some(root2) = account.account_node(NodeId(root.0)) else {
            return Ok(Vec::new()); // root invisible: nothing to traverse
        };
        let traversal = traverse(account.graph(), root2, direction, max_depth);
        Ok(traversal
            .visited
            .iter()
            .map(|&(n2, depth)| {
                let original = account.original_node(n2);
                ProtectedLineageRow {
                    record: RecordId(original.0),
                    label: account.graph().node(n2).label.clone(),
                    depth,
                    surrogate: !matches!(
                        account.correspondence(n2),
                        surrogate_core::account::Correspondence::Original
                    ),
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EdgeKind, NodeKind, PolicyStatement};
    use crate::store::Store;
    use surrogate_core::feature::Features;

    /// source(High, with a Public surrogate wired in place — the Fig. 2(a)
    /// pattern: incidences stay Visible, only the features are coarsened)
    /// → mid(Public) → sink(Public).
    fn setup() -> (Store, Vec<RecordId>) {
        let store = Store::new(&["Public", "High"], &[(1, 0)]).unwrap();
        let public = store.predicate("Public").unwrap();
        let high = store.predicate("High").unwrap();
        let source = store.append_node("secret source", NodeKind::Agent, Features::new(), high);
        let mid = store.append_node("analysis", NodeKind::Process, Features::new(), public);
        let sink = store.append_node("report", NodeKind::Data, Features::new(), public);
        store.append_edge(source, mid, EdgeKind::InputTo).unwrap();
        store.append_edge(mid, sink, EdgeKind::GeneratedBy).unwrap();
        store
            .apply_policy(PolicyStatement::AddSurrogate {
                node: source,
                label: "a trusted source".into(),
                features: Features::new(),
                lowest: public,
                info_score: 0.3,
            })
            .unwrap();
        (store, vec![source, mid, sink])
    }

    #[test]
    fn public_consumer_sees_surrogate_lineage() {
        let (store, ids) = setup();
        let m = store.materialize();
        let public = m.lattice.by_name("Public").unwrap();
        let consumer = Consumer::public(&m.lattice);
        let mut session = Session::new(m, consumer);
        let up = session.upstream(public, ids[2], u32::MAX).unwrap();
        assert_eq!(up.len(), 2);
        assert_eq!(up[0].label, "analysis");
        assert!(!up[0].surrogate);
        assert_eq!(up[1].label, "a trusted source");
        assert!(up[1].surrogate);
    }

    #[test]
    fn high_consumer_sees_originals() {
        let (store, ids) = setup();
        let m = store.materialize();
        let high = m.lattice.by_name("High").unwrap();
        let consumer = Consumer::new("agent", &m.lattice, &[high]);
        let mut session = Session::new(m, consumer);
        let up = session.upstream(high, ids[2], u32::MAX).unwrap();
        assert_eq!(up.len(), 2);
        assert_eq!(up[1].label, "secret source");
        assert!(!up[1].surrogate);
    }

    #[test]
    fn unauthorized_predicate_is_rejected() {
        let (store, _) = setup();
        let m = store.materialize();
        let high = m.lattice.by_name("High").unwrap();
        let consumer = Consumer::public(&m.lattice);
        let mut session = Session::new(m, consumer);
        assert!(matches!(
            session.account(high, Strategy::Surrogate),
            Err(StoreError::NotAuthorized { .. })
        ));
    }

    #[test]
    fn accounts_are_cached() {
        let (store, _) = setup();
        let m = store.materialize();
        let public = m.lattice.by_name("Public").unwrap();
        let consumer = Consumer::public(&m.lattice);
        let mut session = Session::new(m, consumer);
        let first = session
            .account(public, Strategy::Surrogate)
            .unwrap()
            .graph() as *const surrogate_core::graph::Graph;
        let second = session
            .account(public, Strategy::Surrogate)
            .unwrap()
            .graph() as *const surrogate_core::graph::Graph;
        assert_eq!(first, second, "same cached account object");
    }

    #[test]
    fn invisible_root_yields_empty_answer() {
        let (store, ids) = setup();
        let m = store.materialize();
        let public = m.lattice.by_name("Public").unwrap();
        // Remove the surrogate so the source is simply absent.
        let store2 = Store::new(&["Public", "High"], &[(1, 0)]).unwrap();
        let high = store2.predicate("High").unwrap();
        let source = store2.append_node("secret source", NodeKind::Agent, Features::new(), high);
        let m2 = store2.materialize();
        let consumer = Consumer::public(&m2.lattice);
        let mut session = Session::new(m2, consumer);
        let rows = session.downstream(public, source, u32::MAX).unwrap();
        assert!(rows.is_empty());
        let _ = (m, ids);
    }

    #[test]
    fn related_answers_through_the_protected_account() {
        let (store, ids) = setup();
        let m = store.materialize();
        let public = m.lattice.by_name("Public").unwrap();
        let mut session = Session::new(m, Consumer::public(&store.materialize().lattice));
        // source → mid → sink all connect through the surrogate.
        assert!(session.related(public, ids[0], ids[2]).unwrap());
        assert!(session.related(public, ids[1], ids[2]).unwrap());
        assert!(
            !session.related(public, ids[2], ids[0]).unwrap(),
            "directed"
        );
    }

    #[test]
    fn frontier_account_unions_incomparable_grants() {
        // Lattice: Public below incomparable A and B; one node per level.
        let store = Store::new(&["Public", "A", "B"], &[(1, 0), (2, 0)]).unwrap();
        let a = store.predicate("A").unwrap();
        let b = store.predicate("B").unwrap();
        let public = store.predicate("Public").unwrap();
        let na = store.append_node("na", NodeKind::Data, Features::new(), a);
        let nb = store.append_node("nb", NodeKind::Data, Features::new(), b);
        let np = store.append_node("np", NodeKind::Data, Features::new(), public);
        store.append_edge(na, np, EdgeKind::Related).unwrap();
        store.append_edge(np, nb, EdgeKind::Related).unwrap();

        let m = store.materialize();
        let consumer = Consumer::new("dual", &m.lattice, &[a, b]);
        let mut session = Session::new(m, consumer);
        let account = session.frontier_account(Strategy::Surrogate).unwrap();
        assert_eq!(account.high_water().len(), 2);
        assert_eq!(account.graph().node_count(), 3, "both branches visible");
        // Cached per strategy.
        let again = session
            .frontier_account(Strategy::Surrogate)
            .unwrap()
            .graph() as *const surrogate_core::graph::Graph;
        let first = session
            .frontier_account(Strategy::Surrogate)
            .unwrap()
            .graph() as *const surrogate_core::graph::Graph;
        assert_eq!(again, first);
    }

    #[test]
    fn frontier_reflects_consumer() {
        let (store, _) = setup();
        let m = store.materialize();
        let high = m.lattice.by_name("High").unwrap();
        let consumer = Consumer::new("agent", &m.lattice, &[high]);
        let session = Session::new(m, consumer);
        assert_eq!(session.frontier(), vec![high]);
        assert_eq!(session.consumer().name(), "agent");
    }
}
