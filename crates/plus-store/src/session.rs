//! Consumer sessions: a thin, credential-pinning view over an
//! [`AccountService`].
//!
//! A session binds one [`Consumer`] to a shared service, so call sites
//! answering that consumer's queries do not have to thread credentials
//! through every call. All caching, epoch tracking, and invalidation
//! happen in the service — a session holds no state of its own beyond the
//! consumer, so it is cheap to create per connection and can be dropped
//! freely.
//!
//! # Migration
//!
//! Before the service layer, `Session::new(materialized, consumer)` owned
//! a private per-session account cache. That constructor is deprecated:
//! open sessions against a shared service instead —
//!
//! ```
//! # use plus_store::{AccountService, Session, Store};
//! # use std::sync::Arc;
//! # use surrogate_core::credential::Consumer;
//! # let store = Arc::new(Store::public_only());
//! let service = Arc::new(AccountService::new(store));
//! let consumer = Consumer::public(&service.snapshot().lattice);
//! let session = Session::open(service, consumer);
//! ```
//!
//! — so concurrent sessions share one account cache and observe policy
//! mutations through the service's epoch instead of serving stale
//! private copies forever.

use std::sync::Arc;

use surrogate_core::account::{ProtectedAccount, Strategy};
use surrogate_core::credential::Consumer;
use surrogate_core::graph::NodeId;
use surrogate_core::privilege::PrivilegeId;
use surrogate_core::query::Direction;

use crate::error::Result;
use crate::record::RecordId;
use crate::service::{AccountService, QueryRequest, Snapshot};
use crate::store::Materialized;

pub use crate::service::ProtectedLineageRow;

/// A consumer session over a shared [`AccountService`].
pub struct Session {
    service: Arc<AccountService>,
    consumer: Consumer,
}

impl Session {
    /// Opens a session for `consumer` against a shared service.
    pub fn open(service: Arc<AccountService>, consumer: Consumer) -> Self {
        Self { service, consumer }
    }

    /// Opens a session over a private, frozen service pinned at epoch 0.
    ///
    /// Kept as a shim for pre-service call sites; accounts cached through
    /// it are never invalidated and never shared with other sessions.
    #[deprecated(
        since = "0.2.0",
        note = "open sessions against a shared `AccountService` with `Session::open`; \
                see the module docs for the migration"
    )]
    pub fn new(materialized: Materialized, consumer: Consumer) -> Self {
        Self::open(
            Arc::new(AccountService::from_materialized(materialized)),
            consumer,
        )
    }

    /// The service this session queries through.
    pub fn service(&self) -> &Arc<AccountService> {
        &self.service
    }

    /// The consumer this session authenticates.
    pub fn consumer(&self) -> &Consumer {
        &self.consumer
    }

    /// The service's current epoch-stamped materialization. (Dereferences
    /// to [`Materialized`], so `session.materialized().lattice` keeps
    /// working at old call sites.)
    pub fn materialized(&self) -> Arc<Snapshot> {
        self.service.snapshot()
    }

    /// The strongest predicates the consumer can request accounts for.
    pub fn frontier(&self) -> Vec<PrivilegeId> {
        self.consumer.frontier(&self.service.snapshot().lattice)
    }

    /// The protected account for `predicate` at the current epoch, served
    /// from the shared cache. Fails if the consumer does not satisfy the
    /// predicate — an account's high-water set must be dominated by the
    /// consumer's credentials (§3.1).
    pub fn account(
        &self,
        predicate: PrivilegeId,
        strategy: Strategy,
    ) -> Result<Arc<ProtectedAccount>> {
        self.service
            .get_account_for(&self.consumer, predicate, &strategy)
    }

    /// The account for the consumer's *entire* credential frontier — the
    /// multi-predicate high-water account (Def. 6) a consumer holding
    /// several incomparable grants is entitled to.
    pub fn frontier_account(&self, strategy: Strategy) -> Result<Arc<ProtectedAccount>> {
        self.service.get_account(&self.consumer, &strategy)
    }

    /// Protected upstream lineage of `root` for `predicate`: the answer a
    /// consumer actually receives, traversing the protected account rather
    /// than the raw graph. Empty when the root is invisible to the
    /// consumer.
    pub fn upstream(
        &self,
        predicate: PrivilegeId,
        root: RecordId,
        max_depth: u32,
    ) -> Result<Vec<ProtectedLineageRow>> {
        self.lineage(predicate, root, max_depth, Direction::Backward)
    }

    /// Protected downstream lineage of `root` for `predicate`.
    pub fn downstream(
        &self,
        predicate: PrivilegeId,
        root: RecordId,
        max_depth: u32,
    ) -> Result<Vec<ProtectedLineageRow>> {
        self.lineage(predicate, root, max_depth, Direction::Forward)
    }

    /// The paper's motivating question (§1): through this consumer's
    /// protected account, is `a` related to `b` — i.e. does a directed
    /// path connect their visible representatives? `false` when either
    /// record is invisible to the consumer.
    pub fn related(&self, predicate: PrivilegeId, a: RecordId, b: RecordId) -> Result<bool> {
        let account = self.account(predicate, Strategy::Surrogate)?;
        let (Some(a2), Some(b2)) = (
            account.account_node(NodeId(a.0)),
            account.account_node(NodeId(b.0)),
        ) else {
            return Ok(false);
        };
        Ok(surrogate_core::query::reaches(account.graph(), a2, b2))
    }

    fn lineage(
        &self,
        predicate: PrivilegeId,
        root: RecordId,
        max_depth: u32,
        direction: Direction,
    ) -> Result<Vec<ProtectedLineageRow>> {
        let request = QueryRequest::new(root, direction, max_depth, Strategy::Surrogate)
            .with_predicate(predicate);
        Ok(self.service.query(&self.consumer, &request)?.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StoreError;
    use crate::record::{EdgeKind, NodeKind, PolicyStatement};
    use crate::store::Store;
    use surrogate_core::feature::Features;

    /// source(High, with a Public surrogate) → mid(Public) → sink(Public).
    fn setup() -> (Arc<Store>, Vec<RecordId>) {
        let store = Arc::new(Store::new(&["Public", "High"], &[(1, 0)]).unwrap());
        let public = store.predicate("Public").unwrap();
        let high = store.predicate("High").unwrap();
        let source = store.append_node("secret source", NodeKind::Agent, Features::new(), high);
        let mid = store.append_node("analysis", NodeKind::Process, Features::new(), public);
        let sink = store.append_node("report", NodeKind::Data, Features::new(), public);
        store.append_edge(source, mid, EdgeKind::InputTo).unwrap();
        store.append_edge(mid, sink, EdgeKind::GeneratedBy).unwrap();
        store
            .apply_policy(PolicyStatement::AddSurrogate {
                node: source,
                label: "a trusted source".into(),
                features: Features::new(),
                lowest: public,
                info_score: 0.3,
            })
            .unwrap();
        (store, vec![source, mid, sink])
    }

    fn open_public(store: &Arc<Store>) -> Session {
        let service = Arc::new(AccountService::new(store.clone()));
        let consumer = Consumer::public(&service.snapshot().lattice);
        Session::open(service, consumer)
    }

    #[test]
    fn public_consumer_sees_surrogate_lineage() {
        let (store, ids) = setup();
        let public = store.predicate("Public").unwrap();
        let session = open_public(&store);
        let up = session.upstream(public, ids[2], u32::MAX).unwrap();
        assert_eq!(up.len(), 2);
        assert_eq!(up[0].label, "analysis");
        assert!(!up[0].surrogate);
        assert_eq!(up[1].label, "a trusted source");
        assert!(up[1].surrogate);
    }

    #[test]
    fn high_consumer_sees_originals() {
        let (store, ids) = setup();
        let high = store.predicate("High").unwrap();
        let service = Arc::new(AccountService::new(store.clone()));
        let consumer = Consumer::new("agent", &service.snapshot().lattice, &[high]);
        let session = Session::open(service, consumer);
        let up = session.upstream(high, ids[2], u32::MAX).unwrap();
        assert_eq!(up.len(), 2);
        assert_eq!(up[1].label, "secret source");
        assert!(!up[1].surrogate);
    }

    #[test]
    fn unauthorized_predicate_is_rejected() {
        let (store, _) = setup();
        let high = store.predicate("High").unwrap();
        let session = open_public(&store);
        assert!(matches!(
            session.account(high, Strategy::Surrogate),
            Err(StoreError::NotAuthorized { .. })
        ));
    }

    #[test]
    fn sessions_share_the_service_cache() {
        let (store, _) = setup();
        let public = store.predicate("Public").unwrap();
        let service = Arc::new(AccountService::new(store));
        let lattice = service.snapshot().lattice.clone();
        let first = Session::open(service.clone(), Consumer::public(&lattice));
        let second = Session::open(service.clone(), Consumer::new("other", &lattice, &[public]));
        let a = first.account(public, Strategy::Surrogate).unwrap();
        drop(first);
        // A different session (even after the first is gone) gets the same
        // cached account object from the shared service.
        let b = second.account(public, Strategy::Surrogate).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same cached account object");
        assert_eq!(service.cached_accounts(), 1);
    }

    #[test]
    fn sessions_observe_policy_mutations() {
        let (store, ids) = setup();
        let public = store.predicate("Public").unwrap();
        let session = open_public(&store);
        let before = session.upstream(public, ids[2], u32::MAX).unwrap();
        assert_eq!(before[1].label, "a trusted source");
        // The provider hides the source from the public entirely.
        store
            .apply_policy(PolicyStatement::MarkNode {
                node: ids[0],
                predicate: Some(public),
                marking: surrogate_core::marking::Marking::Hide,
            })
            .unwrap();
        let after = session.upstream(public, ids[2], u32::MAX).unwrap();
        assert_eq!(after.len(), 1, "epoch bump invalidated the account");
        assert_eq!(after[0].label, "analysis");
    }

    #[test]
    fn invisible_root_yields_empty_answer() {
        let store = Arc::new(Store::new(&["Public", "High"], &[(1, 0)]).unwrap());
        let public = store.predicate("Public").unwrap();
        let high = store.predicate("High").unwrap();
        let source = store.append_node("secret source", NodeKind::Agent, Features::new(), high);
        let session = open_public(&store);
        let rows = session.downstream(public, source, u32::MAX).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn related_answers_through_the_protected_account() {
        let (store, ids) = setup();
        let public = store.predicate("Public").unwrap();
        let session = open_public(&store);
        // source → mid → sink all connect through the surrogate.
        assert!(session.related(public, ids[0], ids[2]).unwrap());
        assert!(session.related(public, ids[1], ids[2]).unwrap());
        assert!(
            !session.related(public, ids[2], ids[0]).unwrap(),
            "directed"
        );
    }

    #[test]
    fn frontier_account_unions_incomparable_grants() {
        // Lattice: Public below incomparable A and B; one node per level.
        let store = Arc::new(Store::new(&["Public", "A", "B"], &[(1, 0), (2, 0)]).unwrap());
        let a = store.predicate("A").unwrap();
        let b = store.predicate("B").unwrap();
        let public = store.predicate("Public").unwrap();
        let na = store.append_node("na", NodeKind::Data, Features::new(), a);
        let nb = store.append_node("nb", NodeKind::Data, Features::new(), b);
        let np = store.append_node("np", NodeKind::Data, Features::new(), public);
        store.append_edge(na, np, EdgeKind::Related).unwrap();
        store.append_edge(np, nb, EdgeKind::Related).unwrap();

        let service = Arc::new(AccountService::new(store));
        let consumer = Consumer::new("dual", &service.snapshot().lattice, &[a, b]);
        let session = Session::open(service, consumer);
        let account = session.frontier_account(Strategy::Surrogate).unwrap();
        assert_eq!(account.high_water().len(), 2);
        assert_eq!(account.graph().node_count(), 3, "both branches visible");
        // Cached per strategy in the shared service.
        let again = session.frontier_account(Strategy::Surrogate).unwrap();
        assert!(Arc::ptr_eq(&account, &again));
    }

    #[test]
    fn frontier_reflects_consumer() {
        let (store, _) = setup();
        let high = store.predicate("High").unwrap();
        let service = Arc::new(AccountService::new(store));
        let consumer = Consumer::new("agent", &service.snapshot().lattice, &[high]);
        let session = Session::open(service, consumer);
        assert_eq!(session.frontier(), vec![high]);
        assert_eq!(session.consumer().name(), "agent");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_still_serves() {
        let (store, ids) = setup();
        let public = store.predicate("Public").unwrap();
        let m = store.materialize();
        let consumer = Consumer::public(&m.lattice);
        let session = Session::new(m, consumer);
        let up = session.upstream(public, ids[2], u32::MAX).unwrap();
        assert_eq!(up.len(), 2);
        assert_eq!(session.materialized().epoch(), 0, "frozen shim");
    }
}
