//! Store-level errors.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::record::RecordId;

/// Errors raised by the store, codec, service, and sessions.
///
/// `#[non_exhaustive]`: the service layer will keep growing variants
/// (stale-epoch rejection, per-consumer quotas, …) without a breaking
/// change; downstream matches need a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// A record id does not exist.
    UnknownRecord(RecordId),
    /// Graph-level rejection (duplicate edge, self-loop, …).
    Graph(surrogate_core::error::Error),
    /// The snapshot bytes are malformed.
    Codec(CodecError),
    /// Filesystem failure while persisting, loading, or logging. Carries
    /// the file or directory involved when known, so recovery tooling can
    /// report *which* snapshot or WAL segment failed.
    Io {
        /// The file or directory involved, when known.
        path: Option<PathBuf>,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A durable operation (checkpoint, WAL append) was requested of a
    /// purely in-memory store.
    NotDurable,
    /// An earlier write-ahead-log write failed, so the on-disk log may
    /// end in a torn frame; further durable appends are refused until the
    /// store is reopened (which truncates the torn tail).
    WalPoisoned,
    /// A store directory holds no decodable snapshot to recover from.
    NoSnapshot {
        /// The directory that was searched.
        dir: PathBuf,
    },
    /// A session was asked for a predicate its consumer does not satisfy.
    NotAuthorized {
        /// The consumer's name.
        consumer: String,
        /// The requested predicate's index.
        predicate: u16,
    },
    /// A protection setup cannot be represented as store policy.
    UnsupportedPolicy(&'static str),
    /// A service request named a protection strategy that is not
    /// registered.
    UnknownStrategy(String),
    /// A predicate id outside the store's lattice was passed to an
    /// append or policy call.
    UnknownPredicate(u16),
    /// A replicated record or snapshot does not continue this store's
    /// history: it is stamped for a different clock than the local tail
    /// (an out-of-order stream, or a primary whose history diverged).
    ReplicationGap {
        /// The clock the next replicated record must carry.
        expected: u64,
        /// The clock the record actually carried.
        found: u64,
    },
    /// A replicated frame carried a fencing term lower than one this
    /// store has already observed: its sender was deposed by a promotion
    /// and must not be allowed to extend (and thereby fork) history.
    DeposedPrimary {
        /// The stale term the frame carried.
        term: u64,
        /// The fencing term this store has observed.
        current: u64,
    },
    /// A write was routed to the wrong shard of a partitioned
    /// deployment: the record id that determines its placement (`from`
    /// for edges, the governed `node` for policy) belongs to another
    /// shard's residue class. The client should retry against the
    /// owning shard.
    WrongShard {
        /// The id that routed the write.
        id: RecordId,
        /// The index of the shard that owns it.
        owner: u32,
    },
    /// A gather feed delivered data inconsistent with the merge: a
    /// snapshot stamped for the wrong partition, a lattice differing
    /// from the one the other shards declared, or a corrupt chunk.
    ShardMismatch {
        /// The shard slot of the offending feed.
        slot: u32,
        /// What was inconsistent.
        reason: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownRecord(id) => write!(f, "unknown record {id:?}"),
            StoreError::Graph(e) => write!(f, "graph error: {e}"),
            StoreError::Codec(e) => write!(f, "snapshot codec error: {e}"),
            StoreError::Io {
                path: Some(path),
                source,
            } => write!(f, "io error at {}: {source}", path.display()),
            StoreError::Io { path: None, source } => write!(f, "io error: {source}"),
            StoreError::NotDurable => {
                write!(f, "store is in-memory only (no write-ahead log attached)")
            }
            StoreError::WalPoisoned => write!(
                f,
                "write-ahead log poisoned by an earlier write failure; reopen the store to recover"
            ),
            StoreError::NoSnapshot { dir } => write!(
                f,
                "no decodable snapshot found in store directory {}",
                dir.display()
            ),
            StoreError::NotAuthorized {
                consumer,
                predicate,
            } => write!(
                f,
                "consumer {consumer:?} does not satisfy predicate #{predicate}"
            ),
            StoreError::UnsupportedPolicy(reason) => {
                write!(f, "unsupported policy: {reason}")
            }
            StoreError::UnknownStrategy(name) => {
                write!(f, "no protection strategy registered under {name:?}")
            }
            StoreError::UnknownPredicate(id) => {
                write!(f, "predicate #{id} does not exist in the store's lattice")
            }
            StoreError::ReplicationGap { expected, found } => write!(
                f,
                "replicated record for clock {found} does not continue local history at clock {expected}"
            ),
            StoreError::DeposedPrimary { term, current } => write!(
                f,
                "replicated frame carries fencing term {term}, but term {current} has already been observed: its sender was deposed"
            ),
            StoreError::WrongShard { id, owner } => write!(
                f,
                "record {} is owned by shard {owner}; retry the write there",
                id.0
            ),
            StoreError::ShardMismatch { slot, reason } => {
                write!(f, "shard feed {slot} is inconsistent: {reason}")
            }
        }
    }
}

impl StoreError {
    /// An I/O error with the file or directory it concerns.
    pub fn io_at(path: impl AsRef<Path>, source: std::io::Error) -> Self {
        StoreError::Io {
            path: Some(path.as_ref().to_path_buf()),
            source,
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Graph(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<surrogate_core::error::Error> for StoreError {
    fn from(e: surrogate_core::error::Error) -> Self {
        StoreError::Graph(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io {
            path: None,
            source: e,
        }
    }
}

/// Snapshot decoding failures.
///
/// `#[non_exhaustive]`: the snapshot format is versioned and decoding can
/// grow failure modes; downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The magic header is wrong — not a PLUS snapshot.
    BadMagic,
    /// Unsupported snapshot version.
    UnsupportedVersion(u16),
    /// Bytes ended before the structure did.
    Truncated,
    /// Checksum mismatch: corruption or tampering.
    ChecksumMismatch,
    /// An enum tag is out of range.
    InvalidTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string is not valid UTF-8.
    InvalidUtf8,
    /// Snapshot references an out-of-range id.
    DanglingReference,
    /// A WAL frame declares a payload length beyond the sanity bound —
    /// corruption, not a real frame.
    FrameTooLarge(u32),
    /// An in-memory count exceeds what its wire field can carry, so the
    /// message cannot be encoded without silently truncating the count
    /// (and desynchronizing the stream for the peer decoding it).
    CountOverflow {
        /// What was being counted.
        what: &'static str,
        /// The actual count.
        count: usize,
        /// The largest count the wire field can carry.
        max: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a PLUS snapshot (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            CodecError::Truncated => write!(f, "snapshot truncated"),
            CodecError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            CodecError::InvalidTag { what, tag } => {
                write!(f, "invalid {what} tag {tag}")
            }
            CodecError::InvalidUtf8 => write!(f, "snapshot contains invalid UTF-8"),
            CodecError::DanglingReference => write!(f, "snapshot references a missing id"),
            CodecError::FrameTooLarge(len) => {
                write!(f, "wal frame declares an implausible {len}-byte payload")
            }
            CodecError::CountOverflow { what, count, max } => {
                write!(f, "{count} {what} exceed the wire field's maximum of {max}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(StoreError::UnknownRecord(RecordId(3))
            .to_string()
            .contains("unknown record"));
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::InvalidTag {
            what: "marking",
            tag: 9
        }
        .to_string()
        .contains("marking"));
    }

    #[test]
    fn conversions_wrap() {
        let e: StoreError = CodecError::Truncated.into();
        assert!(matches!(e, StoreError::Codec(_)));
        let e: StoreError = std::io::Error::other("x").into();
        assert!(matches!(e, StoreError::Io { path: None, .. }));
    }

    #[test]
    fn io_errors_carry_path_context() {
        let e = StoreError::io_at("/some/dir/wal-0.wal", std::io::Error::other("disk gone"));
        let text = e.to_string();
        assert!(text.contains("/some/dir/wal-0.wal"), "{text}");
        assert!(text.contains("disk gone"), "{text}");
        assert!(matches!(e, StoreError::Io { path: Some(_), .. }));
    }
}
