//! Store-level errors.

use std::fmt;

use crate::record::RecordId;

/// Errors raised by the store, codec, service, and sessions.
///
/// `#[non_exhaustive]`: the service layer will keep growing variants
/// (stale-epoch rejection, per-consumer quotas, …) without a breaking
/// change; downstream matches need a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// A record id does not exist.
    UnknownRecord(RecordId),
    /// Graph-level rejection (duplicate edge, self-loop, …).
    Graph(surrogate_core::error::Error),
    /// The snapshot bytes are malformed.
    Codec(CodecError),
    /// Filesystem failure while persisting or loading.
    Io(std::io::Error),
    /// A session was asked for a predicate its consumer does not satisfy.
    NotAuthorized {
        /// The consumer's name.
        consumer: String,
        /// The requested predicate's index.
        predicate: u16,
    },
    /// A protection setup cannot be represented as store policy.
    UnsupportedPolicy(&'static str),
    /// A service request named a protection strategy that is not
    /// registered.
    UnknownStrategy(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownRecord(id) => write!(f, "unknown record {id:?}"),
            StoreError::Graph(e) => write!(f, "graph error: {e}"),
            StoreError::Codec(e) => write!(f, "snapshot codec error: {e}"),
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::NotAuthorized {
                consumer,
                predicate,
            } => write!(
                f,
                "consumer {consumer:?} does not satisfy predicate #{predicate}"
            ),
            StoreError::UnsupportedPolicy(reason) => {
                write!(f, "unsupported policy: {reason}")
            }
            StoreError::UnknownStrategy(name) => {
                write!(f, "no protection strategy registered under {name:?}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Graph(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<surrogate_core::error::Error> for StoreError {
    fn from(e: surrogate_core::error::Error) -> Self {
        StoreError::Graph(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Snapshot decoding failures.
///
/// `#[non_exhaustive]`: the snapshot format is versioned and decoding can
/// grow failure modes; downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The magic header is wrong — not a PLUS snapshot.
    BadMagic,
    /// Unsupported snapshot version.
    UnsupportedVersion(u16),
    /// Bytes ended before the structure did.
    Truncated,
    /// Checksum mismatch: corruption or tampering.
    ChecksumMismatch,
    /// An enum tag is out of range.
    InvalidTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string is not valid UTF-8.
    InvalidUtf8,
    /// Snapshot references an out-of-range id.
    DanglingReference,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a PLUS snapshot (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            CodecError::Truncated => write!(f, "snapshot truncated"),
            CodecError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            CodecError::InvalidTag { what, tag } => {
                write!(f, "invalid {what} tag {tag}")
            }
            CodecError::InvalidUtf8 => write!(f, "snapshot contains invalid UTF-8"),
            CodecError::DanglingReference => write!(f, "snapshot references a missing id"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(StoreError::UnknownRecord(RecordId(3))
            .to_string()
            .contains("unknown record"));
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::InvalidTag {
            what: "marking",
            tag: 9
        }
        .to_string()
        .contains("marking"));
    }

    #[test]
    fn conversions_wrap() {
        let e: StoreError = CodecError::Truncated.into();
        assert!(matches!(e, StoreError::Codec(_)));
        let e: StoreError = std::io::Error::other("x").into();
        assert!(matches!(e, StoreError::Io(_)));
    }
}
