//! Lineage queries over a materialized store — the paper's motivating
//! workload ("what data and processes contributed to this data?", §1).

use surrogate_core::graph::NodeId;
use surrogate_core::query::{traverse, Direction, Traversal};

use crate::record::{EdgeKind, RecordId};
use crate::store::{Materialized, Store};

/// One hop of a lineage answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageRow {
    /// The record reached.
    pub record: RecordId,
    /// Its label.
    pub label: String,
    /// Hops from the query root.
    pub depth: u32,
}

fn rows(m: &Materialized, traversal: Traversal) -> Vec<LineageRow> {
    traversal
        .visited
        .iter()
        .map(|&(n, depth)| LineageRow {
            record: RecordId(n.0),
            label: m.graph.node(n).label.clone(),
            depth,
        })
        .collect()
}

/// Everything upstream of `root` (its provenance), to `max_depth` hops.
pub fn upstream(m: &Materialized, root: RecordId, max_depth: u32) -> Vec<LineageRow> {
    rows(
        m,
        traverse(&m.graph, NodeId(root.0), Direction::Backward, max_depth),
    )
}

/// Everything downstream of `root` (its impact), to `max_depth` hops.
pub fn downstream(m: &Materialized, root: RecordId, max_depth: u32) -> Vec<LineageRow> {
    rows(
        m,
        traverse(&m.graph, NodeId(root.0), Direction::Forward, max_depth),
    )
}

/// Upstream lineage restricted to the given relationship kinds — e.g.
/// only `InputTo`/`GeneratedBy` for data derivation, skipping `Related`
/// social ties. Runs over the store (which retains edge kinds; the
/// materialized graph does not) and follows kind-matching edges only.
pub fn upstream_by_kind(
    store: &Store,
    m: &Materialized,
    root: RecordId,
    kinds: &[EdgeKind],
    max_depth: u32,
) -> Vec<LineageRow> {
    walk_by_kind(store, m, root, kinds, max_depth, Direction::Backward)
}

/// Downstream analogue of [`upstream_by_kind`].
pub fn downstream_by_kind(
    store: &Store,
    m: &Materialized,
    root: RecordId,
    kinds: &[EdgeKind],
    max_depth: u32,
) -> Vec<LineageRow> {
    walk_by_kind(store, m, root, kinds, max_depth, Direction::Forward)
}

fn walk_by_kind(
    store: &Store,
    m: &Materialized,
    root: RecordId,
    kinds: &[EdgeKind],
    max_depth: u32,
    direction: Direction,
) -> Vec<LineageRow> {
    use std::collections::VecDeque;
    let mut adjacency: std::collections::HashMap<RecordId, Vec<RecordId>> =
        std::collections::HashMap::new();
    for edge in store.edges() {
        if !kinds.contains(&edge.kind) {
            continue;
        }
        let (from, to) = match direction {
            Direction::Forward => (edge.from, edge.to),
            Direction::Backward => (edge.to, edge.from),
            Direction::Both => (edge.from, edge.to),
        };
        adjacency.entry(from).or_default().push(to);
        if matches!(direction, Direction::Both) {
            adjacency.entry(to).or_default().push(from);
        }
    }
    let mut seen = std::collections::HashSet::new();
    seen.insert(root);
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    queue.push_back((root, 0u32));
    while let Some((at, depth)) = queue.pop_front() {
        if depth >= max_depth {
            continue;
        }
        if let Some(nexts) = adjacency.get(&at) {
            for &next in nexts {
                if seen.insert(next) {
                    out.push(LineageRow {
                        record: next,
                        label: m.graph.node(NodeId(next.0)).label.clone(),
                        depth: depth + 1,
                    });
                    queue.push_back((next, depth + 1));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EdgeKind, NodeKind};
    use crate::store::Store;
    use surrogate_core::feature::Features;

    fn pipeline() -> (Store, Vec<RecordId>) {
        let store = Store::public_only();
        let public = store.predicate("Public").unwrap();
        let ids: Vec<RecordId> = (0..4)
            .map(|i| {
                store.append_node(format!("stage{i}"), NodeKind::Data, Features::new(), public)
            })
            .collect();
        for w in ids.windows(2) {
            store.append_edge(w[0], w[1], EdgeKind::InputTo).unwrap();
        }
        (store, ids)
    }

    #[test]
    fn upstream_walks_ancestry() {
        let (store, ids) = pipeline();
        let m = store.materialize();
        let up = upstream(&m, ids[3], u32::MAX);
        assert_eq!(up.len(), 3);
        assert_eq!(up[0].label, "stage2");
        assert_eq!(up[0].depth, 1);
        assert_eq!(up[2].depth, 3);
    }

    #[test]
    fn downstream_walks_impact() {
        let (store, ids) = pipeline();
        let m = store.materialize();
        let down = downstream(&m, ids[0], u32::MAX);
        assert_eq!(down.len(), 3);
        assert_eq!(down[2].record, ids[3]);
    }

    #[test]
    fn kind_filtered_lineage_skips_other_relationships() {
        let store = Store::public_only();
        let public = store.predicate("Public").unwrap();
        let a = store.append_node("a", NodeKind::Data, Features::new(), public);
        let b = store.append_node("b", NodeKind::Process, Features::new(), public);
        let c = store.append_node("c", NodeKind::Data, Features::new(), public);
        let d = store.append_node("d", NodeKind::Agent, Features::new(), public);
        store.append_edge(a, b, EdgeKind::InputTo).unwrap();
        store.append_edge(b, c, EdgeKind::GeneratedBy).unwrap();
        store.append_edge(d, c, EdgeKind::Related).unwrap();
        let m = store.materialize();
        let derivation = upstream_by_kind(
            &store,
            &m,
            c,
            &[EdgeKind::InputTo, EdgeKind::GeneratedBy],
            u32::MAX,
        );
        let labels: Vec<&str> = derivation.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["b", "a"], "agent tie excluded");
        let everything = upstream(&m, c, u32::MAX);
        assert_eq!(everything.len(), 3, "unfiltered walk sees the agent");
        let downstream_data = downstream_by_kind(&store, &m, a, &[EdgeKind::InputTo], u32::MAX);
        assert_eq!(downstream_data.len(), 1);
        assert_eq!(downstream_data[0].label, "b");
    }

    #[test]
    fn depth_limit_applies() {
        let (store, ids) = pipeline();
        let m = store.materialize();
        assert_eq!(upstream(&m, ids[3], 1).len(), 1);
        assert_eq!(downstream(&m, ids[0], 2).len(), 2);
    }
}
