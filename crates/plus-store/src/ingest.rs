//! Importing a complete protection setup — graph, lattice, markings,
//! surrogate catalog — into a [`Store`].
//!
//! Generators and applications build their scenarios as `surrogate-core`
//! values; deployments persist them as stores. `ingest` performs that
//! conversion faithfully: predicate ids carry over unchanged (the store's
//! lattice is rebuilt from the source lattice's names and dominance
//! pairs), and every explicit marking rule and surrogate definition
//! becomes a policy statement, so `store.materialize()` round-trips the
//! setup.

use surrogate_core::graph::{Edge, Graph, NodeId};
use surrogate_core::marking::{Marking, MarkingRule, MarkingStore};
use surrogate_core::privilege::PrivilegeLattice;
use surrogate_core::surrogate::SurrogateCatalog;

use crate::error::{Result, StoreError};
use crate::record::{EdgeKind, NodeKind, PolicyStatement, RecordId};
use crate::store::Store;

/// How `ingest` assigns record kinds; defaults classify everything as
/// data artifacts related generically.
#[derive(Clone)]
pub struct IngestKinds<'a> {
    /// Kind of each node record.
    pub node_kind: &'a dyn Fn(NodeId) -> NodeKind,
    /// Kind of each edge record.
    pub edge_kind: &'a dyn Fn(Edge) -> EdgeKind,
}

impl Default for IngestKinds<'_> {
    fn default() -> Self {
        Self {
            node_kind: &|_| NodeKind::Data,
            edge_kind: &|_| EdgeKind::Related,
        }
    }
}

/// Imports a protection setup into a fresh store. See the module docs.
///
/// Fails if the marking store uses a non-`Visible` global default (which
/// has no policy-statement representation) or if the setup is internally
/// inconsistent (dangling ids).
pub fn ingest(
    graph: &Graph,
    lattice: &PrivilegeLattice,
    markings: &MarkingStore,
    catalog: &SurrogateCatalog,
    kinds: IngestKinds<'_>,
) -> Result<Store> {
    if markings.default_marking() != Marking::Visible {
        return Err(StoreError::UnsupportedPolicy(
            "marking stores with a non-Visible global default cannot be exported as policy",
        ));
    }

    let names = lattice.names_in_order();
    let pairs: Vec<(usize, usize)> = lattice
        .dominance_pairs()
        .into_iter()
        .map(|(hi, lo)| (hi.index(), lo.index()))
        .collect();
    let store = Store::new(&names, &pairs)?;

    for n in graph.node_ids() {
        let node = graph.node(n);
        store.append_node(
            node.label.clone(),
            (kinds.node_kind)(n),
            node.features.clone(),
            node.lowest,
        );
    }
    for edge in graph.edges() {
        store.append_edge(
            RecordId(edge.0 .0),
            RecordId(edge.1 .0),
            (kinds.edge_kind)(edge),
        )?;
    }

    for rule in markings.rules() {
        let statement = match rule {
            MarkingRule::IncidencePred {
                node,
                edge,
                predicate,
                marking,
            } => PolicyStatement::MarkIncidence {
                node: RecordId(node.0),
                from: RecordId(edge.0 .0),
                to: RecordId(edge.1 .0),
                predicate: Some(predicate),
                marking,
            },
            MarkingRule::Incidence {
                node,
                edge,
                marking,
            } => PolicyStatement::MarkIncidence {
                node: RecordId(node.0),
                from: RecordId(edge.0 .0),
                to: RecordId(edge.1 .0),
                predicate: None,
                marking,
            },
            MarkingRule::NodePred {
                node,
                predicate,
                marking,
            } => PolicyStatement::MarkNode {
                node: RecordId(node.0),
                predicate: Some(predicate),
                marking,
            },
            MarkingRule::Node { node, marking } => PolicyStatement::MarkNode {
                node: RecordId(node.0),
                predicate: None,
                marking,
            },
        };
        store.apply_policy(statement)?;
    }

    for n in graph.node_ids() {
        for def in catalog.for_node(n) {
            store.apply_policy(PolicyStatement::AddSurrogate {
                node: RecordId(n.0),
                label: def.label.clone(),
                features: def.features.clone(),
                lowest: def.lowest,
                info_score: def.info_score,
            })?;
        }
    }

    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use surrogate_core::account::{generate_for_set, ProtectionContext};
    use surrogate_core::feature::Features;
    use surrogate_core::surrogate::SurrogateDef;

    fn setup() -> (Graph, PrivilegeLattice, MarkingStore, SurrogateCatalog) {
        let (lattice, preds) = PrivilegeLattice::flat(&["High"]).unwrap();
        let high = preds[0];
        let public = lattice.public();
        let mut graph = Graph::new();
        let a = graph.add_node("a", public);
        let b = graph.add_node_with_features("b", Features::new().with("k", 1i64), high);
        let c = graph.add_node("c", public);
        graph.add_edge(a, b).unwrap();
        graph.add_edge(b, c).unwrap();
        let mut markings = MarkingStore::new();
        markings.set_node(b, public, Marking::Surrogate);
        markings.set(a, (a, b), high, Marking::Visible);
        let mut catalog = SurrogateCatalog::new();
        catalog.add(
            b,
            SurrogateDef {
                label: "b'".into(),
                features: Features::new(),
                lowest: public,
                info_score: 0.4,
            },
        );
        (graph, lattice, markings, catalog)
    }

    #[test]
    fn ingest_roundtrips_through_materialize() {
        let (graph, lattice, markings, catalog) = setup();
        let store = ingest(
            &graph,
            &lattice,
            &markings,
            &catalog,
            IngestKinds::default(),
        )
        .unwrap();
        let m = store.materialize();
        assert_eq!(m.graph.node_count(), graph.node_count());
        assert_eq!(m.graph.edge_count(), graph.edge_count());
        // Same lattice (names and dominance).
        for p in lattice.ids() {
            for q in lattice.ids() {
                assert_eq!(lattice.dominates(p, q), m.lattice.dominates(p, q));
            }
        }
        // The protected account computed from either side is identical.
        let public = lattice.public();
        let direct = {
            let ctx = ProtectionContext::new(&graph, &lattice, &markings, &catalog);
            generate_for_set(&ctx, &[public]).unwrap()
        };
        let via_store = generate_for_set(&m.context(), &[public]).unwrap();
        assert_eq!(direct.graph().node_count(), via_store.graph().node_count());
        assert_eq!(direct.graph().edge_count(), via_store.graph().edge_count());
        assert_eq!(
            direct.surrogate_edge_count(),
            via_store.surrogate_edge_count()
        );
    }

    #[test]
    fn ingest_survives_snapshot_roundtrip() {
        let (graph, lattice, markings, catalog) = setup();
        let store = ingest(
            &graph,
            &lattice,
            &markings,
            &catalog,
            IngestKinds::default(),
        )
        .unwrap();
        let restored = Store::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(restored.to_bytes(), store.to_bytes());
    }

    #[test]
    fn non_visible_default_is_rejected() {
        let (graph, lattice, _, catalog) = setup();
        let markings = MarkingStore::new().with_default(Marking::Hide);
        assert!(matches!(
            ingest(
                &graph,
                &lattice,
                &markings,
                &catalog,
                IngestKinds::default()
            ),
            Err(StoreError::UnsupportedPolicy(_))
        ));
    }

    #[test]
    fn custom_kinds_are_applied() {
        let (graph, lattice, markings, catalog) = setup();
        let node_kind = |n: NodeId| {
            if n.0 == 1 {
                NodeKind::Process
            } else {
                NodeKind::Data
            }
        };
        let edge_kind = |_: Edge| EdgeKind::InputTo;
        let store = ingest(
            &graph,
            &lattice,
            &markings,
            &catalog,
            IngestKinds {
                node_kind: &node_kind,
                edge_kind: &edge_kind,
            },
        )
        .unwrap();
        assert_eq!(store.node(RecordId(1)).unwrap().kind, NodeKind::Process);
        assert_eq!(store.node(RecordId(0)).unwrap().kind, NodeKind::Data);
    }
}
