//! The replicated-shard churn suite: per-shard fenced failover under a
//! gather, against a single-store oracle.
//!
//! The headline harness sweeps 100 seed-randomized kill/promote
//! schedules over a 2-shard deployment in which every shard primary has
//! its own WAL-shipping replica. Each seed:
//!
//! * routes an acknowledged prefix of a deterministic workload through
//!   a [`ShardRouter`] (a write counts as *acknowledged* only once the
//!   owning shard's replica has caught up past it),
//! * kills one shard primary, appends a small unreplicated fork to its
//!   store (the writes it lost the right to acknowledge), and promotes
//!   the shard's replica — mostly in-process, every 8th seed over the
//!   wire through the replica's fronting server (`spgraph promote`'s
//!   path),
//! * keeps writing through the router, which must fail the slot over to
//!   the promoted primary via the `NotWritable`/dead-socket discipline,
//! * polls the gather throughout and feeds every query-visible epoch
//!   vector into [`EpochVector::observe`] — a single regression, even
//!   mid-repair, fails the seed,
//! * finally diffs every root's traversal through the gather against an
//!   unsharded oracle that applied the same acknowledged operations —
//!   byte-identical, with the scalar epoch equal to the vector's sum,
//! * and (every 4th seed) restarts the deposed shard primary as a
//!   replica of the promoted one: the fork must be truncated by
//!   anti-entropy, the promoted term adopted, and the stores converge
//!   byte-for-byte.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use plus_store::wire::{WireErrorKind, WriteOp};
use plus_store::{
    AccountService, Direction, DurabilityOptions, EdgeKind, NodeKind, PolicyStatement,
    QueryRequest, QueryResponse, RecordId, ReplicaRole, Store, Strategy,
};
use server::{
    Client, ClientError, Gather, GatherConfig, Replica, ReplicaConfig, Server, ServerConfig,
    ShardRouter, Topology,
};
use surrogate_core::feature::Features;
use surrogate_core::marking::Marking;
use surrogate_core::shard::{EpochVector, Partition};

const LATTICE: (&[&str], &[(usize, usize)]) = (&["Public", "Mid", "High"], &[(1, 0), (2, 1)]);
const SHARDS: u32 = 2;
const SYNC: Duration = Duration::from_secs(20);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "shardfail-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast() -> DurabilityOptions {
    DurabilityOptions {
        fsync: false,
        ..Default::default()
    }
}

fn replica_config() -> ReplicaConfig {
    ReplicaConfig {
        durability: fast(),
        connect_attempts: 100,
        reconnect_backoff: Duration::from_millis(10),
        ..ReplicaConfig::default()
    }
}

fn gather_config() -> GatherConfig {
    GatherConfig {
        reconnect_backoff: Duration::from_millis(10),
        ..GatherConfig::default()
    }
}

fn shard_server_config(index: u32, topology: &Topology) -> ServerConfig {
    ServerConfig {
        role: server::Role::Shard {
            index,
            count: SHARDS,
            topology: topology.clone(),
            feed: None,
        },
        threads: 2,
        allow_replication: true,
        ..ServerConfig::default()
    }
}

fn wait_until(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    done()
}

/// The deterministic workload, op by op: mostly node appends (which the
/// router round-robins, keeping global ids dense and oracle-comparable),
/// every 4th op a chain edge between the two most recent nodes (unique
/// pairs by construction, crossing shards by id parity), every 10th a
/// policy statement routed by its governed node.
fn op_at(i: usize, nodes: u32) -> WriteOp {
    if i % 10 == 9 && nodes > 0 {
        WriteOp::ApplyPolicy(PolicyStatement::MarkNode {
            node: RecordId((i as u32 * 7 + 3) % nodes),
            predicate: None,
            marking: Marking::Hide,
        })
    } else if i % 4 == 3 && nodes >= 2 {
        WriteOp::AppendEdge {
            from: RecordId(nodes - 2),
            to: RecordId(nodes - 1),
            kind: [EdgeKind::InputTo, EdgeKind::GeneratedBy, EdgeKind::Related][i % 3],
        }
    } else {
        WriteOp::AppendNode {
            label: format!("n{i}"),
            kind: [NodeKind::Data, NodeKind::Process, NodeKind::Agent][i % 3],
            features: Features::new().with("i", i as i64),
            lowest: surrogate_core::privilege::PrivilegeId(0), // patched by the caller
        }
    }
}

/// Applies `op` to the unsharded oracle store.
fn oracle_apply(store: &Store, op: &WriteOp) {
    match op {
        WriteOp::AppendNode {
            label,
            kind,
            features,
            lowest,
        } => {
            store
                .try_append_node(label.clone(), *kind, features.clone(), *lowest)
                .unwrap();
        }
        WriteOp::AppendEdge { from, to, kind } => {
            store.append_edge(*from, *to, *kind).unwrap();
        }
        WriteOp::ApplyPolicy(statement) => {
            store.apply_policy(statement.clone()).unwrap();
        }
    }
}

/// One seed's deployment: two shard primaries, one replica each (with a
/// replication-enabled fronting server), a gather over the full
/// topology, and a router that knows the failover candidates.
struct Deployment {
    stores: Vec<Option<Arc<Store>>>,
    services: Vec<Option<Arc<AccountService>>>,
    servers: Vec<Option<Server>>,
    replicas: Vec<Option<Replica>>,
    replica_fronts: Vec<Option<Server>>,
    primary_dirs: Vec<PathBuf>,
    replica_dirs: Vec<PathBuf>,
    topology: Topology,
    gather: Option<Arc<Gather>>,
    front: Option<Server>,
}

impl Deployment {
    fn boot(seed: u64) -> Deployment {
        let mut stores = Vec::new();
        let mut services = Vec::new();
        let mut servers = Vec::new();
        let mut primary_dirs = Vec::new();
        let mut primaries = Vec::new();
        for index in 0..SHARDS {
            let dir = temp_dir(&format!("{seed}-p{index}"));
            let partition = Partition::new(index, SHARDS).unwrap();
            let store = Arc::new(
                Store::create_durable_partitioned(&dir, LATTICE.0, LATTICE.1, fast(), partition)
                    .unwrap(),
            );
            let service = Arc::new(AccountService::new(store.clone()));
            let server = Server::bind(
                service.clone(),
                "127.0.0.1:0",
                &shard_server_config(index, &Topology::default()),
            )
            .unwrap();
            primaries.push(server.local_addr().to_string());
            stores.push(Some(store));
            services.push(Some(service));
            servers.push(Some(server));
            primary_dirs.push(dir);
        }

        let mut replicas = Vec::new();
        let mut replica_fronts = Vec::new();
        let mut replica_dirs = Vec::new();
        let mut sites = Vec::new();
        for index in 0..SHARDS {
            let dir = temp_dir(&format!("{seed}-r{index}"));
            let replica =
                Replica::start_with(&primaries[index as usize], &dir, replica_config()).unwrap();
            // The replica's front speaks the same shard role (so a
            // promotion flips it to a writable shard primary in place)
            // with replication on (so the gather and rejoining peers can
            // follow the promoted feed).
            let front = Server::bind(
                replica.service().clone(),
                "127.0.0.1:0",
                &ServerConfig {
                    role: server::Role::Shard {
                        index,
                        count: SHARDS,
                        topology: Topology::default(),
                        feed: Some(replica.monitor()),
                    },
                    threads: 2,
                    allow_replication: true,
                    ..ServerConfig::default()
                },
            )
            .unwrap();
            sites.push(format!(
                "{}+{}",
                primaries[index as usize],
                front.local_addr()
            ));
            replicas.push(Some(replica));
            replica_fronts.push(Some(front));
            replica_dirs.push(dir);
        }

        let topology = Topology::parse(&sites.join(","))
            .unwrap()
            .with_consumer("writer", Vec::<String>::new());
        let gather = Arc::new(Gather::start_topology(&topology, gather_config()).unwrap());
        let front = Server::bind(
            gather.service().clone(),
            "127.0.0.1:0",
            &ServerConfig {
                role: server::Role::Gather {
                    gather: gather.clone(),
                },
                threads: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();

        Deployment {
            stores,
            services,
            servers,
            replicas,
            replica_fronts,
            primary_dirs,
            replica_dirs,
            topology,
            gather: Some(gather),
            front: Some(front),
        }
    }

    /// Every shard replica has caught up with its primary's clock: all
    /// writes so far are acknowledged.
    fn ack_barrier(&self, seed: u64) {
        for index in 0..SHARDS as usize {
            let clock = self.stores[index].as_ref().unwrap().clock();
            let replica = self.replicas[index].as_ref().unwrap();
            assert!(
                wait_until(SYNC, || replica.epoch() >= clock),
                "seed {seed}: shard {index} replica stuck at {} of {clock}: {:?}",
                replica.epoch(),
                replica.status()
            );
        }
    }

    fn teardown(mut self) {
        if let Some(front) = self.front.take() {
            front.shutdown();
        }
        drop(self.gather.take());
        for front in self.replica_fronts.iter_mut().filter_map(Option::take) {
            front.shutdown();
        }
        for replica in self.replicas.iter_mut().filter_map(Option::take) {
            replica.shutdown();
        }
        for server in self.servers.iter_mut().filter_map(Option::take) {
            server.shutdown();
        }
        for dir in self.primary_dirs.iter().chain(self.replica_dirs.iter()) {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Polls one gather answer and folds its epoch vector into the
/// monotonicity tracker. Typed refusals (`ShardUnavailable` mid-repair)
/// and transient socket errors are fine; a regressed vector is not.
fn observe_gather(
    front_addr: &str,
    tracker: &mut EpochVector,
    seed: u64,
    probe: &QueryRequest,
) -> Option<QueryResponse> {
    let mut client = match Client::connect(front_addr, "monitor", &[]) {
        Ok(client) => client,
        Err(_) => return None,
    };
    match client.query(probe) {
        Ok(response) => {
            assert_eq!(
                response.shard_epochs.iter().sum::<u64>(),
                response.epoch,
                "seed {seed}: gather epoch is not the vector sum"
            );
            tracker
                .observe(&response.shard_epochs)
                .unwrap_or_else(|e| panic!("seed {seed}: gather epoch vector regressed: {e}"));
            Some(response)
        }
        Err(ClientError::Remote(remote)) => {
            assert_eq!(
                remote.kind,
                WireErrorKind::ShardUnavailable,
                "seed {seed}: unexpected refusal {remote:?}"
            );
            None
        }
        Err(_) => None,
    }
}

#[test]
fn randomized_shard_primary_kills_preserve_acked_writes_and_epoch_order() {
    const SEEDS: u64 = 100;

    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut deployment = Deployment::boot(seed);
        let front_addr = deployment.front.as_ref().unwrap().local_addr().to_string();
        let router = ShardRouter::new(&deployment.topology).unwrap();
        let public = router.pool(0).get().unwrap().predicate("Public").unwrap();

        // The oracle: one unsharded store applying the identical ops.
        let oracle = Store::new(LATTICE.0, LATTICE.1).unwrap();

        let mut tracker = EpochVector::new(SHARDS);
        let mut nodes = 0u32;
        let mut applied = 0usize;
        let apply = |router: &ShardRouter, oracle: &Store, i: usize, nodes: &mut u32| {
            let mut op = op_at(i, *nodes);
            if let WriteOp::AppendNode { lowest, .. } = &mut op {
                *lowest = public;
                *nodes += 1;
            }
            let (_, id) = router
                .write(op.clone())
                .unwrap_or_else(|e| panic!("seed {seed}: write {i} failed: {e}"));
            if let WriteOp::AppendNode { .. } = &op {
                assert_eq!(
                    id,
                    Some(RecordId(*nodes - 1)),
                    "seed {seed}: round-robin ids must stay dense"
                );
            }
            oracle_apply(oracle, &op);
        };

        // Phase 1: an acknowledged prefix.
        let k1 = rng.gen_range(4..=24usize);
        for i in 0..k1 {
            apply(&router, &oracle, i, &mut nodes);
            applied += 1;
        }
        deployment.ack_barrier(seed);

        let probe = QueryRequest::new(
            RecordId(0),
            Direction::Forward,
            u32::MAX,
            Strategy::Surrogate,
        );
        assert!(
            wait_until(SYNC, || {
                observe_gather(&front_addr, &mut tracker, seed, &probe)
                    .is_some_and(|r| r.epoch >= applied as u64)
            }),
            "seed {seed}: gather never reflected the acknowledged prefix"
        );

        // Kill one shard primary; append an unreplicated fork to its
        // store — the writes it would have lost the right to ack.
        let victim = rng.gen_range(0..SHARDS) as usize;
        deployment.servers[victim].take().unwrap().shutdown();
        let deposed_store = deployment.stores[victim].take().unwrap();
        let fork = rng.gen_range(0..4usize);
        for f in 0..fork {
            deposed_store.append_node(format!("fork-{f}"), NodeKind::Data, Features::new(), public);
        }

        // Promote the victim's replica: in-process mostly, every 8th
        // seed over the wire through its fronting server (the operator
        // runbook path).
        let old_term = deployment.replicas[victim]
            .as_ref()
            .unwrap()
            .store()
            .replication_term();
        let promoted_addr = deployment.replica_fronts[victim]
            .as_ref()
            .unwrap()
            .local_addr()
            .to_string();
        let term = if seed % 8 == 0 {
            let mut client = Client::connect(promoted_addr.as_str(), "op", &[]).unwrap();
            client.promote().unwrap()
        } else {
            deployment.replicas[victim]
                .as_ref()
                .unwrap()
                .promote()
                .unwrap()
        };
        assert_eq!(term, old_term + 1, "seed {seed}: promotion bumps the term");
        assert_eq!(
            deployment.replicas[victim].as_ref().unwrap().status().role,
            ReplicaRole::Primary,
            "seed {seed}"
        );

        // Phase 2: keep writing through the router. The victim slot must
        // fail over to the promoted primary; the live slot is untouched.
        let k2 = rng.gen_range(2..=8usize);
        for i in k1..k1 + k2 {
            apply(&router, &oracle, i, &mut nodes);
            applied += 1;
            observe_gather(&front_addr, &mut tracker, seed, &probe);
        }

        // The gather must re-resolve the promoted feed (term bump →
        // slot re-bootstrap) and converge on every acknowledged write.
        let gather = deployment.gather.as_ref().unwrap().clone();
        assert!(
            wait_until(SYNC, || gather.synced()),
            "seed {seed}: gather never resynced after the failover \
             (slot errors: {:?}, {:?})",
            gather.last_error(0),
            gather.last_error(1)
        );
        assert_eq!(
            gather.term(victim as u32),
            Some(term),
            "seed {seed}: the gather adopted the promoted term"
        );
        assert!(
            wait_until(SYNC, || {
                observe_gather(&front_addr, &mut tracker, seed, &probe)
                    .is_some_and(|r| r.epoch >= applied as u64)
            }),
            "seed {seed}: gather never reflected the post-failover writes"
        );

        // Oracle diff: every root, both directions, byte-identical rows
        // through the gather; the fork never appears.
        let oracle_server = Server::bind(
            Arc::new(AccountService::new(Arc::new(oracle))),
            "127.0.0.1:0",
            &ServerConfig::default(),
        )
        .unwrap();
        let mut via_gather = Client::connect(front_addr.as_str(), "auditor", &["High"]).unwrap();
        let mut via_oracle =
            Client::connect(oracle_server.local_addr(), "auditor", &["High"]).unwrap();
        for root in 0..nodes {
            for direction in [Direction::Backward, Direction::Forward] {
                let request =
                    QueryRequest::new(RecordId(root), direction, u32::MAX, Strategy::Surrogate);
                let sharded = via_gather.query(&request).unwrap();
                let single = via_oracle.query(&request).unwrap();
                tracker
                    .observe(&sharded.shard_epochs)
                    .unwrap_or_else(|e| panic!("seed {seed}: epoch vector regressed: {e}"));
                let mut flattened = sharded.clone();
                flattened.shard_epochs = Vec::new();
                assert_eq!(
                    flattened, single,
                    "seed {seed}: root {root} {direction:?} diverged from the oracle"
                );
            }
        }
        oracle_server.shutdown();

        // Every 4th seed: the deposed primary rejoins as a replica of
        // the promoted one — anti-entropy truncates the fork, the
        // promoted term is adopted, and the stores converge.
        if seed % 4 == 0 {
            drop(deployment.services[victim].take());
            drop(deposed_store);
            let rejoined = Replica::start_with(
                &promoted_addr,
                &deployment.primary_dirs[victim],
                replica_config(),
            )
            .unwrap();
            let promoted_clock = deployment.replicas[victim].as_ref().unwrap().epoch();
            assert!(
                wait_until(SYNC, || rejoined.epoch() >= promoted_clock),
                "seed {seed}: deposed shard primary never converged: {:?}",
                rejoined.status()
            );
            // Byte-identity with the promoted store proves the fork was
            // truncated: the promoted history never contained it.
            assert_eq!(
                rejoined.store().to_bytes(),
                deployment.replicas[victim]
                    .as_ref()
                    .unwrap()
                    .store()
                    .to_bytes(),
                "seed {seed}: rejoined store is not byte-identical to the promoted one"
            );
            assert_eq!(
                rejoined.store().replication_term(),
                term,
                "seed {seed}: the rejoined replica adopted the promoted term"
            );
            assert_eq!(rejoined.status().role, ReplicaRole::Replica);
            rejoined.shutdown();
        } else {
            drop(deposed_store);
        }

        deployment.teardown();
    }
}

/// The deprecated constructors still compile and still work — the
/// migration is source-compatible for one release. This test is the
/// shim coverage the rustdoc promises.
#[test]
#[allow(deprecated)]
fn deprecated_bind_shims_still_serve() {
    let store = Arc::new(Store::new(LATTICE.0, LATTICE.1).unwrap());
    let service = Arc::new(AccountService::new(store));
    let server =
        Server::bind_with(service.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr(), "reader", &[]).unwrap();
    assert!(client.epoch().is_ok());
    server.shutdown();
}
