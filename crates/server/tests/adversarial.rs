//! Adversarial-client tests: slow writers, slow readers, clients that
//! never speak, clients that stop draining responses, and dial storms
//! past the connection cap. Each must get bounded-memory treatment and a
//! typed error where a reply is possible — never a stuck server.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use plus_store::codec::seal_frame;
use plus_store::wire::{decode_response, encode_request, Request, Response};
use plus_store::{
    AccountService, Direction, EdgeKind, NodeKind, QueryRequest, RecordId, Store, Strategy,
    WireErrorKind,
};
use server::{Client, ClientError, Server, ServerConfig};
use surrogate_core::feature::Features;

/// A linear chain of `n` Public nodes, so a backward query from the tail
/// returns `n - 1` upstream rows — cheap way to make responses large.
fn chain_store(n: usize) -> (Arc<Store>, RecordId) {
    let store = Arc::new(Store::new(&["Public"], &[]).unwrap());
    let public = store.predicate("Public").unwrap();
    let mut prev = store.append_node("n0", NodeKind::Data, Features::new(), public);
    for i in 1..n {
        let node = store.append_node(format!("n{i}"), NodeKind::Data, Features::new(), public);
        store.append_edge(prev, node, EdgeKind::InputTo).unwrap();
        prev = node;
    }
    (store, prev)
}

fn serve(store: Arc<Store>, config: ServerConfig) -> Server {
    Server::bind(
        Arc::new(AccountService::new(store)),
        "127.0.0.1:0",
        &ServerConfig {
            threads: 2,
            ..config
        },
    )
    .expect("bind loopback")
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    done()
}

/// A writer that dribbles its Hello one byte at a time must be buffered
/// patiently (level-triggered readiness, partial-frame accumulation) and
/// answered normally once the frame completes.
#[test]
fn one_byte_at_a_time_writer_completes_its_handshake() {
    let (store, _) = chain_store(3);
    let server = serve(store, ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let hello = seal_frame(
        &encode_request(&Request::Hello {
            version: plus_store::wire::PROTOCOL_VERSION,
            consumer: "dribbler".into(),
            claims: vec![],
        })
        .unwrap(),
    );
    for byte in &hello {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
    }
    let mut scratch = Vec::new();
    let payload = server::read_frame(&mut stream, &mut scratch)
        .unwrap()
        .expect("a Hello answer");
    assert!(matches!(
        decode_response(payload).unwrap(),
        Response::Hello(_)
    ));
    assert_eq!(server.stats().connections, 1);
    assert_eq!(server.stats().hangups, 0);
    server.shutdown();
}

/// A reader that drains its response one byte at a time still gets the
/// whole, checksum-valid frame, and the connection stays serviceable.
#[test]
fn one_byte_at_a_time_reader_gets_the_whole_response() {
    let (store, tail) = chain_store(16);
    let server = serve(store, ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let send = |stream: &mut TcpStream, request: &Request| {
        stream
            .write_all(&seal_frame(&encode_request(request).unwrap()))
            .unwrap();
    };
    send(
        &mut stream,
        &Request::Hello {
            version: plus_store::wire::PROTOCOL_VERSION,
            consumer: "sipper".into(),
            claims: vec![],
        },
    );
    let mut scratch = Vec::new();
    server::read_frame(&mut stream, &mut scratch)
        .unwrap()
        .expect("hello answer");
    send(
        &mut stream,
        &Request::Query(QueryRequest::new(
            tail,
            Direction::Backward,
            u32::MAX,
            Strategy::Surrogate,
        )),
    );
    // Drain the response a byte at a time: first the 8-byte header…
    let read_byte = |stream: &mut TcpStream| {
        let mut byte = [0u8; 1];
        stream.read_exact(&mut byte).expect("one more byte");
        byte[0]
    };
    let mut header = [0u8; 8];
    for slot in &mut header {
        *slot = read_byte(&mut stream);
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    assert!(len > 0);
    // …then the payload, checksum-verified by reassembling the frame.
    let mut payload = Vec::with_capacity(len);
    for _ in 0..len {
        payload.push(read_byte(&mut stream));
    }
    assert_eq!(
        plus_store::codec::crc32(&payload),
        u32::from_le_bytes(header[4..8].try_into().unwrap()),
        "frame survived the slow drain intact"
    );
    match decode_response(&payload).unwrap() {
        Response::Query(response) => assert_eq!(response.rows.len(), 15),
        other => panic!("expected a query response, got {other:?}"),
    }
    // The connection is still healthy after the crawl.
    send(&mut stream, &Request::Epoch);
    let payload = server::read_frame(&mut stream, &mut scratch)
        .unwrap()
        .expect("epoch answer");
    assert!(matches!(
        decode_response(payload).unwrap(),
        Response::Epoch(_)
    ));
    server.shutdown();
}

/// Connect-and-never-Hello costs one fd for `handshake_timeout`, not
/// forever: the sweep reaps it and counts the reap.
#[test]
fn never_hello_connections_are_reaped() {
    let (store, _) = chain_store(3);
    let server = serve(
        store,
        ServerConfig {
            handshake_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    );
    let mut silent = TcpStream::connect(server.local_addr()).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // The server hangs up without a word (there is no protocol error to
    // report — the client never said anything).
    let mut rest = Vec::new();
    silent.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    assert!(
        wait_until(Duration::from_secs(5), || server.stats().idle_reaped >= 1),
        "the reap was counted"
    );
    assert_eq!(server.stats().hangups, 0, "a reap is not a hangup");
    // The server still serves.
    let mut client = Client::connect(server.local_addr(), "reader", &[]).unwrap();
    assert!(client.epoch().is_ok());
    server.shutdown();
}

/// A client that requests a flood and stops reading gets bounded-memory
/// treatment: past the outbound high-water mark the server stops reading
/// it, and after `write_stall_timeout` of zero progress the connection
/// is closed as an overload drop. Other connections never notice.
#[test]
fn stops_reading_mid_batch_is_shed_with_bounded_memory() {
    let (store, tail) = chain_store(2000);
    let server = serve(
        store,
        ServerConfig {
            write_stall_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(&seal_frame(
            &encode_request(&Request::Hello {
                version: plus_store::wire::PROTOCOL_VERSION,
                consumer: "sinkhole".into(),
                claims: vec![],
            })
            .unwrap(),
        ))
        .unwrap();
    let mut scratch = Vec::new();
    server::read_frame(&mut stream, &mut scratch)
        .unwrap()
        .expect("hello answer");
    // Pipeline 500 queries whose answers total tens of MiB — far past
    // anything the kernel's socket buffers can absorb — then stop
    // reading entirely. The overflow must park in the server's bounded
    // outbound queue, not grow without limit.
    let query = seal_frame(
        &encode_request(&Request::Query(QueryRequest::new(
            tail,
            Direction::Backward,
            u32::MAX,
            Strategy::Surrogate,
        )))
        .unwrap(),
    );
    for _ in 0..500 {
        stream.write_all(&query).unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(10), || {
            server.stats().overload_drops >= 1
        }),
        "the stalled connection was dropped as an overload shed"
    );
    // A well-behaved client is unaffected before, during, and after.
    let mut client = Client::connect(server.local_addr(), "reader", &[]).unwrap();
    assert!(client.epoch().is_ok());
    server.shutdown();
}

/// The subtler stall: a backlog small enough to be parsed and queued in
/// a single event, whose one flush pass makes *partial* progress (the
/// kernel buffer absorbs what it can). A client that then never reads
/// produces no further readiness events, so no later flush pass exists
/// to observe the stall — the sweep must reap from the write-progress
/// clock alone.
#[test]
fn stops_reading_after_partial_flush_is_still_shed() {
    let (store, tail) = chain_store(2000);
    let server = serve(
        store,
        ServerConfig {
            write_stall_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(&seal_frame(
            &encode_request(&Request::Hello {
                version: plus_store::wire::PROTOCOL_VERSION,
                consumer: "half-reader".into(),
                claims: vec![],
            })
            .unwrap(),
        ))
        .unwrap();
    let mut scratch = Vec::new();
    server::read_frame(&mut stream, &mut scratch)
        .unwrap()
        .expect("hello answer");
    // 200 tiny query frames in one write: the server parses them in
    // one read event and queues tens of MiB of responses (far past any
    // auto-tuned socket buffering), flushes with partial progress, and
    // then hears nothing from this socket again.
    let query = seal_frame(
        &encode_request(&Request::Query(QueryRequest::new(
            tail,
            Direction::Backward,
            u32::MAX,
            Strategy::Surrogate,
        )))
        .unwrap(),
    );
    let mut burst = Vec::new();
    for _ in 0..200 {
        burst.extend_from_slice(&query);
    }
    stream.write_all(&burst).unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            server.stats().overload_drops >= 1
        }),
        "the silent half-drained connection was reaped on the progress clock"
    );
    // A well-behaved client never notices.
    let mut client = Client::connect(server.local_addr(), "reader", &[]).unwrap();
    assert!(client.epoch().is_ok());
    server.shutdown();
}

/// Dials past `max_conns` are refused at accept with a typed,
/// retryable Overloaded frame — no shard ever owns the socket.
#[test]
fn connection_cap_refuses_with_typed_overloaded() {
    let (store, _) = chain_store(3);
    let server = serve(
        store,
        ServerConfig {
            max_conns: 2,
            ..ServerConfig::default()
        },
    );
    let _a = Client::connect(server.local_addr(), "one", &[]).unwrap();
    let _b = Client::connect(server.local_addr(), "two", &[]).unwrap();
    let mut refused = TcpStream::connect(server.local_addr()).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut scratch = Vec::new();
    let payload = server::read_frame(&mut refused, &mut scratch)
        .unwrap()
        .expect("a refusal frame before the hangup");
    match decode_response(payload).unwrap() {
        Response::Error(e) => assert_eq!(e.kind, WireErrorKind::Overloaded),
        other => panic!("expected an Overloaded error, got {other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(refused.read_to_end(&mut rest).unwrap(), 0, "then a close");
    assert!(server.stats().overload_drops >= 1);
    // Capacity freed = admission resumes.
    drop(_a);
    assert!(
        wait_until(Duration::from_secs(5), || {
            Client::connect(server.local_addr(), "three", &[]).is_ok()
        }),
        "a freed slot admits the next dial"
    );
    server.shutdown();
}

/// A consumer past its token bucket gets typed Overloaded refusals on a
/// connection that stays open, and is admitted again once the bucket
/// refills.
#[test]
fn rate_limited_consumers_get_retryable_refusals() {
    let (store, _) = chain_store(3);
    let server = serve(
        store,
        ServerConfig {
            rate_limit: Some(2), // burst floor of 8, then ~2/s
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr(), "greedy", &[]).unwrap();
    let mut admitted = 0u32;
    let mut refused = 0u32;
    for _ in 0..20 {
        match client.epoch() {
            Ok(_) => admitted += 1,
            Err(ClientError::Remote(e)) => {
                assert_eq!(e.kind, WireErrorKind::Overloaded);
                refused += 1;
            }
            Err(other) => panic!("expected a typed refusal, got {other}"),
        }
    }
    assert!(admitted >= 8, "the burst allowance was admitted");
    assert!(refused >= 1, "the flood was refused");
    assert!(server.stats().overload_drops >= u64::from(refused));
    // The bucket refills (~2 tokens/s) and the *same* connection serves
    // again — Overloaded is retryable, not a hangup.
    std::thread::sleep(Duration::from_millis(700));
    assert!(client.epoch().is_ok(), "refilled bucket admits again");
    server.shutdown();
}

/// Shutdown under load drains: responses already queued (but unread by
/// a lagging client) flush before the socket closes, bounded by the
/// drain deadline.
#[test]
fn shutdown_flushes_queued_responses() {
    let (store, tail) = chain_store(500);
    let server = serve(store, ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(&seal_frame(
            &encode_request(&Request::Hello {
                version: plus_store::wire::PROTOCOL_VERSION,
                consumer: "laggard".into(),
                claims: vec![],
            })
            .unwrap(),
        ))
        .unwrap();
    let mut scratch = Vec::new();
    server::read_frame(&mut stream, &mut scratch)
        .unwrap()
        .expect("hello answer");
    // Pipeline 100 large-answer queries without reading, and wait until
    // the server has *processed* them all (so every response is queued
    // or in flight — several MiB, far past the kernel buffers).
    let query = seal_frame(
        &encode_request(&Request::Query(QueryRequest::new(
            tail,
            Direction::Backward,
            u32::MAX,
            Strategy::Surrogate,
        )))
        .unwrap(),
    );
    for _ in 0..100 {
        stream.write_all(&query).unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(10), || server.stats().requests >= 100),
        "all requests executed before shutdown"
    );
    // Shut down while the responses sit unread, and read concurrently:
    // every one of them must arrive before the close.
    let shutter = std::thread::spawn(move || server.shutdown());
    let mut responses = 0usize;
    loop {
        match server::read_frame(&mut stream, &mut scratch) {
            Ok(Some(payload)) => match decode_response(payload).unwrap() {
                Response::Query(response) => {
                    assert_eq!(response.rows.len(), 499);
                    responses += 1;
                }
                other => panic!("expected a query response, got {other:?}"),
            },
            Ok(None) => break,
            Err(e) => panic!("torn read during drain: {e}"),
        }
    }
    assert_eq!(responses, 100, "the drain flushed every queued response");
    shutter.join().unwrap();
}
