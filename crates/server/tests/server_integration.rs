//! Integration tests for the query server: many concurrent remote
//! consumers, epoch coherence under a live writer, the typed-error and
//! malformed-frame paths, and checkpointing over the wire.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use plus_store::codec::seal_frame;
use plus_store::wire::{encode_request, Request, PROTOCOL_VERSION};
use plus_store::{
    AccountService, Direction, EdgeKind, NodeKind, PolicyStatement, QueryRequest, RecordId, Store,
    Strategy, WireErrorKind,
};
use server::{Client, ClientError, ClientPool, Server, ServerConfig};
use surrogate_core::feature::Features;

/// source(High) → mid(Public) → sink(Public) with a Public surrogate for
/// the source — the Fig. 2(a)-style chain the service tests use.
fn setup() -> (Arc<Store>, Vec<RecordId>) {
    let store = Arc::new(Store::new(&["Public", "High"], &[(1, 0)]).unwrap());
    let public = store.predicate("Public").unwrap();
    let high = store.predicate("High").unwrap();
    let source = store.append_node("secret source", NodeKind::Agent, Features::new(), high);
    let mid = store.append_node("analysis", NodeKind::Process, Features::new(), public);
    let sink = store.append_node("report", NodeKind::Data, Features::new(), public);
    store.append_edge(source, mid, EdgeKind::InputTo).unwrap();
    store.append_edge(mid, sink, EdgeKind::GeneratedBy).unwrap();
    store
        .apply_policy(PolicyStatement::AddSurrogate {
            node: source,
            label: "a trusted source".into(),
            features: Features::new(),
            lowest: public,
            info_score: 0.3,
        })
        .unwrap();
    (store, vec![source, mid, sink])
}

fn serve(store: Arc<Store>) -> Server {
    serve_with(store, ServerConfig::default())
}

fn serve_with(store: Arc<Store>, config: ServerConfig) -> Server {
    Server::bind(
        Arc::new(AccountService::new(store)),
        "127.0.0.1:0",
        &ServerConfig {
            threads: 4,
            ..config
        },
    )
    .expect("bind loopback")
}

#[test]
fn hello_handshake_describes_the_server() {
    let (store, _) = setup();
    let epoch = store.version();
    let server = serve(store);
    let client = Client::connect(server.local_addr(), "reader", &[]).unwrap();
    let hello = client.hello();
    assert_eq!(hello.version, PROTOCOL_VERSION);
    assert_eq!(hello.epoch, epoch);
    assert_eq!(hello.nodes, 3);
    assert_eq!(
        hello.predicates,
        vec!["Public".to_string(), "High".to_string()]
    );
    assert_eq!(
        client.predicate("High"),
        Some(hello.predicate("High").unwrap())
    );
    assert_eq!(server.stats().connections, 1);
    server.shutdown();
}

#[test]
fn remote_queries_see_protected_rows_only() {
    let (store, ids) = setup();
    let server = serve(store);
    // A public consumer: the High source must come back as its surrogate.
    let mut client = Client::connect(server.local_addr(), "public-reader", &[]).unwrap();
    let response = client
        .query(&QueryRequest::new(
            ids[2],
            Direction::Backward,
            u32::MAX,
            Strategy::Surrogate,
        ))
        .unwrap();
    assert_eq!(response.rows.len(), 2);
    assert_eq!(response.rows[0].label, "analysis");
    assert!(!response.rows[0].surrogate);
    assert_eq!(response.rows[1].label, "a trusted source");
    assert!(response.rows[1].surrogate);
    // The insider sees the original label.
    let mut insider = Client::connect(server.local_addr(), "insider", &["High"]).unwrap();
    let rows = insider
        .query(&QueryRequest::new(
            ids[2],
            Direction::Backward,
            u32::MAX,
            Strategy::Surrogate,
        ))
        .unwrap()
        .rows;
    assert_eq!(rows[1].label, "secret source");
    assert!(!rows[1].surrogate);
    server.shutdown();
}

/// The tentpole's coherence claim: concurrent remote clients, with a
/// writer appending underneath, each see (1) per-connection monotone
/// epochs, (2) one shared epoch per batch, and (3) row counts consistent
/// with the epoch they were stamped with.
#[test]
fn concurrent_remote_queries_see_a_coherent_epoch() {
    let (store, ids) = setup();
    let base_epoch = store.version();
    let base_rows = 2; // upstream of the sink at the base epoch
    let server = serve(store.clone());
    let addr = server.local_addr();
    let stop = AtomicBool::new(false);
    let (mid, sink) = (ids[1], ids[2]);

    std::thread::scope(|scope| {
        // A live writer: each append bumps the epoch (never touching the
        // sink's upstream chain, so row counts stay comparable).
        let writer = {
            let store = store.clone();
            let stop = &stop;
            scope.spawn(move || {
                let public = store.predicate("Public").unwrap();
                let mut appended = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    store.append_node(
                        format!("late-{appended}"),
                        NodeKind::Data,
                        Features::new(),
                        public,
                    );
                    appended += 1;
                    std::thread::yield_now();
                }
                appended
            })
        };

        let readers: Vec<_> = (0..6)
            .map(|_| {
                let stop = &stop;
                scope.spawn(move || {
                    let mut client = Client::connect(addr, "reader", &[]).unwrap();
                    let mut last_epoch = 0u64;
                    let mut served = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let requests = [
                            QueryRequest::new(
                                sink,
                                Direction::Backward,
                                u32::MAX,
                                Strategy::Surrogate,
                            ),
                            QueryRequest::new(
                                mid,
                                Direction::Backward,
                                u32::MAX,
                                Strategy::Surrogate,
                            ),
                        ];
                        let responses = client.query_batch(&requests).unwrap();
                        assert_eq!(responses.len(), 2);
                        // One pinned epoch per batch…
                        assert_eq!(responses[0].epoch, responses[1].epoch);
                        let epoch = responses[0].epoch;
                        // …monotone along the connection…
                        assert!(epoch >= last_epoch, "epoch went backward");
                        assert!(epoch >= base_epoch);
                        last_epoch = epoch;
                        // …and the protected answer itself is stable: the
                        // writer only appends disconnected nodes.
                        assert_eq!(responses[0].rows.len(), base_rows);
                        served += 1;
                    }
                    served
                })
            })
            .collect();

        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        let appended = writer.join().unwrap();
        let total: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(appended > 0, "writer made progress");
        assert!(total > 0, "readers made progress");
    });

    // After the dust settles, a fresh connection sees the final epoch.
    let mut client = Client::connect(addr, "reader", &[]).unwrap();
    assert_eq!(client.epoch().unwrap(), store.version());
    server.shutdown();
}

#[test]
fn typed_errors_keep_the_connection_usable() {
    let (store, ids) = setup();
    let server = serve(store);
    let mut client = Client::connect(server.local_addr(), "public-reader", &[]).unwrap();
    let high = client.predicate("High").unwrap();
    // Asking through a predicate the consumer does not satisfy: a typed
    // NotAuthorized error frame…
    let err = client
        .query(
            &QueryRequest::new(ids[2], Direction::Backward, u32::MAX, Strategy::Surrogate)
                .with_predicate(high),
        )
        .unwrap_err();
    match err {
        ClientError::Remote(e) => assert_eq!(e.kind, WireErrorKind::NotAuthorized),
        other => panic!("expected a typed remote error, got {other}"),
    }
    assert!(client.is_healthy());
    // …and the same connection still answers the authorized version.
    let response = client
        .query(&QueryRequest::new(
            ids[2],
            Direction::Backward,
            u32::MAX,
            Strategy::Surrogate,
        ))
        .unwrap();
    assert_eq!(response.rows.len(), 2);
    server.shutdown();
}

#[test]
fn unknown_predicate_claims_are_refused_at_hello() {
    let (store, _) = setup();
    let server = serve(store);
    let err = Client::connect(server.local_addr(), "liar", &["Ultra"]).unwrap_err();
    match err {
        ClientError::Remote(e) => assert_eq!(e.kind, WireErrorKind::UnknownPredicate),
        other => panic!("expected a typed remote error, got {other}"),
    }
    server.shutdown();
}

#[test]
fn version_mismatch_is_refused_at_hello() {
    let (store, _) = setup();
    let server = serve(store);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let hello = Request::Hello {
        version: PROTOCOL_VERSION + 1,
        consumer: "future".into(),
        claims: vec![],
    };
    stream
        .write_all(&seal_frame(&encode_request(&hello).unwrap()))
        .unwrap();
    let mut scratch = Vec::new();
    let payload = server::read_frame(&mut stream, &mut scratch)
        .unwrap()
        .expect("an error frame before the hangup");
    match plus_store::wire::decode_response(payload).unwrap() {
        plus_store::wire::Response::Error(e) => {
            assert_eq!(e.kind, WireErrorKind::VersionMismatch)
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    // Then the server hangs up.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    server.shutdown();
}

#[test]
fn malformed_frames_hang_up() {
    let (store, _) = setup();
    let server = serve(store);

    // Garbage that parses as a plausible header but fails its checksum.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut bogus = seal_frame(b"not a protocol message at all");
    let last = bogus.len() - 1;
    bogus[last] ^= 0xff;
    stream.write_all(&bogus).unwrap();
    let mut rest = Vec::new();
    // Best-effort error frame then EOF; either way the connection ends.
    stream.read_to_end(&mut rest).ok();

    // An oversized declared length.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&u32::MAX.to_le_bytes());
    oversized.extend_from_slice(&[0u8; 4]);
    stream.write_all(&oversized).unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).ok();

    // A checksum-valid frame whose payload is not a request.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(&seal_frame(&[99, 1, 2, 3])).unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).ok();

    // All three were counted as hangups, and the server still serves.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.stats().hangups < 3 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(server.stats().hangups, 3);
    let mut client = Client::connect(server.local_addr(), "reader", &[]).unwrap();
    assert!(client.epoch().is_ok());
    server.shutdown();
}

#[test]
fn requests_before_hello_are_rejected() {
    let (store, _) = setup();
    let server = serve(store);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(&seal_frame(&encode_request(&Request::Epoch).unwrap()))
        .unwrap();
    let mut scratch = Vec::new();
    let payload = server::read_frame(&mut stream, &mut scratch)
        .unwrap()
        .expect("an error frame");
    match plus_store::wire::decode_response(payload).unwrap() {
        plus_store::wire::Response::Error(e) => assert_eq!(e.kind, WireErrorKind::BadRequest),
        other => panic!("expected an error frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn checkpoint_over_the_wire() {
    let dir = std::env::temp_dir().join(format!("server-checkpoint-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::create_durable(&dir, &["Public"], &[]).unwrap();
    let public = store.predicate("Public").unwrap();
    for i in 0..5 {
        store.append_node(format!("n{i}"), NodeKind::Data, Features::new(), public);
    }
    let clock = store.clock();
    let server = serve_with(
        Arc::new(store),
        ServerConfig {
            allow_remote_checkpoint: true,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr(), "operator", &[]).unwrap();
    let stats = client.checkpoint().unwrap();
    assert_eq!(stats.clock, clock);
    assert!(stats.snapshot_bytes > 0);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_of_an_in_memory_store_is_not_durable() {
    let (store, _) = setup();
    let server = serve_with(
        store,
        ServerConfig {
            allow_remote_checkpoint: true,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr(), "operator", &[]).unwrap();
    match client.checkpoint().unwrap_err() {
        ClientError::Remote(e) => assert_eq!(e.kind, WireErrorKind::NotDurable),
        other => panic!("expected a typed remote error, got {other}"),
    }
    server.shutdown();
}

/// Remote checkpoints are an operator opt-in: the default refuses them
/// with a typed error, and the connection stays usable.
#[test]
fn remote_checkpoints_are_disabled_by_default() {
    let (store, _) = setup();
    let server = serve(store);
    let mut client = Client::connect(server.local_addr(), "anyone", &[]).unwrap();
    match client.checkpoint().unwrap_err() {
        ClientError::Remote(e) => assert_eq!(e.kind, WireErrorKind::NotAuthorized),
        other => panic!("expected a typed remote error, got {other}"),
    }
    assert!(client.epoch().is_ok(), "connection survives the refusal");
    server.shutdown();
}

#[test]
fn pool_reuses_healthy_connections() {
    let (store, ids) = setup();
    let server = serve(store);
    let pool = ClientPool::new(server.local_addr().to_string(), "reader", &[]);
    {
        let mut client = pool.get().unwrap();
        client
            .query(&QueryRequest::new(
                ids[2],
                Direction::Backward,
                u32::MAX,
                Strategy::Surrogate,
            ))
            .unwrap();
    }
    assert_eq!(pool.idle(), 1, "healthy connection returned to the pool");
    {
        let _a = pool.get().unwrap();
        assert_eq!(pool.idle(), 0, "idle connection was handed back out");
        let _b = pool.get().unwrap(); // dials a second
    }
    assert_eq!(pool.idle(), 2);
    // Only the handshake connections were dialed: 3 total (1 + 1 extra +
    // 0 reuses).
    assert_eq!(server.stats().connections, 2);
    server.shutdown();
}

#[test]
fn pool_probes_idle_connections_and_drops_stale_ones() {
    let (store, ids) = setup();
    // A fixed sub-ephemeral port (below the OS ephemeral floor of
    // 32768): this test frees and rebinds the address, and an
    // OS-assigned port could be handed to another test's `:0` server
    // during that window — a sub-ephemeral one cannot.
    let base = 27000 + (std::process::id() % 5000) as u16;
    let service = Arc::new(AccountService::new(store.clone()));
    let server = (0..64u16)
        .find_map(|attempt| {
            let addr = format!("127.0.0.1:{}", base + attempt * 37 % 5500);
            Server::bind(service.clone(), addr.as_str(), &ServerConfig::default()).ok()
        })
        .expect("bind a fixed sub-ephemeral port");
    let addr = server.local_addr();
    let pool = ClientPool::new(addr.to_string(), "reader", &[]);
    let request = QueryRequest::new(ids[2], Direction::Backward, u32::MAX, Strategy::Surrogate);
    {
        let mut client = pool.get().unwrap();
        client.query(&request).unwrap();
    }
    assert_eq!(pool.idle(), 1);

    // A server restart (same address) kills the pooled socket without
    // the pool noticing: exactly what a replica restart does.
    server.shutdown();
    let restarted = (0..50)
        .find_map(|_| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            Server::bind(service.clone(), addr, &ServerConfig::default()).ok()
        })
        .expect("rebind the freed port");

    // Without the acquire-time probe, get() would redeal the dead
    // connection and this query would fail. The probe drops it and
    // dials the restarted server instead.
    {
        let mut client = pool.get().unwrap();
        let response = client.query(&request).expect("live connection handed out");
        assert_eq!(response.rows.len(), 2);
    }
    assert_eq!(pool.idle(), 1, "the fresh connection was pooled");
    assert_eq!(
        restarted.stats().connections,
        1,
        "exactly one replacement dial reached the restarted server"
    );
    restarted.shutdown();
}

#[test]
fn shutdown_hangs_up_live_connections() {
    let (store, _) = setup();
    let server = serve(store);
    let mut client = Client::connect(server.local_addr(), "reader", &[]).unwrap();
    assert!(client.epoch().is_ok());
    server.shutdown();
    // The parked connection is gone; the next call fails cleanly.
    assert!(client.epoch().is_err());
    assert!(!client.is_healthy());
}
