//! Property coverage for the shared [`Topology`] descriptor: the spec
//! grammar round-trips, malformed specs are refused with the typed
//! error, and the keyspace map a topology implies agrees with the
//! congruence-class ownership rule the shards themselves enforce —
//! which is exactly the mapping `ShardRouter` trusts when it follows a
//! `WrongShard` redirect to another pool.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use server::{ClientError, ShardRouter, Topology};
use surrogate_core::shard::Partition;

/// A random address: non-empty, free of the spec's structural
/// characters (`,`, `+`, whitespace).
fn random_addr(rng: &mut StdRng) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789.:-";
    let len = rng.gen_range(1..=24usize);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

fn random_topology(rng: &mut StdRng) -> Topology {
    let shards = rng.gen_range(1..=6usize);
    let spec = (0..shards)
        .map(|_| {
            let mut entry = random_addr(rng);
            for _ in 0..rng.gen_range(0..3usize) {
                entry.push('+');
                entry.push_str(&random_addr(rng));
            }
            entry
        })
        .collect::<Vec<_>>()
        .join(",");
    Topology::parse(&spec).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Display renders the spec syntax back; parsing that yields the
    /// identical topology. `FromStr` is the same parser.
    #[test]
    fn specs_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topology = random_topology(&mut rng);
        let spec = topology.to_string();
        prop_assert_eq!(&Topology::parse(&spec).unwrap(), &topology);
        prop_assert_eq!(&spec.parse::<Topology>().unwrap(), &topology);
        // The derived views agree with the parse.
        prop_assert_eq!(topology.primaries().len() as u32, topology.shard_count());
        for (slot, site) in topology.shards().iter().enumerate() {
            let slot = slot as u32;
            prop_assert_eq!(topology.primary(slot), Some(site.primary.as_str()));
            prop_assert_eq!(topology.replicas(slot), site.replicas.as_slice());
            let candidates = topology.candidates(slot);
            prop_assert_eq!(&candidates[0], &site.primary);
            prop_assert_eq!(&candidates[1..], site.replicas.as_slice());
        }
    }

    /// Blanking any single address out of a well-formed spec makes it
    /// malformed, and the parser refuses it with the typed error rather
    /// than silently collapsing slots (which would misroute every write
    /// after the gap).
    #[test]
    fn blanked_addresses_are_refused(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topology = random_topology(&mut rng);
        let spec = topology.to_string();
        let addrs: Vec<&str> = spec.split([',', '+']).collect();
        let blank = rng.gen_range(0..addrs.len());
        let mutated = addrs
            .iter()
            .enumerate()
            .map(|(i, a)| if i == blank { "" } else { a })
            .collect::<Vec<_>>()
            .join(",");
        prop_assert!(matches!(
            Topology::parse(&mutated),
            Err(ClientError::BadTopology(_))
        ));
    }

    /// The keyspace map a topology implies is the congruence-class rule
    /// the shard stores enforce: id `k` belongs to shard `k mod n`, and
    /// that shard's partition owns it. This is the invariant that makes
    /// a `WrongShard { slot }` redirect trustworthy — the slot a shard
    /// names for an id is the slot the topology resolves for it.
    #[test]
    fn keyspace_map_matches_partition_ownership(seed in any::<u64>(), id in any::<u32>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topology = random_topology(&mut rng);
        let map = topology.map().unwrap();
        let n = topology.shard_count();
        prop_assert_eq!(map.count(), n);
        let slot = map.shard_of(id);
        prop_assert_eq!(slot, id % n);
        let partition = Partition::new(slot, n).unwrap();
        prop_assert!(partition.owns(id));
        // No other shard claims it.
        for other in (0..n).filter(|&s| s != slot) {
            prop_assert!(!Partition::new(other, n).unwrap().owns(id));
        }
        // A router built over this topology sizes one pool per shard,
        // so the redirect target always exists.
        let router = ShardRouter::new(&topology).unwrap();
        prop_assert_eq!(router.shard_count(), n);
    }
}

/// The empty topology (only reachable via `Default`) is refused by
/// every consumer with the typed error, not a panic.
#[test]
fn empty_topology_is_typed_everywhere() {
    let empty = Topology::default();
    assert!(empty.is_empty());
    assert!(matches!(empty.map(), Err(ClientError::BadTopology(_))));
    assert!(matches!(
        ShardRouter::new(&empty),
        Err(ClientError::BadTopology(_))
    ));
}
