//! The replication fault-injection suite — the WAL-shipping analogue of
//! `wal_recovery.rs`'s single-node proof.
//!
//! The claim under test: however and whenever the primary dies
//! mid-stream, every replica holds a **byte-identical prefix of the
//! primary's committed history** with a **monotone epoch**, and when the
//! primary comes back the replica catches up to byte-identical equality
//! — without ever refetching history it already holds.
//!
//! The kill switch here is `Server::shutdown`, which hard-closes every
//! live socket: from the replica's side that is indistinguishable from a
//! primary process dying mid-chunk (the CI replication-smoke step
//! additionally kills a real `spgraph serve` process with SIGKILL).
//! Byte-level stream damage is covered by the wire-properties suite:
//! torn prefixes and bit flips can never alter a replayed payload, only
//! end the connection — which is exactly the case exercised here.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use plus_store::{
    AccountService, Direction, DurabilityOptions, EdgeKind, NodeKind, PolicyStatement,
    QueryRequest, RecordId, ReplicaRole, Store, Strategy,
};
use server::{
    Client, ClientError, ClientPool, Replica, ReplicaConfig, ReplicaError, Server, ServerConfig,
};
use surrogate_core::feature::Features;
use surrogate_core::marking::Marking;

const LATTICE: (&[&str], &[(usize, usize)]) = (&["Public", "Mid", "High"], &[(1, 0), (2, 1)]);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "replication-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Applies the `i`-th workload operation — same deterministic shape as
/// the `wal_recovery` harness: nodes, unique edges over the first 8
/// nodes, and policy statements, all always valid.
fn apply_op(store: &Store, i: usize) {
    let preds = [
        store.predicate("Public").unwrap(),
        store.predicate("Mid").unwrap(),
        store.predicate("High").unwrap(),
    ];
    let nodes = store.node_count();
    if i >= 8 && i % 4 == 0 {
        let k = store.edge_count();
        assert!(k < 56, "workload exceeds the edge enumeration");
        let a = k / 7;
        let idx = k % 7;
        let b = if idx < a { idx } else { idx + 1 };
        store
            .append_edge(
                RecordId(a as u32),
                RecordId(b as u32),
                [EdgeKind::InputTo, EdgeKind::GeneratedBy, EdgeKind::Related][k % 3],
            )
            .unwrap();
    } else if i >= 8 && i % 9 == 0 && nodes > 0 {
        let node = RecordId((i % nodes) as u32);
        if i % 2 == 0 {
            store
                .apply_policy(PolicyStatement::MarkNode {
                    node,
                    predicate: (i % 3 > 0).then_some(preds[i % 3]),
                    marking: [Marking::Visible, Marking::Hide, Marking::Surrogate][i % 3],
                })
                .unwrap();
        } else {
            store
                .apply_policy(PolicyStatement::AddSurrogate {
                    node,
                    label: format!("s{i}"),
                    features: Features::new(),
                    lowest: preds[0],
                    info_score: (i % 10) as f64 / 10.0,
                })
                .unwrap();
        }
    } else {
        store.append_node(
            format!("n{i}"),
            [NodeKind::Data, NodeKind::Process, NodeKind::Agent][i % 3],
            Features::new().with("i", i as i64),
            preds[i % 3],
        );
    }
}

/// `expected[c]` is the committed state (snapshot bytes) at clock `c`:
/// the oracle every replica observation is checked against.
fn expected_prefixes(ops: usize) -> Vec<Vec<u8>> {
    let store = Store::new(LATTICE.0, LATTICE.1).unwrap();
    let mut prefixes = vec![store.to_bytes()];
    for i in 0..ops {
        apply_op(&store, i);
        prefixes.push(store.to_bytes());
    }
    prefixes
}

fn fast() -> DurabilityOptions {
    DurabilityOptions {
        fsync: false,
        ..Default::default()
    }
}

fn replica_config() -> ReplicaConfig {
    ReplicaConfig {
        durability: fast(),
        connect_attempts: 100,
        reconnect_backoff: Duration::from_millis(10),
        ..ReplicaConfig::default()
    }
}

fn primary_config() -> ServerConfig {
    ServerConfig {
        threads: 2,
        allow_replication: true,
        ..ServerConfig::default()
    }
}

/// Creates a durable primary store and binds a replication-enabled
/// server in front of it.
fn boot_primary(dir: &PathBuf) -> (Arc<Store>, Arc<AccountService>, Server) {
    let store = Arc::new(Store::create_durable_with(dir, LATTICE.0, LATTICE.1, fast()).unwrap());
    let service = Arc::new(AccountService::new(store.clone()));
    let server =
        Server::bind(service.clone(), "127.0.0.1:0", &primary_config()).expect("bind primary");
    (store, service, server)
}

/// Binds a server on a **fixed sub-ephemeral port** (below the OS's
/// `ip_local_port_range` floor of 32768). The kill/restart cycle below
/// leaves a replica re-dialing a fixed address while the primary is
/// down; if that address were an OS-assigned ephemeral port, the OS
/// could hand the freed port to a *different* test's `127.0.0.1:0`
/// server running in parallel, and the replica's handshake would bump
/// that server's connection counters (a real observed flake). Ephemeral
/// binds can never land below 32768, so these ports stay ours.
fn bind_fixed(service: Arc<AccountService>, config: ServerConfig) -> Server {
    let base = 21000 + (std::process::id() % 5000) as u16;
    for attempt in 0..64u16 {
        let addr = format!("127.0.0.1:{}", base + attempt * 31 % 6000);
        if let Ok(server) = Server::bind(service.clone(), addr.as_str(), &config) {
            return server;
        }
    }
    panic!("no free sub-ephemeral port after 64 attempts");
}

fn wait_until(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    done()
}

const CATCH_UP: Duration = Duration::from_secs(20);

/// The headline sweep: the primary is killed at several arbitrary
/// points mid-stream (including mid-catch-up, with appends racing the
/// feed). After every kill the replica must sit at a byte-identical
/// committed prefix with a monotone epoch; after every restart it must
/// converge to byte-identical equality.
#[test]
fn primary_kills_mid_stream_leave_replicas_at_committed_prefixes() {
    const OPS: usize = 220;
    let expected = expected_prefixes(OPS);
    // Kill points chosen to land in distinct regimes: during cold
    // bootstrap, mid-burst, between bursts, and at the tail.
    let kill_points = [3usize, 57, 119, 220];

    let primary_dir = temp_dir("kill-primary");
    let replica_dir = temp_dir("kill-replica");
    let store =
        Arc::new(Store::create_durable_with(&primary_dir, LATTICE.0, LATTICE.1, fast()).unwrap());
    let service = Arc::new(AccountService::new(store.clone()));
    // Fixed sub-ephemeral port: the replica re-dials this address across
    // every kill window (see `bind_fixed`).
    let mut server = Some(bind_fixed(service.clone(), primary_config()));
    let addr = server.as_ref().unwrap().local_addr().to_string();

    // One replica lives through every kill/restart cycle. Its local
    // address list never changes: the restarted primary rebinds the
    // same port.
    let replica = Replica::start_with(&addr, &replica_dir, replica_config()).unwrap();

    // Epoch monotonicity is asserted over *every* observation, not just
    // the settled states.
    let mut last_epoch = replica.epoch();
    let mut observe = |replica: &Replica| {
        let bytes = replica.store().to_bytes();
        let clock = plus_store::codec::decode(&bytes).unwrap().clock as usize;
        assert!(
            clock >= last_epoch as usize,
            "replica epoch went backward: {last_epoch} -> {clock}"
        );
        last_epoch = clock as u64;
        assert_eq!(
            bytes, expected[clock],
            "replica state at clock {clock} is not the committed prefix"
        );
        clock
    };

    let mut applied = 0usize;
    for &kill_at in &kill_points {
        // Stream live: appends race the feeder.
        while applied < kill_at {
            apply_op(&store, applied);
            applied += 1;
            if applied % 50 == 0 {
                observe(&replica);
            }
        }
        // Kill the primary mid-stream: every socket is hard-closed,
        // exactly what the replica sees when the process dies.
        server.take().unwrap().shutdown();
        std::thread::sleep(Duration::from_millis(30));

        // Orphaned replica: whatever it holds must be a committed
        // prefix — never a torn or reordered state.
        let at_kill = observe(&replica);
        assert!(at_kill <= store.clock() as usize);

        // Restart the primary on the same store and port; the replica
        // reconnects by itself and converges to full equality.
        let restarted = (0..100)
            .find_map(|_| {
                std::thread::sleep(Duration::from_millis(5));
                Server::bind(service.clone(), addr.as_str(), &primary_config()).ok()
            })
            .expect("rebind primary on its fixed port");
        assert!(
            replica.wait_caught_up(CATCH_UP),
            "replica never caught up after restart at op {kill_at}: {:?}",
            replica.status()
        );
        assert!(wait_until(CATCH_UP, || replica.epoch() == store.clock()));
        let settled = observe(&replica);
        assert_eq!(settled as u64, store.clock(), "byte-identical convergence");
        server = Some(restarted);
    }

    assert_eq!(replica.epoch(), store.clock());
    assert_eq!(replica.store().to_bytes(), expected[applied]);
    replica.shutdown();
    server.take().unwrap().shutdown();
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}

/// A restarted replica recovers from its **own** WAL and resumes the
/// subscription at its local clock: the primary ships only the delta,
/// never a second snapshot.
#[test]
fn restarted_replica_resumes_from_local_clock_without_refetching() {
    const OPS: usize = 120;
    let expected = expected_prefixes(OPS);
    let primary_dir = temp_dir("resume-primary");
    let replica_dir = temp_dir("resume-replica");
    let (store, service, server) = boot_primary(&primary_dir);
    let addr = server.local_addr().to_string();

    for i in 0..60 {
        apply_op(&store, i);
    }
    let replica = Replica::start_with(&addr, &replica_dir, replica_config()).unwrap();
    assert!(replica.wait_caught_up(CATCH_UP));
    assert!(wait_until(CATCH_UP, || replica.epoch() == store.clock()));
    let clock_at_stop = replica.epoch();
    replica.shutdown();
    assert_eq!(
        server.stats().snapshots_shipped,
        1,
        "cold start costs exactly one snapshot"
    );

    // The primary moves on while the replica is down.
    for i in 60..OPS {
        apply_op(&store, i);
    }

    // Warm restart: local recovery first (same dir), then delta catch-up.
    let replica = Replica::start_with(&addr, &replica_dir, replica_config()).unwrap();
    assert!(
        replica.epoch() >= clock_at_stop.saturating_sub(0),
        "local WAL recovered the pre-restart clock"
    );
    assert!(replica.wait_caught_up(CATCH_UP));
    assert!(wait_until(CATCH_UP, || replica.epoch() == store.clock()));
    assert_eq!(replica.store().to_bytes(), expected[OPS]);
    assert_eq!(
        server.stats().snapshots_shipped,
        1,
        "the warm subscription refetched no history"
    );
    assert!(server.stats().subscriptions >= 2);

    replica.shutdown();
    server.shutdown();
    drop(service);
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}

/// A cold replica attaching after the primary checkpointed (pruning the
/// early log) backfills from the snapshot, then streams the tail.
#[test]
fn cold_replica_backfills_from_snapshot_after_checkpoint() {
    const OPS: usize = 120;
    let expected = expected_prefixes(OPS);
    let primary_dir = temp_dir("backfill-primary");
    let replica_dir = temp_dir("backfill-replica");
    let (store, _service, server) = boot_primary(&primary_dir);
    let addr = server.local_addr().to_string();

    for i in 0..90 {
        apply_op(&store, i);
    }
    let stats = store.checkpoint().unwrap();
    assert!(stats.pruned_segments > 0, "the early log is gone");
    for i in 90..OPS {
        apply_op(&store, i);
    }

    let replica = Replica::start_with(&addr, &replica_dir, replica_config()).unwrap();
    assert!(
        replica.epoch() >= 90,
        "bootstrap snapshot fast-forwarded past the pruned history"
    );
    assert!(replica.wait_caught_up(CATCH_UP));
    assert!(wait_until(CATCH_UP, || replica.epoch() == store.clock()));
    assert_eq!(replica.store().to_bytes(), expected[OPS]);
    assert_eq!(server.stats().snapshots_shipped, 1);

    replica.shutdown();
    server.shutdown();
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}

/// Replication is owner-side only: a primary that did not opt in
/// refuses subscriptions, and an in-memory primary has nothing to ship.
#[test]
fn replication_requires_opt_in_and_a_durable_store() {
    // No opt-in.
    let primary_dir = temp_dir("optin-primary");
    let store =
        Arc::new(Store::create_durable_with(&primary_dir, LATTICE.0, LATTICE.1, fast()).unwrap());
    let server = Server::bind(
        Arc::new(AccountService::new(store)),
        "127.0.0.1:0",
        &ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let config = ReplicaConfig {
        connect_attempts: 1,
        ..replica_config()
    };
    let err = Replica::start_with(
        server.local_addr().to_string(),
        temp_dir("optin-replica"),
        config,
    )
    .expect_err("subscription must be refused");
    assert!(err.to_string().contains("replication is disabled"), "{err}");
    // The refusal is recoverable: the same server still answers queries.
    let mut client = Client::connect(server.local_addr(), "reader", &[]).unwrap();
    assert!(client.epoch().is_ok());
    server.shutdown();
    std::fs::remove_dir_all(&primary_dir).ok();

    // Opt-in, but no write-ahead log to stream.
    let in_memory = Arc::new(Store::new(LATTICE.0, LATTICE.1).unwrap());
    let server = Server::bind(
        Arc::new(AccountService::new(in_memory)),
        "127.0.0.1:0",
        &primary_config(),
    )
    .unwrap();
    let err = Replica::start_with(
        server.local_addr().to_string(),
        temp_dir("optin-replica2"),
        ReplicaConfig {
            connect_attempts: 1,
            ..replica_config()
        },
    )
    .expect_err("nothing durable to stream");
    assert!(matches!(err, ReplicaError::Client(_)), "{err}");
    server.shutdown();
}

/// A subscriber claiming a clock ahead of the primary replayed a
/// different history; feeding it would fork the replica set, so the
/// primary refuses.
#[test]
fn subscribers_ahead_of_the_primary_are_refused() {
    use plus_store::wire::{decode_response, encode_request, Request, Response, WireErrorKind};
    use server::{read_frame, write_frame};
    use std::net::TcpStream;

    let primary_dir = temp_dir("ahead-primary");
    let (store, _service, server) = boot_primary(&primary_dir);
    for i in 0..10 {
        apply_op(&store, i);
    }
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let (mut inbuf, mut outbuf) = (Vec::new(), Vec::new());
    let hello = Request::Hello {
        version: plus_store::PROTOCOL_VERSION,
        consumer: "diverged".into(),
        claims: vec![],
    };
    write_frame(&mut stream, &encode_request(&hello).unwrap(), &mut outbuf).unwrap();
    read_frame(&mut stream, &mut inbuf).unwrap().unwrap();
    let subscribe = Request::Subscribe {
        from_clock: store.clock() + 1,
    };
    write_frame(
        &mut stream,
        &encode_request(&subscribe).unwrap(),
        &mut outbuf,
    )
    .unwrap();
    let payload = read_frame(&mut stream, &mut inbuf).unwrap().unwrap();
    let Response::Error(error) = decode_response(payload).unwrap() else {
        panic!("a diverged subscriber must get a typed refusal");
    };
    assert_eq!(error.kind, WireErrorKind::BadRequest);
    assert!(error.message.contains("ahead"), "{}", error.message);
    server.shutdown();
    std::fs::remove_dir_all(&primary_dir).ok();
}

/// Replicas re-serve the query protocol: remote answers are identical
/// to the primary's at the same epoch, a fronting server reports
/// replica status, and a `ClientPool` spreads reads over the replica
/// set with primary fallback.
#[test]
fn replicas_serve_queries_status_and_pooled_reads() {
    const OPS: usize = 60;
    let primary_dir = temp_dir("serve-primary");
    let replica_dir = temp_dir("serve-replica");
    let (store, _service, server) = boot_primary(&primary_dir);
    let addr = server.local_addr().to_string();
    for i in 0..OPS {
        apply_op(&store, i);
    }
    let replica = Replica::start_with(&addr, &replica_dir, replica_config()).unwrap();
    assert!(replica.wait_caught_up(CATCH_UP));
    assert!(wait_until(CATCH_UP, || replica.epoch() == store.clock()));

    let replica_server = Server::bind(
        replica.service().clone(),
        "127.0.0.1:0",
        &ServerConfig {
            role: server::Role::Replica {
                feed: replica.monitor(),
            },
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let replica_addr = replica_server.local_addr().to_string();

    // Status: the primary self-identifies; the replica reports its link.
    let mut to_primary = Client::connect(addr.as_str(), "op", &[]).unwrap();
    let status = to_primary.replica_status().unwrap();
    assert_eq!(status.role, ReplicaRole::Primary);
    assert_eq!(status.lag(), 0);
    let mut to_replica = Client::connect(replica_addr.as_str(), "op", &[]).unwrap();
    let status = to_replica.replica_status().unwrap();
    assert_eq!(status.role, ReplicaRole::Replica);
    assert!(status.connected);
    assert_eq!(status.local_epoch, store.clock());

    // Same protected answers, same epoch, for an insider and Public.
    for claims in [vec![], vec!["High"]] {
        let claims: Vec<&str> = claims.to_vec();
        let mut a = Client::connect(addr.as_str(), "probe", &claims).unwrap();
        let mut b = Client::connect(replica_addr.as_str(), "probe", &claims).unwrap();
        for root in 0..store.node_count() as u32 {
            let request = QueryRequest::new(
                RecordId(root),
                Direction::Backward,
                u32::MAX,
                Strategy::Surrogate,
            );
            assert_eq!(
                a.query(&request).unwrap(),
                b.query(&request).unwrap(),
                "root {root} diverged between primary and replica"
            );
        }
    }

    // Replicas are read-only surfaces: a remote checkpoint is refused
    // by default like on any server.
    assert!(matches!(
        to_replica.checkpoint(),
        Err(ClientError::Remote(_))
    ));

    // Pooled reads: replicas first, primary as fallback once the
    // replica server goes away.
    let pool = ClientPool::new(addr.as_str(), "reader", &[]).with_replicas([replica_addr.clone()]);
    {
        let mut client = pool.get().unwrap();
        assert_eq!(client.epoch().unwrap(), store.clock());
    }
    let replica_connections = replica_server.stats().connections;
    assert!(replica_connections >= 1, "the pool read hit the replica");
    replica_server.shutdown();
    {
        // The pooled connection died with the replica server; the probe
        // drops it and the fallback dial reaches the primary.
        let mut client = pool.get().unwrap();
        assert_eq!(client.epoch().unwrap(), store.clock());
    }

    replica.shutdown();
    server.shutdown();
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}
