//! The metrics subsystem end to end: a real `GET /metrics` scrape over
//! HTTP, counter consistency against known traffic, and the in-process
//! instrument registry.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use plus_store::{
    AccountService, Direction, EdgeKind, NodeKind, QueryRequest, RecordId, Store, Strategy,
};
use server::{Client, Server, ServerConfig};
use surrogate_core::feature::Features;

fn setup() -> (Arc<Store>, RecordId) {
    let store = Arc::new(Store::new(&["Public"], &[]).unwrap());
    let public = store.predicate("Public").unwrap();
    let a = store.append_node("a", NodeKind::Data, Features::new(), public);
    let b = store.append_node("b", NodeKind::Data, Features::new(), public);
    store.append_edge(a, b, EdgeKind::InputTo).unwrap();
    (store, b)
}

/// One raw HTTP request against the scrape listener.
fn scrape(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("a complete HTTP response");
    (head.to_string(), body.to_string())
}

/// Extracts one sample's value from the exposition text.
fn sample(body: &str, name: &str) -> f64 {
    body.lines()
        .find(|line| line.starts_with(name) && line[name.len()..].starts_with([' ', '{']))
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|value| value.parse().ok())
        .unwrap_or_else(|| panic!("no sample {name:?} in:\n{body}"))
}

#[test]
fn metrics_endpoint_serves_consistent_prometheus_text() {
    let (store, sink) = setup();
    let server = Server::bind(
        Arc::new(AccountService::new(store)),
        "127.0.0.1:0",
        &ServerConfig {
            threads: 2,
            metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let metrics_addr = server.metrics_local_addr().expect("metrics listener bound");

    // Known traffic: 5 identical queries (cache hits after the first),
    // 2 batches, 1 epoch probe, over one connection.
    let mut client = Client::connect(server.local_addr(), "reader", &[]).unwrap();
    let request = QueryRequest::new(sink, Direction::Backward, u32::MAX, Strategy::Surrogate);
    for _ in 0..5 {
        client.query(&request).unwrap();
    }
    for _ in 0..2 {
        client
            .query_batch(&[request.clone(), request.clone()])
            .unwrap();
    }
    client.epoch().unwrap();

    let (head, body) = scrape(metrics_addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "Prometheus exposition content type: {head}"
    );

    // Counter consistency against the traffic just generated.
    assert_eq!(sample(&body, "spgraph_requests_total{type=\"query\"}"), 5.0);
    assert_eq!(sample(&body, "spgraph_requests_total{type=\"batch\"}"), 2.0);
    assert_eq!(sample(&body, "spgraph_requests_total{type=\"epoch\"}"), 1.0);
    assert_eq!(sample(&body, "spgraph_connections_total"), 1.0);
    assert_eq!(sample(&body, "spgraph_connections_open"), 1.0);
    assert_eq!(
        sample(
            &body,
            "spgraph_request_latency_seconds_count{type=\"query\"}"
        ),
        5.0
    );
    assert_eq!(
        sample(&body, "spgraph_overload_drops_total{reason=\"conn_cap\"}"),
        0.0
    );
    // The repeat queries hit the sealed-frame cache; the scrape reads
    // the live service counters.
    assert!(sample(&body, "spgraph_frame_cache_hits_total") >= 4.0);
    assert!(sample(&body, "spgraph_frame_cache_hit_rate") > 0.0);
    assert!(sample(&body, "spgraph_bytes_written_total") > 0.0);
    assert!(sample(&body, "spgraph_epoch") >= 1.0);

    // The in-process registry agrees with the scrape.
    assert_eq!(server.stats().requests, 8);
    assert_eq!(server.metrics().connections_total.get(), 1);

    // Histograms are well-formed: cumulative buckets end at +Inf ==
    // _count.
    let inf = sample(
        &body,
        "spgraph_request_latency_seconds_bucket{type=\"query\",le=\"+Inf\"}",
    );
    assert_eq!(inf, 5.0);

    // Anything but /metrics is a 404, and the scrape listener survives
    // to answer again.
    let (head, _) = scrape(metrics_addr, "/wrong");
    assert!(head.starts_with("HTTP/1.1 404"), "bad status: {head}");
    let (head, body) = scrape(metrics_addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"));
    assert_eq!(sample(&body, "spgraph_connections_total"), 1.0);

    server.shutdown();
}

#[test]
fn metrics_listener_is_optional_and_shut_down_cleanly() {
    let (store, _) = setup();
    let server = Server::bind(
        Arc::new(AccountService::new(store)),
        "127.0.0.1:0",
        &ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    assert_eq!(server.metrics_local_addr(), None);
    server.shutdown();
}
