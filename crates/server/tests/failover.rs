//! The failover fault-injection suite: fenced promotion, write
//! failover, and anti-entropy rejoin.
//!
//! The claims under test, against a single-store oracle
//! (`expected_prefixes`):
//!
//! * **No acknowledged write is ever lost.** Whenever the primary is
//!   killed and a replica promoted — at arbitrary, seed-randomized
//!   points, with appends racing the feed — the promoted store holds a
//!   byte-identical committed prefix covering every write the replica
//!   had acknowledged (caught up past) before the kill.
//! * **The deposed primary is fenced, not raced.** After promotion, a
//!   frame stamped with the old term is refused with a typed
//!   `DeposedPrimary` error and leaves no trace — never silently
//!   applied.
//! * **A deposed primary rejoins by truncating, not forking.** Restarted
//!   as a replica of the promoted node, its unreplicated tail is
//!   discarded by the anti-entropy pass and it converges byte-for-byte.
//! * **Dead links are detected, not waited on.** A half-open primary
//!   (accepts, handshakes, then goes silent — no heartbeats) flips the
//!   link down within the feed read deadline; `wait_caught_up` returns
//!   `false` instead of hanging, and shutdown stays prompt.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use plus_store::codec::WalRecord;
use plus_store::wire::{
    decode_request, encode_response, Request, Response, ServerHello, WireErrorKind,
    PROTOCOL_VERSION,
};
use plus_store::{
    AccountService, DurabilityOptions, EdgeKind, NodeKind, NodeRecord, PolicyStatement, RecordId,
    ReplicaRole, Store, StoreError,
};
use server::{
    read_frame, write_frame, Client, ClientError, ClientPool, Replica, ReplicaConfig, Server,
    ServerConfig,
};
use surrogate_core::feature::Features;
use surrogate_core::marking::Marking;

const LATTICE: (&[&str], &[(usize, usize)]) = (&["Public", "Mid", "High"], &[(1, 0), (2, 1)]);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "failover-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Applies the `i`-th workload operation — the same deterministic shape
/// as the `replication.rs` harness, so `expected_prefixes` is a valid
/// oracle for any store that has applied ops `0..n` in order, whichever
/// process applied them.
fn apply_op(store: &Store, i: usize) {
    let preds = [
        store.predicate("Public").unwrap(),
        store.predicate("Mid").unwrap(),
        store.predicate("High").unwrap(),
    ];
    let nodes = store.node_count();
    if i >= 8 && i % 4 == 0 {
        let k = store.edge_count();
        assert!(k < 56, "workload exceeds the edge enumeration");
        let a = k / 7;
        let idx = k % 7;
        let b = if idx < a { idx } else { idx + 1 };
        store
            .append_edge(
                RecordId(a as u32),
                RecordId(b as u32),
                [EdgeKind::InputTo, EdgeKind::GeneratedBy, EdgeKind::Related][k % 3],
            )
            .unwrap();
    } else if i >= 8 && i % 9 == 0 && nodes > 0 {
        let node = RecordId((i % nodes) as u32);
        if i % 2 == 0 {
            store
                .apply_policy(PolicyStatement::MarkNode {
                    node,
                    predicate: (i % 3 > 0).then_some(preds[i % 3]),
                    marking: [Marking::Visible, Marking::Hide, Marking::Surrogate][i % 3],
                })
                .unwrap();
        } else {
            store
                .apply_policy(PolicyStatement::AddSurrogate {
                    node,
                    label: format!("s{i}"),
                    features: Features::new(),
                    lowest: preds[0],
                    info_score: (i % 10) as f64 / 10.0,
                })
                .unwrap();
        }
    } else {
        store.append_node(
            format!("n{i}"),
            [NodeKind::Data, NodeKind::Process, NodeKind::Agent][i % 3],
            Features::new().with("i", i as i64),
            preds[i % 3],
        );
    }
}

/// `expected[c]` is the committed state (snapshot bytes) at clock `c`.
fn expected_prefixes(ops: usize) -> Vec<Vec<u8>> {
    let store = Store::new(LATTICE.0, LATTICE.1).unwrap();
    let mut prefixes = vec![store.to_bytes()];
    for i in 0..ops {
        apply_op(&store, i);
        prefixes.push(store.to_bytes());
    }
    prefixes
}

fn fast() -> DurabilityOptions {
    DurabilityOptions {
        fsync: false,
        ..Default::default()
    }
}

fn replica_config() -> ReplicaConfig {
    ReplicaConfig {
        durability: fast(),
        connect_attempts: 100,
        reconnect_backoff: Duration::from_millis(10),
        ..ReplicaConfig::default()
    }
}

fn primary_config() -> ServerConfig {
    ServerConfig {
        threads: 2,
        allow_replication: true,
        ..ServerConfig::default()
    }
}

fn boot_primary(dir: &PathBuf) -> (Arc<Store>, Arc<AccountService>, Server) {
    let store = Arc::new(Store::create_durable_with(dir, LATTICE.0, LATTICE.1, fast()).unwrap());
    let service = Arc::new(AccountService::new(store.clone()));
    let server =
        Server::bind(service.clone(), "127.0.0.1:0", &primary_config()).expect("bind primary");
    (store, service, server)
}

/// Fronts a replica with a replication-enabled server via the unified
/// `Role::Replica` bind.
fn bind_replica_front(replica: &Replica) -> Server {
    let config = ServerConfig {
        role: server::Role::Replica {
            feed: replica.monitor(),
        },
        ..primary_config()
    };
    Server::bind(replica.service().clone(), "127.0.0.1:0", &config).unwrap()
}

fn wait_until(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    done()
}

const CATCH_UP: Duration = Duration::from_secs(20);

/// A frame the deposed primary might still try to ship: any valid
/// append, stamped with the pre-promotion term.
fn forked_record(store: &Store) -> WalRecord {
    WalRecord::AppendNode(NodeRecord {
        label: "forked-write".to_string(),
        kind: NodeKind::Data,
        features: Features::new(),
        lowest: store.predicate("Public").unwrap(),
        created_at: store.clock(),
    })
}

/// The headline churn harness: 100 seed-randomized kill/promote
/// schedules. Each seed boots a primary+replica pair, acknowledges a
/// random prefix of the workload, races a few more appends against the
/// feed, kills the primary at that arbitrary point, promotes the
/// replica (mostly in-process, every 8th seed over the wire through a
/// fronting server), and then proves, against the single-store oracle:
/// every acknowledged write survived byte-identically, the promoted
/// store accepts and correctly applies new writes, and a frame from the
/// deposed term is refused with `DeposedPrimary` without a trace.
#[test]
fn randomized_kill_promote_churn_preserves_acknowledged_writes() {
    const SEEDS: u64 = 100;
    const MAX_OPS: usize = 80;
    let expected = expected_prefixes(MAX_OPS);

    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let primary_dir = temp_dir(&format!("churn-primary-{seed}"));
        let replica_dir = temp_dir(&format!("churn-replica-{seed}"));
        let (store, _service, server) = boot_primary(&primary_dir);
        let addr = server.local_addr().to_string();
        let replica = Replica::start_with(&addr, &replica_dir, replica_config()).unwrap();

        // Acknowledge a random prefix: apply, then wait until the
        // replica has caught up past it. Everything at or below k1 is an
        // acknowledged write and MUST survive the failover.
        let k1 = rng.gen_range(1..=60usize);
        for i in 0..k1 {
            apply_op(&store, i);
        }
        assert!(
            replica.wait_caught_up(CATCH_UP),
            "seed {seed}: replica never caught up to the acknowledged prefix"
        );
        assert!(wait_until(CATCH_UP, || replica.epoch() >= k1 as u64));

        // Race a few unacknowledged appends against the feed, then kill
        // the primary mid-stream at this arbitrary point.
        let k2 = rng.gen_range(0..8usize);
        for i in k1..k1 + k2 {
            apply_op(&store, i);
        }
        server.shutdown();

        let old_term = replica.store().replication_term();
        let term = if seed % 8 == 0 {
            // Wire promotion: the operator runbook path, through a
            // fronting server.
            let front = bind_replica_front(&replica);
            let mut client = Client::connect(front.local_addr(), "op", &[]).unwrap();
            let term = client.promote().unwrap();
            // Idempotent: a second promote through the server answers
            // with the current term instead of bumping again.
            assert_eq!(client.promote().unwrap(), term, "seed {seed}");
            front.shutdown();
            term
        } else {
            replica.promote().unwrap()
        };
        assert_eq!(term, old_term + 1, "seed {seed}: promotion bumps the term");
        assert_eq!(replica.status().role, ReplicaRole::Primary, "seed {seed}");

        // Oracle check: the promoted store sits at a committed prefix
        // covering every acknowledged write.
        let clock = replica.epoch() as usize;
        assert!(
            clock >= k1 && clock <= k1 + k2,
            "seed {seed}: promoted clock {clock} outside [{k1}, {}]",
            k1 + k2
        );
        assert_eq!(
            replica.store().to_bytes(),
            expected[clock],
            "seed {seed}: promoted state at clock {clock} is not the committed prefix"
        );

        // Fencing: a frame from the deposed term is refused, typed, and
        // leaves no trace.
        let refused = replica
            .store()
            .apply_replicated(forked_record(replica.store()), old_term);
        assert!(
            matches!(refused, Err(StoreError::DeposedPrimary { .. })),
            "seed {seed}: old-term frame was not refused: {refused:?}"
        );
        assert_eq!(
            replica.store().to_bytes(),
            expected[clock],
            "seed {seed}: a refused frame changed state"
        );

        // The promoted store is a writable primary: continue the
        // workload on it and stay on the oracle.
        let k3 = rng.gen_range(1..=10usize);
        for i in clock..clock + k3 {
            apply_op(replica.store(), i);
        }
        assert_eq!(
            replica.store().to_bytes(),
            expected[clock + k3],
            "seed {seed}: writes on the promoted primary diverged from the oracle"
        );

        replica.shutdown();
        std::fs::remove_dir_all(&primary_dir).ok();
        std::fs::remove_dir_all(&replica_dir).ok();
    }
}

/// The full availability loop: primary dies with an unreplicated tail,
/// the replica is promoted and moves on, the deposed primary restarts
/// pointed at the new primary — and rejoins as a replica by truncating
/// its fork instead of serving it.
#[test]
fn deposed_primary_rejoins_by_truncating_its_unreplicated_tail() {
    const ACKED: usize = 40;
    const TAIL: usize = 5; // unreplicated fork on the deposed primary
    const AFTER: usize = 7; // promoted history past the fork point
    let expected = expected_prefixes(ACKED + AFTER);

    let a_dir = temp_dir("rejoin-deposed");
    let b_dir = temp_dir("rejoin-promoted");
    let (store_a, service_a, server_a) = boot_primary(&a_dir);
    let addr_a = server_a.local_addr().to_string();
    let replica_b = Replica::start_with(&addr_a, &b_dir, replica_config()).unwrap();

    for i in 0..ACKED {
        apply_op(&store_a, i);
    }
    assert!(replica_b.wait_caught_up(CATCH_UP));
    assert!(wait_until(CATCH_UP, || replica_b.epoch() == ACKED as u64));

    // Kill A's server, then let A append a tail no replica ever saw —
    // the write it would have lost the right to acknowledge.
    server_a.shutdown();
    for i in ACKED..ACKED + TAIL {
        apply_op(&store_a, i);
    }
    assert_eq!(store_a.clock(), (ACKED + TAIL) as u64);

    // Promote B and continue the (diverging) promoted history.
    let term = replica_b.promote().unwrap();
    assert_eq!(term, 1);
    for i in ACKED..ACKED + AFTER {
        apply_op(replica_b.store(), i);
    }
    let server_b = bind_replica_front(&replica_b);
    let addr_b = server_b.local_addr().to_string();

    // Release A's directory (drop its store) and restart it as a
    // replica of B: anti-entropy must discard the forked tail, then the
    // feed re-ships the promoted history.
    drop(store_a);
    drop(service_a);
    let rejoined = Replica::start_with(&addr_b, &a_dir, replica_config()).unwrap();
    assert!(
        rejoined.wait_caught_up(CATCH_UP),
        "deposed primary never converged: {:?}",
        rejoined.status()
    );
    assert!(wait_until(CATCH_UP, || rejoined.epoch() == (ACKED + AFTER) as u64));
    assert_eq!(
        rejoined.store().to_bytes(),
        expected[ACKED + AFTER],
        "rejoined history is not the promoted history"
    );
    assert_eq!(
        rejoined.store().to_bytes(),
        replica_b.store().to_bytes(),
        "byte-for-byte convergence with the promoted primary"
    );
    assert_eq!(rejoined.status().role, ReplicaRole::Replica);
    assert_eq!(
        rejoined.store().replication_term(),
        1,
        "the rejoined replica adopted the promoted term"
    );

    rejoined.shutdown();
    server_b.shutdown();
    replica_b.shutdown();
    std::fs::remove_dir_all(&a_dir).ok();
    std::fs::remove_dir_all(&b_dir).ok();
}

/// A fake primary that accepts, handshakes, answers anti-entropy — and
/// then never sends a single subscription byte: the half-open peer a
/// power-lossed primary leaves behind.
fn spawn_silent_primary(epoch: u64) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            std::thread::spawn(move || {
                let mut inbuf = Vec::new();
                let mut outbuf = Vec::new();
                loop {
                    let request = match read_frame(&mut stream, &mut inbuf) {
                        Ok(Some(payload)) => match decode_request(payload) {
                            Ok(request) => request,
                            Err(_) => return,
                        },
                        _ => return,
                    };
                    let response = match request {
                        Request::Hello { .. } => Response::Hello(ServerHello {
                            version: PROTOCOL_VERSION,
                            epoch,
                            nodes: 0,
                            shard_count: 0,
                            shard_index: None,
                            predicates: Vec::new(),
                            peers: Vec::new(),
                        }),
                        Request::LogDigests => Response::LogDigests {
                            term: 0,
                            segments: Vec::new(),
                        },
                        // Accept the subscription, then go silent
                        // forever — no chunk, no heartbeat, no FIN.
                        Request::Subscribe { .. } => loop {
                            std::thread::sleep(Duration::from_secs(3600));
                        },
                        _ => return,
                    };
                    let payload = encode_response(&response).unwrap();
                    if write_frame(&mut stream, &payload, &mut outbuf).is_err() {
                        return;
                    }
                }
            });
        }
    });
    addr
}

/// Satellite regression: the feed socket carries a read deadline, so a
/// primary that handshakes and then never speaks again is detected as a
/// dead link — `connected` flips off, `wait_caught_up` returns `false`
/// promptly instead of hanging on the dead socket, and shutdown joins.
#[test]
fn silent_primary_is_a_dead_link_not_a_hang() {
    // Warm-seed the replica directory so start_with returns without
    // needing a bootstrap chunk the silent primary will never send.
    let dir = temp_dir("silent-primary");
    {
        let local = Store::create_durable_with(&dir, LATTICE.0, LATTICE.1, fast()).unwrap();
        for i in 0..10 {
            apply_op(&local, i);
        }
    }
    let addr = spawn_silent_primary(1_000);
    let config = ReplicaConfig {
        feed_read_timeout: Duration::from_millis(200),
        reconnect_backoff: Duration::from_millis(50),
        connect_attempts: 3,
        durability: fast(),
    };
    let replica = Replica::start_with(&addr, &dir, config).unwrap();

    // No chunk can ever land, so catch-up must report failure — within
    // the deadline's order of magnitude, not never.
    let began = Instant::now();
    assert!(
        !replica.wait_caught_up(Duration::from_secs(2)),
        "caught up against a primary that never sent a chunk?"
    );
    assert!(began.elapsed() < Duration::from_secs(10));
    assert!(
        wait_until(Duration::from_secs(5), || {
            let status = replica.status();
            !status.connected && status.last_error.is_some()
        }),
        "the dead link was never detected: {:?}",
        replica.status()
    );

    // And the apply thread is not parked on the dead socket: shutdown
    // joins promptly.
    let began = Instant::now();
    replica.shutdown();
    assert!(
        began.elapsed() < Duration::from_secs(3),
        "shutdown hung on the silent feed"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: a failed cold start returns after its last
/// attempt instead of sleeping one extra backoff into the error.
#[test]
fn bootstrap_does_not_sleep_after_its_final_attempt() {
    // A port that refuses: bound, resolved, then released.
    let refused = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let dir = temp_dir("bootstrap-timing");
    let config = ReplicaConfig {
        connect_attempts: 2,
        reconnect_backoff: Duration::from_millis(400),
        durability: fast(),
        ..ReplicaConfig::default()
    };
    let began = Instant::now();
    let result = Replica::start_with(&refused, &dir, config);
    let elapsed = began.elapsed();
    assert!(result.is_err(), "connected to a released port?");
    // Two refused dials bracket exactly one backoff: ~400ms. The old
    // behavior slept after the final attempt too (~800ms).
    assert!(
        elapsed < Duration::from_millis(700),
        "final failed attempt slept into the error: {elapsed:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: a raised stop flag interrupts the reconnect
/// backoff instead of sleeping through it.
#[test]
fn shutdown_interrupts_reconnect_backoff() {
    let primary_dir = temp_dir("interrupt-primary");
    let replica_dir = temp_dir("interrupt-replica");
    let (store, _service, server) = boot_primary(&primary_dir);
    let addr = server.local_addr().to_string();
    for i in 0..5 {
        apply_op(&store, i);
    }
    let config = ReplicaConfig {
        // A backoff far longer than the assertion bound: only an
        // interrupted sleep can pass.
        reconnect_backoff: Duration::from_secs(30),
        feed_read_timeout: Duration::from_millis(200),
        durability: fast(),
        ..ReplicaConfig::default()
    };
    let replica = Replica::start_with(&addr, &replica_dir, config).unwrap();
    assert!(replica.wait_caught_up(CATCH_UP));
    server.shutdown();
    assert!(
        wait_until(Duration::from_secs(5), || !replica.status().connected),
        "the kill was never noticed"
    );
    // The apply thread is now inside its 30s backoff.
    let began = Instant::now();
    replica.shutdown();
    assert!(
        began.elapsed() < Duration::from_secs(2),
        "shutdown slept through the reconnect backoff"
    );
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}

/// Write failover at the client: an unpromoted replica-fronted server
/// refuses writes with a typed `NotWritable` redirect carrying the
/// primary's address, and `ClientPool::writable` follows status
/// breadcrumbs to the current primary — before and after a failover.
#[test]
fn writes_redirect_and_the_pool_re_resolves_the_primary() {
    let primary_dir = temp_dir("redirect-primary");
    let replica_dir = temp_dir("redirect-replica");
    let (store, _service, server) = boot_primary(&primary_dir);
    let addr = server.local_addr().to_string();
    for i in 0..20 {
        apply_op(&store, i);
    }
    let replica = Replica::start_with(&addr, &replica_dir, replica_config()).unwrap();
    assert!(replica.wait_caught_up(CATCH_UP));
    let front = bind_replica_front(&replica);
    let front_addr = front.local_addr().to_string();

    // A write against the replica is a typed redirect, not a success
    // and not a generic refusal.
    let mut to_replica = Client::connect(front_addr.as_str(), "op", &[]).unwrap();
    let refused = to_replica.checkpoint().expect_err("replicas are read-only");
    let ClientError::Remote(remote) = &refused else {
        panic!("not a typed refusal: {refused}");
    };
    assert_eq!(remote.kind, WireErrorKind::NotWritable);
    assert_eq!(remote.message, addr, "the redirect names the primary");

    // A pool that only knows the replica follows the breadcrumb to the
    // primary, and the redirect error updates its cached route.
    let pool = ClientPool::new(front_addr.as_str(), "writer", &[]);
    {
        let mut writable = pool.writable().unwrap();
        assert_eq!(
            writable.replica_status().unwrap().role,
            ReplicaRole::Primary
        );
        assert_eq!(writable.epoch().unwrap(), store.clock());
    }
    assert!(pool.note_redirect(&refused), "a redirect updates the route");

    // Failover: kill the primary, promote the replica over the wire.
    server.shutdown();
    let mut client = Client::connect(front_addr.as_str(), "op", &[]).unwrap();
    let term = client.promote().unwrap();
    assert_eq!(term, 1);
    let status = client.replica_status().unwrap();
    assert_eq!(status.role, ReplicaRole::Primary);
    assert_eq!(status.term, 1);
    assert_eq!(status.primary_addr, None, "a primary follows no one");

    // A pool configured with the dead primary re-resolves to the
    // promoted node.
    let pool = ClientPool::new(addr.as_str(), "writer", &[]).with_replicas([front_addr.clone()]);
    {
        let mut writable = pool.writable().unwrap();
        let status = writable.replica_status().unwrap();
        assert_eq!(status.role, ReplicaRole::Primary);
        assert_eq!(status.term, 1);
    }

    front.shutdown();
    replica.shutdown();
    std::fs::remove_dir_all(&primary_dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}
