//! The sharding adversarial suite — multi-primary writes, scatter-gather
//! reads, and the failure modes in between.
//!
//! The claims under test:
//!
//! 1. **Oracle equivalence.** A gather node's answer to a cross-shard
//!    traversal is *identical* — rows, labels, depths, epoch — to what a
//!    single unsharded store fed the same operation sequence would
//!    answer. Sharding is a deployment topology, not a semantics change.
//! 2. **No silent gaps.** Kill a shard mid-stream and the gather
//!    *refuses* queries with a typed `ShardUnavailable` error; it never
//!    serves an answer missing the dead shard's records.
//! 3. **Typed redirects.** A write landing on the wrong shard comes back
//!    as `WrongShard` naming the owner, and [`ShardRouter`] follows one
//!    redirect to success.
//! 4. **Concurrent primaries.** Writers hammering different shards at
//!    once never interleave destructively: every record lands, ids stay
//!    disjoint by congruence class, and the merged graph sees all of it.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use plus_store::wire::{WireErrorKind, WriteOp};
use plus_store::{
    AccountService, Direction, DurabilityOptions, EdgeKind, NodeKind, PolicyStatement,
    QueryRequest, QueryResponse, RecordId, Store, Strategy,
};
use server::{Client, ClientError, Gather, Server, ServerConfig, ShardRouter, Topology};
use surrogate_core::feature::Features;
use surrogate_core::marking::Marking;
use surrogate_core::shard::Partition;

const LATTICE: (&[&str], &[(usize, usize)]) = (&["Public", "Mid", "High"], &[(1, 0), (2, 1)]);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sharding-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One shard primary plus the directory its store lives in.
struct ShardNode {
    server: Server,
    dir: PathBuf,
}

/// Boots `count` shard primaries (replication on, as a gather requires)
/// and returns them with their addresses. `peers_for` decides each
/// shard's redirect peer list; tests that don't care pass `|_| vec![]`
/// and get decimal-index redirects.
fn boot_shards(
    test: &str,
    count: u32,
    peers_for: impl Fn(u32, &[String]) -> Vec<String>,
) -> (Vec<ShardNode>, Vec<String>) {
    // Two passes would need the addresses before binding; instead bind
    // with port 0 one shard at a time, threading the addresses gathered
    // so far into `peers_for`.
    let mut nodes = Vec::new();
    let mut addrs: Vec<String> = Vec::new();
    for index in 0..count {
        let dir = temp_dir(&format!("{test}-s{index}"));
        let partition = Partition::new(index, count).unwrap();
        let store = Store::create_durable_partitioned(
            &dir,
            LATTICE.0,
            LATTICE.1,
            DurabilityOptions::default(),
            partition,
        )
        .unwrap();
        let config = ServerConfig {
            allow_replication: true,
            ..ServerConfig::default()
        };
        let peers = peers_for(index, &addrs);
        let topology = if peers.is_empty() {
            Topology::default()
        } else {
            Topology::from_peers(peers).unwrap()
        };
        let config = ServerConfig {
            role: server::Role::Shard {
                index,
                count,
                topology,
                feed: None,
            },
            ..config
        };
        let server = Server::bind(
            Arc::new(AccountService::new(Arc::new(store))),
            "127.0.0.1:0",
            &config,
        )
        .unwrap();
        addrs.push(server.local_addr().to_string());
        nodes.push(ShardNode { server, dir });
    }
    (nodes, addrs)
}

fn boot_gather(addrs: &[String]) -> (Arc<Gather>, Server) {
    let peer_refs: Vec<&str> = addrs.iter().map(String::as_str).collect();
    let gather = Arc::new(Gather::start(&peer_refs).unwrap());
    let config = ServerConfig {
        role: server::Role::Gather {
            gather: gather.clone(),
        },
        ..ServerConfig::default()
    };
    let front = Server::bind(gather.service().clone(), "127.0.0.1:0", &config).unwrap();
    (gather, front)
}

/// A writer-identity router over bare primaries, in the given order.
fn router_over(addrs: &[&str]) -> ShardRouter {
    let topology = Topology::from_peers(addrs.iter().copied())
        .unwrap()
        .with_consumer("writer", Vec::<String>::new());
    ShardRouter::new(&topology).unwrap()
}

/// Polls `client.epoch()` until it reaches `target` — the gather lags
/// the shards by one feed round-trip, so every read-after-write in this
/// suite syncs explicitly first.
fn wait_epoch(client: &mut Client, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let epoch = client.epoch().unwrap();
        if epoch >= target {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "gather stuck at epoch {epoch}, want {target}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn cleanup(nodes: Vec<ShardNode>) {
    for node in nodes {
        node.server.shutdown();
        let _ = std::fs::remove_dir_all(&node.dir);
    }
}

/// The deterministic cross-shard workload: applied through a
/// [`ShardRouter`] it round-robins node appends across the shards, which
/// makes the assigned global ids *dense* — exactly the ids an unsharded
/// store appending the same sequence would assign. That identity is what
/// lets the oracle test compare answers byte for byte.
fn workload(mut node: impl FnMut(&str, usize), mut edge: impl FnMut(u32, u32, EdgeKind)) -> u64 {
    let labels = [
        "source-a", "source-b", "filter", "merge", "report", "audit", "archive", "digest",
    ];
    for (i, label) in labels.iter().enumerate() {
        node(label, i % 3); // lowest predicate rotates Public/Mid/High
    }
    let edges = [
        (0u32, 2u32, EdgeKind::InputTo),
        (1, 2, EdgeKind::InputTo),
        (2, 3, EdgeKind::GeneratedBy),
        (3, 4, EdgeKind::GeneratedBy),
        (4, 5, EdgeKind::TriggeredBy),
        (3, 6, EdgeKind::Related),
        (6, 7, EdgeKind::GeneratedBy),
    ];
    for (from, to, kind) in edges {
        edge(from, to, kind);
    }
    (labels.len() + edges.len()) as u64
}

/// Claim 1: every traversal through the gather matches a single-store
/// oracle that applied the same operations — rows, depths, labels, and
/// the scalar epoch (the sum of the per-shard clocks) all byte-equal.
#[test]
fn cross_shard_traversals_match_single_store_oracle() {
    let (nodes, addrs) = boot_shards("oracle", 2, |_, _| vec![]);
    let (gather, front) = boot_gather(&addrs);

    // Sharded side: the workload through a router.
    let addr_refs: Vec<&str> = addrs.iter().map(String::as_str).collect();
    let router = router_over(&addr_refs);
    let preds: Vec<_> = {
        let probe = Client::connect(&addrs[0], "probe", &[]).unwrap();
        LATTICE
            .0
            .iter()
            .map(|name| probe.predicate(name).unwrap())
            .collect()
    };
    let mut sharded_ids = Vec::new();
    let total = workload(
        |label, lowest| {
            let (_, id) = router
                .write(WriteOp::AppendNode {
                    label: label.to_string(),
                    kind: NodeKind::Data,
                    features: Features::new(),
                    lowest: preds[lowest],
                })
                .unwrap();
            sharded_ids.push(id.unwrap());
        },
        |from, to, kind| {
            let (_, id) = router
                .write(WriteOp::AppendEdge {
                    from: RecordId(from),
                    to: RecordId(to),
                    kind,
                })
                .unwrap();
            assert_eq!(id, None, "edge appends assign no id");
        },
    );
    // A policy statement routed by its governed node, for good measure.
    router
        .write(WriteOp::ApplyPolicy(PolicyStatement::MarkNode {
            node: RecordId(3),
            predicate: Some(preds[2]),
            marking: Marking::Surrogate,
        }))
        .unwrap();

    // Round-robin across 2 shards must have produced dense ids 0..8.
    let expect: Vec<_> = (0..sharded_ids.len() as u32).map(RecordId).collect();
    assert_eq!(sharded_ids, expect, "sharded ids are dense and in order");

    // Oracle side: the identical sequence against one unsharded store.
    let oracle = Arc::new(Store::new(LATTICE.0, LATTICE.1).unwrap());
    workload(
        |label, lowest| {
            oracle
                .try_append_node(label, NodeKind::Data, Features::new(), preds[lowest])
                .unwrap();
        },
        |from, to, kind| {
            oracle
                .append_edge(RecordId(from), RecordId(to), kind)
                .unwrap();
        },
    );
    oracle
        .apply_policy(PolicyStatement::MarkNode {
            node: RecordId(3),
            predicate: Some(preds[2]),
            marking: Marking::Surrogate,
        })
        .unwrap();
    let oracle_server = Server::bind(
        Arc::new(AccountService::new(oracle)),
        "127.0.0.1:0",
        &ServerConfig::default(),
    )
    .unwrap();

    // Compare every root, two directions, every strategy, through the
    // eyes of two differently-privileged consumers.
    for claims in [&["Mid"][..], &["High"][..]] {
        let mut via_gather = Client::connect(front.local_addr(), "auditor", claims).unwrap();
        let mut via_oracle =
            Client::connect(oracle_server.local_addr(), "auditor", claims).unwrap();
        wait_epoch(&mut via_gather, total + 1);
        for root in 0..8u32 {
            for direction in [Direction::Backward, Direction::Forward] {
                for strategy in [
                    Strategy::Surrogate,
                    Strategy::HideEdges,
                    Strategy::HideNodes,
                ] {
                    let request = QueryRequest::new(RecordId(root), direction, u32::MAX, strategy);
                    let sharded: QueryResponse = via_gather.query(&request).unwrap();
                    let single: QueryResponse = via_oracle.query(&request).unwrap();
                    assert_eq!(
                        sharded.shard_epochs.iter().sum::<u64>(),
                        sharded.epoch,
                        "gather epoch is the sum of its per-shard clocks"
                    );
                    assert_eq!(sharded.shard_epochs.len(), 2);
                    assert!(single.shard_epochs.is_empty(), "oracle is unsharded");
                    // The shard-epoch vector is the one legitimate
                    // difference; everything else must be identical.
                    let mut flattened = sharded.clone();
                    flattened.shard_epochs = Vec::new();
                    assert_eq!(
                        flattened, single,
                        "root {root} {direction:?} {strategy:?} diverged from the oracle"
                    );
                }
            }
        }
    }

    oracle_server.shutdown();
    front.shutdown();
    drop(gather);
    cleanup(nodes);
}

/// Claim 4: concurrent writers on *different* shards don't contend — all
/// records land, each shard's ids stay in its congruence class, and the
/// gather merges both chains completely.
#[test]
fn concurrent_writers_on_different_shards_all_land() {
    const K: u32 = 40;
    let (nodes, addrs) = boot_shards("concurrent", 2, |_, _| vec![]);
    let (gather, front) = boot_gather(&addrs);

    let writers: Vec<_> = (0..2u32)
        .map(|shard| {
            let addr = addrs[shard as usize].clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, "writer", &[]).unwrap();
                let public = client.predicate("Public").unwrap();
                let mut prev: Option<RecordId> = None;
                for j in 0..K {
                    let (_, id) = client
                        .write(WriteOp::AppendNode {
                            label: format!("w{shard}-{j}"),
                            kind: NodeKind::Data,
                            features: Features::new(),
                            lowest: public,
                        })
                        .unwrap();
                    let id = id.unwrap();
                    assert_eq!(id.0 % 2, shard, "shard {shard} assigns its own class");
                    if let Some(prev) = prev {
                        client
                            .write(WriteOp::AppendEdge {
                                from: prev,
                                to: id,
                                kind: EdgeKind::InputTo,
                            })
                            .unwrap();
                    }
                    prev = Some(id);
                }
                prev.unwrap()
            })
        })
        .collect();
    let tails: Vec<RecordId> = writers.into_iter().map(|w| w.join().unwrap()).collect();

    // Each shard applied K nodes + K-1 edges.
    let per_shard = (2 * K - 1) as u64;
    let mut client = Client::connect(front.local_addr(), "reader", &["Public"]).unwrap();
    wait_epoch(&mut client, 2 * per_shard);

    let status = client.shard_status().unwrap();
    assert_eq!(status.count, 2);
    assert_eq!(status.index, None);
    assert_eq!(status.epochs, vec![per_shard, per_shard]);

    // Walking back from each chain's tail crosses the whole chain: all
    // K-1 ancestors present, labels intact, in BFS depth order.
    for (shard, tail) in tails.iter().enumerate() {
        let response = client
            .query(&QueryRequest::new(
                *tail,
                Direction::Backward,
                u32::MAX,
                Strategy::Surrogate,
            ))
            .unwrap();
        assert_eq!(
            response.rows.len(),
            (K - 1) as usize,
            "shard {shard} chain is complete in the merged graph"
        );
        for (depth, row) in response.rows.iter().enumerate() {
            assert_eq!(row.label, format!("w{shard}-{}", K as usize - 2 - depth));
        }
    }

    front.shutdown();
    drop(gather);
    cleanup(nodes);
}

/// Claim 2: a shard dying mid-stream turns the gather's answers into
/// typed `ShardUnavailable` refusals — never a response missing the dead
/// shard's records.
#[test]
fn killed_shard_yields_typed_refusal_never_a_gap() {
    let (mut nodes, addrs) = boot_shards("killed", 2, |_, _| vec![]);
    let (gather, front) = boot_gather(&addrs);

    // Seed a cross-shard chain 0 → 1 → 2 (ids alternate shards).
    let addr_refs: Vec<&str> = addrs.iter().map(String::as_str).collect();
    let router = router_over(&addr_refs);
    let public = router.pool(0).get().unwrap().predicate("Public").unwrap();
    let mut ids = Vec::new();
    for label in ["a", "b", "c"] {
        let (_, id) = router
            .write(WriteOp::AppendNode {
                label: label.to_string(),
                kind: NodeKind::Data,
                features: Features::new(),
                lowest: public,
            })
            .unwrap();
        ids.push(id.unwrap());
    }
    for pair in ids.windows(2) {
        router
            .write(WriteOp::AppendEdge {
                from: pair[0],
                to: pair[1],
                kind: EdgeKind::GeneratedBy,
            })
            .unwrap();
    }

    let request = QueryRequest::new(ids[2], Direction::Backward, u32::MAX, Strategy::Surrogate);
    let mut client = Client::connect(front.local_addr(), "reader", &["Public"]).unwrap();
    wait_epoch(&mut client, 5);
    let baseline = client.query(&request).unwrap();
    assert_eq!(baseline.rows.len(), 2, "chain visible before the kill");

    // Kill shard 1 (owner of "b") and hammer the gather. Until the feed
    // notices, full answers are fine; after, only the typed refusal is —
    // an answer with fewer rows would be the silent gap this suite
    // exists to rule out.
    nodes.remove(1).server.shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    let refusal = loop {
        match client.query(&request) {
            Ok(response) => {
                assert_eq!(
                    response.rows, baseline.rows,
                    "a pre-refusal answer must still be the complete one"
                );
            }
            Err(ClientError::Remote(remote)) => break remote,
            Err(other) => panic!("expected a typed refusal, got {other}"),
        }
        assert!(
            Instant::now() < deadline,
            "gather never noticed the dead shard"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(refusal.kind, WireErrorKind::ShardUnavailable);
    assert!(
        refusal.message.contains("shard 1"),
        "refusal names the dead shard: {}",
        refusal.message
    );
    // The connection survives a refusal; status still answers and shows
    // the feed down.
    assert!(!gather.connected(1));
    assert_eq!(gather.first_down(), Some(1));

    front.shutdown();
    drop(gather);
    cleanup(nodes);
}

/// Claim 3: mis-routed writes come back as `WrongShard` — the owner's
/// address when the shard knows its peers, its index in decimal when it
/// doesn't — and [`ShardRouter`] follows the address form once.
#[test]
fn misrouted_writes_redirect_to_the_owner() {
    // Shard 0 gets no peer list (decimal redirects); shard 1 learns
    // shard 0's address (its own slot is never the redirect target, so
    // any placeholder satisfies the length check).
    let (nodes, addrs) = boot_shards("redirect", 2, |index, known| {
        if index == 1 {
            vec![known[0].clone(), known[0].clone()]
        } else {
            vec![]
        }
    });

    let mut client0 = Client::connect(&addrs[0], "writer", &[]).unwrap();
    let mut client1 = Client::connect(&addrs[1], "writer", &[]).unwrap();
    assert_eq!(client0.hello().shard_count, 2);
    assert_eq!(client0.hello().shard_index, Some(0));
    let public = client0.predicate("Public").unwrap();

    let node = |label: &str| WriteOp::AppendNode {
        label: label.to_string(),
        kind: NodeKind::Data,
        features: Features::new(),
        lowest: public,
    };
    let (_, id0) = client0.write(node("even")).unwrap();
    let (_, id1) = client1.write(node("odd")).unwrap();
    let (id0, id1) = (id0.unwrap(), id1.unwrap());
    assert_eq!((id0, id1), (RecordId(0), RecordId(1)));

    // Peer-aware shard 1 redirects by address…
    let misroute = WriteOp::AppendEdge {
        from: id0,
        to: id1,
        kind: EdgeKind::InputTo,
    };
    match client1.write(misroute.clone()) {
        Err(ClientError::Remote(remote)) => {
            assert_eq!(remote.kind, WireErrorKind::WrongShard);
            assert_eq!(
                remote.message, addrs[0],
                "redirect names the owner's address"
            );
        }
        other => panic!("expected WrongShard, got {other:?}"),
    }
    // …peerless shard 0 by decimal index.
    match client0.write(WriteOp::AppendEdge {
        from: id1,
        to: id0,
        kind: EdgeKind::InputTo,
    }) {
        Err(ClientError::Remote(remote)) => {
            assert_eq!(remote.kind, WireErrorKind::WrongShard);
            assert_eq!(
                remote.message, "1",
                "peerless redirect is the owner's index"
            );
        }
        other => panic!("expected WrongShard, got {other:?}"),
    }

    // A router whose peer order is swapped relative to the real topology
    // mis-routes every id-routed write; the address-form redirect from
    // shard 1 carries it to the right place anyway.
    let swapped = router_over(&[&addrs[1], &addrs[0]]);
    let (clock, id) = swapped.write(misroute).unwrap();
    assert_eq!(id, None);
    assert_eq!(
        clock, 2,
        "the edge landed on the owning shard (node + edge)"
    );

    // The decimal form can't rescue a swapped router (the index maps
    // back to the same wrong pool); the second refusal surfaces instead
    // of bouncing forever.
    match swapped.write(WriteOp::ApplyPolicy(PolicyStatement::MarkNode {
        node: id1,
        predicate: None,
        marking: Marking::Hide,
    })) {
        Err(ClientError::Remote(remote)) => {
            assert_eq!(remote.kind, WireErrorKind::WrongShard)
        }
        other => panic!("expected the second refusal to surface, got {other:?}"),
    }

    cleanup(nodes);
}

/// Shards serve point reads for owned ids, refuse traversals, and
/// redirect foreign roots; hellos and shard-status advertise the
/// topology from every role's point of view.
#[test]
fn shard_roles_point_reads_and_status() {
    let (nodes, addrs) = boot_shards("roles", 2, |_, _| vec![]);
    let (gather, front) = boot_gather(&addrs);

    let mut client0 = Client::connect(&addrs[0], "reader", &["Public"]).unwrap();
    let public = client0.predicate("Public").unwrap();
    client0
        .write(WriteOp::AppendNode {
            label: "only".to_string(),
            kind: NodeKind::Data,
            features: Features::new(),
            lowest: public,
        })
        .unwrap();

    // Point read of an owned id: answered, with the shard's own slot
    // live in the epoch vector.
    let point = QueryRequest::new(RecordId(0), Direction::Backward, 0, Strategy::Surrogate);
    let response = client0.query(&point).unwrap();
    assert_eq!(response.shard_epochs, vec![1, 0]);
    let status = client0.shard_status().unwrap();
    assert_eq!((status.count, status.index), (2, Some(0)));
    assert_eq!(status.epochs, vec![1, 0]);

    // A traversal is refused with a pointer at the gather tier…
    let traversal = QueryRequest::new(RecordId(0), Direction::Backward, 3, Strategy::Surrogate);
    match client0.query(&traversal) {
        Err(ClientError::Remote(remote)) => {
            assert_eq!(remote.kind, WireErrorKind::BadRequest);
            assert!(
                remote.message.contains("point reads only"),
                "{}",
                remote.message
            );
        }
        other => panic!("expected a traversal refusal, got {other:?}"),
    }
    // …and a foreign root with a WrongShard redirect.
    let foreign = QueryRequest::new(RecordId(1), Direction::Backward, 0, Strategy::Surrogate);
    match client0.query(&foreign) {
        Err(ClientError::Remote(remote)) => assert_eq!(remote.kind, WireErrorKind::WrongShard),
        other => panic!("expected WrongShard, got {other:?}"),
    }

    // The gather fronts all shards: hello says so, and it happily serves
    // the traversal the shard refused.
    let mut via_gather = Client::connect(front.local_addr(), "reader", &["Public"]).unwrap();
    assert_eq!(via_gather.hello().shard_count, 2);
    assert_eq!(via_gather.hello().shard_index, None);
    wait_epoch(&mut via_gather, 1);
    via_gather.query(&traversal).unwrap();

    // An unsharded server reports count 0 and its scalar epoch.
    let plain = Server::bind(
        Arc::new(AccountService::new(Arc::new(
            Store::new(LATTICE.0, LATTICE.1).unwrap(),
        ))),
        "127.0.0.1:0",
        &ServerConfig::default(),
    )
    .unwrap();
    let mut unsharded = Client::connect(plain.local_addr(), "reader", &[]).unwrap();
    assert_eq!(unsharded.hello().shard_count, 0);
    assert_eq!(unsharded.hello().shard_index, None);
    let status = unsharded.shard_status().unwrap();
    assert_eq!((status.count, status.index), (0, None));
    assert_eq!(status.epochs, vec![0]);

    plain.shutdown();
    front.shutdown();
    drop(gather);
    cleanup(nodes);
}
