//! Blocking frame I/O over any `Read`/`Write` pair.
//!
//! Frames are the shared store convention — `len u32 | crc32 u32 |
//! payload` (see `plus_store::codec`) — so a wire capture and a WAL
//! segment tail are checked by the same rules. The reader distinguishes
//! a *clean* close (EOF exactly at a frame boundary) from a *torn* one
//! (EOF mid-frame) from a *malformed* frame (oversized length field or
//! checksum failure), because servers react differently: the first is a
//! normal disconnect, the second a dropped peer, the third a protocol
//! violation that warrants hanging up.

use std::io::{self, Read, Write};

use plus_store::codec::{crc32, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use plus_store::CodecError;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The peer closed the connection mid-frame.
    Torn,
    /// The frame violates the protocol: oversized declared length or a
    /// checksum mismatch. The right response is to hang up.
    Malformed(CodecError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Torn => write!(f, "connection closed mid-frame"),
            FrameError::Malformed(e) => write!(f, "malformed frame: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Malformed(e) => Some(e),
            FrameError::Torn => None,
        }
    }
}

/// Writes `payload` as one sealed frame, assembling header and body in
/// `scratch` so one `write_all` (one syscall on an unbuffered socket)
/// carries the whole frame.
///
/// A payload beyond `MAX_FRAME_LEN` is refused with `InvalidData`
/// *before* any byte is written: the peer would reject the frame as
/// malformed anyway (and beyond `u32::MAX` the length field would wrap
/// and desynchronize the stream), so the writer fails loudly instead.
pub fn write_frame(w: &mut impl Write, payload: &[u8], scratch: &mut Vec<u8>) -> io::Result<()> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame payload of {} bytes exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})",
                payload.len()
            ),
        ));
    }
    scratch.clear();
    scratch.reserve(FRAME_HEADER_LEN + payload.len());
    scratch.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    scratch.extend_from_slice(&crc32(payload).to_le_bytes());
    scratch.extend_from_slice(payload);
    w.write_all(scratch)
}

/// Reads one frame into `scratch`, returning its payload — or `Ok(None)`
/// on a clean close (EOF before the first header byte).
pub fn read_frame<'a>(
    r: &mut impl Read,
    scratch: &'a mut Vec<u8>,
) -> Result<Option<&'a [u8]>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // First byte by hand: a clean EOF here is a normal disconnect, not a
    // torn frame.
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Torn),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("len 4"));
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Malformed(CodecError::FrameTooLarge(len)));
    }
    let stored_crc = u32::from_le_bytes(header[4..8].try_into().expect("len 4"));
    scratch.clear();
    scratch.resize(len as usize, 0);
    if let Err(e) = r.read_exact(scratch) {
        return Err(match e.kind() {
            io::ErrorKind::UnexpectedEof => FrameError::Torn,
            _ => FrameError::Io(e),
        });
    }
    if crc32(scratch) != stored_crc {
        return Err(FrameError::Malformed(CodecError::ChecksumMismatch));
    }
    Ok(Some(scratch.as_slice()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use plus_store::codec::seal_frame;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        write_frame(&mut wire, b"hello", &mut scratch).unwrap();
        assert_eq!(wire, seal_frame(b"hello"), "same bytes as the codec");
        let mut cursor = Cursor::new(wire);
        let payload = read_frame(&mut cursor, &mut scratch).unwrap().unwrap();
        assert_eq!(payload, b"hello");
        assert!(read_frame(&mut cursor, &mut scratch).unwrap().is_none());
    }

    #[test]
    fn clean_close_vs_torn() {
        let sealed = seal_frame(b"abc");
        let mut scratch = Vec::new();
        // Empty stream: clean close.
        assert!(read_frame(&mut Cursor::new(vec![]), &mut scratch)
            .unwrap()
            .is_none());
        // Every proper prefix: torn.
        for cut in 1..sealed.len() {
            let result = read_frame(&mut Cursor::new(sealed[..cut].to_vec()), &mut scratch);
            assert!(matches!(result, Err(FrameError::Torn)), "cut {cut}");
        }
    }

    #[test]
    fn oversized_and_corrupt_are_malformed() {
        let mut scratch = Vec::new();
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        oversized.extend_from_slice(&[0; 4]);
        assert!(matches!(
            read_frame(&mut Cursor::new(oversized), &mut scratch),
            Err(FrameError::Malformed(CodecError::FrameTooLarge(_)))
        ));
        let mut corrupt = seal_frame(b"abc");
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        assert!(matches!(
            read_frame(&mut Cursor::new(corrupt), &mut scratch),
            Err(FrameError::Malformed(CodecError::ChecksumMismatch))
        ));
    }
}
