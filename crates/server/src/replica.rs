//! The read-replica runtime: tails a primary's write-ahead log over the
//! wire and replays it into a local durable store.
//!
//! # How a replica works
//!
//! A [`Replica`] owns a durable [`Store`] directory of its own and a
//! background **apply thread**. The thread dials the primary, performs
//! the ordinary Hello handshake, and sends
//! [`Subscribe`](plus_store::wire::Request::Subscribe) with the
//! replica's local clock. From then on the connection is a one-way
//! stream of [`WalChunk`]s:
//!
//! * **Frames** are the primary's sealed WAL frames, byte-identical to
//!   its segment contents. Each decodes through the same checksummed
//!   frame codec recovery uses and is applied through
//!   [`Store::apply_replicated`] — which logs it to the replica's *own*
//!   write-ahead log before applying, so the replica directory recovers
//!   by exactly the rules a primary's does.
//! * **Snapshots** arrive only when the replica must backfill: a cold
//!   start (clock 0), or a primary checkpoint that pruned the log past
//!   the replica's clock. [`Store::install_snapshot`] fast-forwards the
//!   store in place; the epoch stays monotone.
//! * **Heartbeats** (empty chunks) refresh the observed primary epoch,
//!   which is what makes [`Replica::lag`] meaningful while idle.
//!
//! The replica's [`AccountService`] serves the same query protocol as
//! the primary — bind it with [`Server::bind_replica`](crate::Server::bind_replica) —
//! at a **coherent but possibly lagging** epoch: every answer is a true
//! answer for some prefix of the primary's history, stamped with the
//! epoch it was computed at.
//!
//! # Failure model
//!
//! The apply thread reconnects with backoff on any transport failure and
//! resumes from the replica's local clock, so a primary restart (or a
//! replica restart — the local WAL recovers first) costs only the frames
//! appended while the link was down, never a full refetch. The feed
//! socket carries a read deadline of
//! [`ReplicaConfig::feed_read_timeout`]: the primary heartbeats several
//! times per second, so a silent link — a half-open TCP connection after
//! a primary power loss, a black-holing network — is detected within a
//! few heartbeat intervals and treated exactly like a disconnect instead
//! of parking the apply thread forever on a dead socket. A replica is
//! **read-only** by contract: the replication thread is the store's
//! single writer, and nothing else may append to it.
//!
//! # Failover
//!
//! Every chunk is stamped with the primary's **fencing term** (see the
//! [`wire`](plus_store::wire) docs). [`Replica::promote`] bumps the
//! local store's durable term and flips the monitor's role to
//! [`ReplicaRole::Primary`]: the apply thread exits, the fronting server
//! starts accepting writes, and any chunk still arriving from the old
//! primary is refused by the store with
//! [`StoreError::DeposedPrimary`] — the term is bumped *first*, so the
//! deposed primary cannot extend (and thereby fork) the promoted
//! history, not even with an in-flight frame.
//!
//! On a **warm start**, before local recovery runs, the replica performs
//! an **anti-entropy pass** against the primary: it fetches the
//! primary's per-segment digests
//! ([`LogDigests`](plus_store::wire::Request::LogDigests)), compares
//! them with its own, and truncates its local history from the first
//! divergent segment. This is how a deposed primary rejoins the cluster:
//! restarted with `--replicate-from` pointed at the new primary, it
//! discovers its unreplicated tail was never part of the promoted
//! history, discards it, and resumes as an ordinary replica instead of
//! serving a fork. The pass is best-effort — an unreachable primary
//! degrades to the plain warm start, and the per-frame fencing above
//! still guarantees no forked frame is ever *applied*.

use std::net::{Shutdown, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use plus_store::codec::{self, FrameDecode};
use plus_store::wal;
use plus_store::wire::{
    decode_response, encode_request, ReplicaRole, ReplicaStatus, Request, Response, WalChunk,
    PROTOCOL_VERSION,
};
use plus_store::{AccountService, DurabilityOptions, SegmentDigest, Store, StoreError};

use crate::error::{ClientError, ReplicaError};
use crate::frame::{read_frame, write_frame};

/// Tuning knobs for [`Replica::start_with`].
#[derive(Debug, Clone, Copy)]
pub struct ReplicaConfig {
    /// Durability options for the replica's own store directory.
    /// Defaults to the safe [`DurabilityOptions::default`] (fsync on);
    /// replicas that can afford to re-stream on power loss may turn
    /// fsync off for apply throughput.
    pub durability: DurabilityOptions,
    /// Dial attempts during a **cold start** (the replica has no local
    /// state and cannot serve anything until the primary answers), one
    /// [`reconnect_backoff`](Self::reconnect_backoff) apart.
    pub connect_attempts: usize,
    /// Sleep between reconnect attempts once running.
    pub reconnect_backoff: Duration,
    /// Read deadline on the feed socket. The primary heartbeats every
    /// 250ms, so the default (1s) tolerates a few lost beats; a socket
    /// silent for longer is treated as a dead link and reconnected, even
    /// if TCP still believes it is established (half-open peer).
    pub feed_read_timeout: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            durability: DurabilityOptions::default(),
            connect_attempts: 50,
            reconnect_backoff: Duration::from_millis(100),
            feed_read_timeout: Duration::from_secs(1),
        }
    }
}

/// Link state shared between a [`Replica`]'s apply thread and the
/// [`Server`](crate::Server) fronting it (which answers
/// `Request::ReplicaStatus` from it — and, after a promotion, gates
/// writes on the role recorded here).
#[derive(Debug, Default)]
pub struct ReplicationMonitor {
    primary_epoch: AtomicU64,
    connected: AtomicBool,
    /// The fencing term as last observed from the feed (or set by a
    /// promotion) — mirrored here so status answers need not lock the
    /// store.
    term: AtomicU64,
    /// Raised by [`Replica::promote`]; never lowered. The apply thread
    /// exits when it sees this, and `status` reports `Primary`.
    promoted: AtomicBool,
    /// The primary address this replica follows — the re-resolution hint
    /// write clients read out of `ReplicaStatus` after a failover.
    primary_addr: Mutex<String>,
    last_error: Mutex<Option<String>>,
    /// The live feed socket, cloned so `Replica::shutdown` can unblock a
    /// read parked on it.
    live: Mutex<Option<TcpStream>>,
}

impl ReplicationMonitor {
    /// The status this monitor describes, for a replica at `local_epoch`.
    pub fn status(&self, local_epoch: u64) -> ReplicaStatus {
        let promoted = self.promoted.load(Ordering::Relaxed);
        let primary_addr = self.primary_addr.lock().clone();
        ReplicaStatus {
            role: if promoted {
                ReplicaRole::Primary
            } else {
                ReplicaRole::Replica
            },
            local_epoch,
            // A promoted node *is* the primary: its own epoch is the
            // primary epoch, whatever the stale feed last reported.
            primary_epoch: if promoted {
                local_epoch
            } else {
                self.primary_epoch.load(Ordering::Relaxed)
            },
            term: self.term.load(Ordering::Relaxed),
            connected: if promoted {
                true
            } else {
                self.connected.load(Ordering::Relaxed)
            },
            last_error: if promoted {
                None
            } else {
                self.last_error.lock().clone()
            },
            // A promoted node no longer follows anyone; the address it
            // would report is the deposed primary's.
            primary_addr: if promoted || primary_addr.is_empty() {
                None
            } else {
                Some(primary_addr)
            },
        }
    }

    /// The role this node currently plays: `Replica` until a promotion
    /// flips it to `Primary`.
    pub fn role(&self) -> ReplicaRole {
        if self.promoted.load(Ordering::Relaxed) {
            ReplicaRole::Primary
        } else {
            ReplicaRole::Replica
        }
    }

    /// Whether [`Replica::promote`] has run.
    pub fn is_promoted(&self) -> bool {
        self.promoted.load(Ordering::Relaxed)
    }

    /// The fencing term as last observed (or set by a promotion).
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::Relaxed)
    }

    /// Promotes the node this monitor describes: bumps `store`'s durable
    /// fencing term, then flips the monitor to `Primary` and hangs up
    /// the feed. The store-first order is what fences the deposed
    /// primary — see [`Replica::promote`], which delegates here; a
    /// fronting server answering `Request::Promote` uses this directly.
    pub fn promote(&self, store: &Store) -> Result<u64, StoreError> {
        let term = store.promote_term()?;
        self.note_promoted(term);
        Ok(term)
    }

    fn record_error(&self, error: &ReplicaError) {
        *self.last_error.lock() = Some(error.to_string());
    }

    fn clear_error(&self) {
        *self.last_error.lock() = None;
    }

    fn set_live(&self, stream: Option<TcpStream>) {
        *self.live.lock() = stream;
    }

    fn hang_up_live(&self) {
        if let Some(stream) = self.live.lock().take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn note_promoted(&self, term: u64) {
        self.term.store(term, Ordering::Relaxed);
        self.promoted.store(true, Ordering::Relaxed);
        self.hang_up_live();
    }
}

/// A running read replica: a local durable store kept in sync with a
/// primary by WAL shipping, plus the [`AccountService`] serving it.
///
/// See the [module docs](self) for the replication model. Dropping the
/// replica (or calling [`shutdown`](Self::shutdown)) stops the apply
/// thread; the local directory remains and a later
/// [`Replica::start`] resumes from its recovered clock.
pub struct Replica {
    service: Arc<AccountService>,
    store: Arc<Store>,
    monitor: Arc<ReplicationMonitor>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("epoch", &self.epoch())
            .field("status", &self.status())
            .finish()
    }
}

impl Replica {
    /// Starts a replica of the primary at `primary_addr`, keeping its
    /// durable store in `dir` with default [`ReplicaConfig`].
    ///
    /// A fresh `dir` **cold-starts**: the call blocks until the primary
    /// ships its bootstrap snapshot (so the returned replica can serve
    /// immediately), failing after
    /// [`ReplicaConfig::connect_attempts`] dials. A `dir` holding a
    /// previous replica's store **warm-starts**: an anti-entropy pass
    /// truncates any history that diverged from the primary's (see the
    /// [module docs](self#failover)), local recovery runs, the call
    /// returns at the recovered epoch, and catch-up streams in the
    /// background from the local clock.
    pub fn start(
        primary_addr: impl Into<String>,
        dir: impl AsRef<Path>,
    ) -> Result<Replica, ReplicaError> {
        Self::start_with(primary_addr, dir, ReplicaConfig::default())
    }

    /// [`start`](Self::start) with explicit tuning.
    pub fn start_with(
        primary_addr: impl Into<String>,
        dir: impl AsRef<Path>,
        config: ReplicaConfig,
    ) -> Result<Replica, ReplicaError> {
        let primary_addr = primary_addr.into();
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ReplicaError::Store(StoreError::io_at(&dir, e)))?;
        let monitor = Arc::new(ReplicationMonitor::default());
        *monitor.primary_addr.lock() = primary_addr.clone();

        let mut has_local_state = !wal::list_snapshots(&dir)
            .map_err(ReplicaError::Store)?
            .is_empty();
        if has_local_state {
            // Anti-entropy before recovery: if this directory's history
            // diverged from the primary's (a deposed primary rejoining),
            // truncate the fork *before* the store recovers it into
            // servable state. Best-effort — an unreachable primary just
            // means the plain warm start below.
            match repair_divergence(&primary_addr, &dir, &config) {
                Ok(Repair::Clean) | Ok(Repair::Truncated) => {}
                Ok(Repair::Wiped) => has_local_state = false,
                Err(e) => monitor.record_error(&e),
            }
        }
        let (store, pending) = if has_local_state {
            // Warm start: the local WAL is the source of truth up to its
            // recovered clock; the primary only supplies what follows.
            let store = Store::open_with(&dir, config.durability).map_err(ReplicaError::Store)?;
            monitor
                .term
                .store(store.replication_term(), Ordering::Relaxed);
            (Arc::new(store), None)
        } else {
            // Cold start: nothing local — block until the primary ships
            // the bootstrap snapshot, so the caller gets a servable
            // replica or a clear error.
            let (store, conn, primary_epoch) = bootstrap(&primary_addr, &dir, &config, &monitor)?;
            // The bootstrap chunk already proved the link and told us
            // the primary's epoch; without this, status would read
            // connected-with-zero-lag off a stale (zero) primary epoch.
            monitor
                .primary_epoch
                .store(primary_epoch, Ordering::Relaxed);
            monitor
                .term
                .store(store.replication_term(), Ordering::Relaxed);
            monitor.connected.store(true, Ordering::Relaxed);
            (Arc::new(store), Some(conn))
        };
        let service = Arc::new(AccountService::new(store.clone()));
        let stop = Arc::new(AtomicBool::new(false));

        let thread = {
            let store = store.clone();
            let monitor = monitor.clone();
            let stop = stop.clone();
            let addr = primary_addr.clone();
            std::thread::Builder::new()
                .name("spgraph-replica".into())
                .spawn(move || run(addr, store, monitor, stop, pending, config))
                .expect("spawn replica apply thread")
        };

        Ok(Replica {
            service,
            store,
            monitor,
            stop,
            thread: Some(thread),
        })
    }

    /// The serving layer over the replica's store — bind it with
    /// [`Server::bind_replica`](crate::Server::bind_replica), or query
    /// it in-process. Read-only by contract: do not append through it.
    pub fn service(&self) -> &Arc<AccountService> {
        &self.service
    }

    /// The replica's local store. Owner-side introspection (state
    /// comparison, checkpointing the replica's own log); never mutate
    /// it — the apply thread is the single writer, until
    /// [`promote`](Self::promote) retires it.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The link monitor, shared with a fronting server.
    pub fn monitor(&self) -> Arc<ReplicationMonitor> {
        self.monitor.clone()
    }

    /// The replica's local epoch (its store clock).
    pub fn epoch(&self) -> u64 {
        self.store.version()
    }

    /// `primary_epoch - local_epoch` as last observed: how many
    /// mutations behind the primary this replica is. A stale lower
    /// bound while disconnected.
    pub fn lag(&self) -> u64 {
        self.status().lag()
    }

    /// The replica's full status.
    pub fn status(&self) -> ReplicaStatus {
        self.monitor.status(self.epoch())
    }

    /// Promotes this replica to primary, returning the new fencing term.
    ///
    /// Ordered for safety: the store's durable term is bumped *first*,
    /// so from the instant this can return, any frame still arriving
    /// from the deposed primary is refused with
    /// [`StoreError::DeposedPrimary`] — then the monitor's role flips
    /// (a fronting server starts accepting writes and feeding
    /// subscribers) and the feed socket is hung up so the apply thread
    /// exits. The store becomes an ordinary writable primary store; the
    /// deposed primary must rejoin *as a replica* — its next warm start
    /// against this node truncates its unreplicated tail.
    ///
    /// Idempotent in effect but not in term: promoting twice bumps the
    /// term twice, which is safe (terms only fence, never address).
    ///
    /// ```no_run
    /// use server::Replica;
    ///
    /// let replica = Replica::start("127.0.0.1:7655", "/var/lib/spgraph/replica")?;
    /// // ... the primary dies; the operator chooses this replica ...
    /// let term = replica.promote()?;
    /// assert!(term >= 1, "the fencing term is durably bumped");
    /// // The fronting server now accepts writes; repoint the fleet here.
    /// # Ok::<(), server::ReplicaError>(())
    /// ```
    pub fn promote(&self) -> Result<u64, ReplicaError> {
        self.monitor
            .promote(&self.store)
            .map_err(ReplicaError::Store)
    }

    /// Waits until the replica is connected with zero observed lag, or
    /// the deadline passes. Returns whether it caught up — `false`, not
    /// a hang, against a primary that stopped talking (the feed's read
    /// deadline flips `connected` off within
    /// [`ReplicaConfig::feed_read_timeout`]).
    pub fn wait_caught_up(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status();
            if status.connected && status.lag() == 0 && status.primary_epoch >= self.epoch() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops the apply thread and disconnects. Equivalent to dropping
    /// the replica, but explicit.
    pub fn shutdown(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.monitor.hang_up_live();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        if !self.monitor.is_promoted() {
            self.monitor.connected.store(false, Ordering::Relaxed);
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

/// A subscribed replication connection: Hello handshake done, Subscribe
/// sent, chunks ready to read. Shared with the scatter-gather runtime
/// ([`crate::scatter`]), whose per-shard feeds are ordinary replication
/// subscriptions.
pub(crate) struct FeedConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
}

impl FeedConn {
    /// Dials and handshakes, leaving the connection in request/response
    /// mode (no subscription yet). The read deadline applies from the
    /// first byte: a peer that accepts and goes silent fails the
    /// handshake instead of hanging it.
    pub(crate) fn connect(addr: &str, read_timeout: Duration) -> Result<FeedConn, ReplicaError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        // The deadline that detects a half-open primary: a read that
        // sees no bytes for this long fails, and the caller treats that
        // exactly like a hangup (reconnect with backoff). Without it the
        // apply thread parks forever on a dead socket while status keeps
        // reporting connected.
        stream
            .set_read_timeout(Some(read_timeout.max(Duration::from_millis(1))))
            .map_err(ClientError::Io)?;
        let mut conn = FeedConn {
            stream,
            inbuf: Vec::with_capacity(4096),
        };
        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
            consumer: "replica".to_string(),
            claims: Vec::new(),
        };
        match conn.call(&hello)? {
            Response::Hello(_) => {}
            Response::Error(e) => return Err(ReplicaError::Client(ClientError::Remote(e))),
            _ => return Err(ReplicaError::protocol("non-Hello answer to Hello")),
        }
        Ok(conn)
    }

    /// Dials, handshakes, and subscribes from `from_clock`.
    pub(crate) fn open(
        addr: &str,
        from_clock: u64,
        read_timeout: Duration,
    ) -> Result<FeedConn, ReplicaError> {
        let mut conn = Self::connect(addr, read_timeout)?;
        conn.subscribe(from_clock)?;
        Ok(conn)
    }

    /// Converts a handshaken connection into a one-way subscription
    /// stream from `from_clock`. After this, only
    /// [`next_chunk`](Self::next_chunk) is valid.
    pub(crate) fn subscribe(&mut self, from_clock: u64) -> Result<(), ReplicaError> {
        let mut outbuf = Vec::with_capacity(64);
        let payload = encode_request(&Request::Subscribe { from_clock })
            .map_err(|e| ReplicaError::Client(ClientError::Unencodable(e)))?;
        write_frame(&mut self.stream, &payload, &mut outbuf).map_err(ClientError::Io)?;
        Ok(())
    }

    /// Asks the peer for its replication status — role, fencing term,
    /// and the primary-address breadcrumb a replica leaves. Valid only
    /// before [`subscribe`](Self::subscribe); the scatter runtime uses
    /// it to re-resolve a promoted shard primary.
    pub(crate) fn role_status(&mut self) -> Result<ReplicaStatus, ReplicaError> {
        match self.call(&Request::ReplicaStatus)? {
            Response::ReplicaStatus(status) => Ok(status),
            Response::Error(e) => Err(ReplicaError::Client(ClientError::Remote(e))),
            _ => Err(ReplicaError::protocol(
                "non-ReplicaStatus answer to ReplicaStatus",
            )),
        }
    }

    /// One strict request/response round trip (handshake and
    /// anti-entropy only; after Subscribe the stream is one-way).
    fn call(&mut self, request: &Request) -> Result<Response, ReplicaError> {
        let mut outbuf = Vec::with_capacity(256);
        let payload = encode_request(request)
            .map_err(|e| ReplicaError::Client(ClientError::Unencodable(e)))?;
        write_frame(&mut self.stream, &payload, &mut outbuf).map_err(ClientError::Io)?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, ReplicaError> {
        match read_frame(&mut self.stream, &mut self.inbuf) {
            Ok(Some(payload)) => decode_response(payload)
                .map_err(|e| ReplicaError::Client(ClientError::Malformed(e))),
            Ok(None) => Err(ReplicaError::Client(ClientError::Disconnected)),
            Err(e) => Err(ReplicaError::Client(e.into())),
        }
    }

    /// The underlying socket (so a shutdown path can unblock a parked
    /// read by hanging the clone up).
    pub(crate) fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.stream.try_clone()
    }

    /// The next chunk of the subscription stream. A typed error frame
    /// (the primary refusing or failing the feed) is terminal, and so is
    /// a read-deadline expiry — the primary heartbeats far more often
    /// than the deadline, so silence *is* a dead link.
    pub(crate) fn next_chunk(&mut self) -> Result<WalChunk, ReplicaError> {
        match self.read_response()? {
            Response::WalChunk(chunk) => Ok(chunk),
            Response::Error(e) => Err(ReplicaError::Client(ClientError::Remote(e))),
            _ => Err(ReplicaError::protocol(
                "non-WalChunk frame on a subscription",
            )),
        }
    }
}

/// What the warm-start anti-entropy pass did to the local directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Repair {
    /// Local history is consistent with the primary's — nothing to do.
    Clean,
    /// A divergent suffix was truncated; warm start resumes from what
    /// remains, and the feed re-ships the rest.
    Truncated,
    /// The divergence predates every local snapshot, so nothing local
    /// could anchor recovery — the directory was emptied and the caller
    /// must cold-start from the primary's bootstrap snapshot.
    Wiped,
}

/// Fetches the primary's fencing term and per-segment digests.
fn fetch_log_digests(
    addr: &str,
    read_timeout: Duration,
) -> Result<(u64, Vec<SegmentDigest>), ReplicaError> {
    let mut conn = FeedConn::connect(addr, read_timeout)?;
    match conn.call(&Request::LogDigests)? {
        Response::LogDigests { term, segments } => Ok((term, segments)),
        Response::Error(e) => Err(ReplicaError::Client(ClientError::Remote(e))),
        _ => Err(ReplicaError::protocol(
            "non-LogDigests answer to LogDigests",
        )),
    }
}

/// The warm-start anti-entropy pass: compare local segment digests with
/// the primary's and discard any divergent suffix. See the [module
/// docs](self#failover).
fn repair_divergence(
    addr: &str,
    dir: &Path,
    config: &ReplicaConfig,
) -> Result<Repair, ReplicaError> {
    let (primary_term, primary) = fetch_log_digests(addr, config.feed_read_timeout)?;
    let local = wal::segment_digests(dir).map_err(ReplicaError::Store)?;
    let local_term = wal::read_term(dir).map_err(ReplicaError::Store)?;
    // A primary at a higher term means a promotion this directory may
    // have missed — its tail may be a fork, so comparison is strict:
    // any segment that is not byte-identical is suspect. At an equal
    // term no fork is possible (single writer), so a shorter local
    // segment is just ordinary lag and survives.
    let strict = primary_term > local_term;
    let Some(cutoff) = divergence_point(&primary, &local, strict) else {
        return Ok(Repair::Clean);
    };
    let snapshots = wal::list_snapshots(dir).map_err(ReplicaError::Store)?;
    if snapshots.iter().any(|(clock, _)| *clock <= cutoff) {
        wal::truncate_history_from(dir, cutoff).map_err(ReplicaError::Store)?;
        Ok(Repair::Truncated)
    } else {
        // Every local snapshot postdates the divergence: recovery has
        // nothing trustworthy to start from. Empty the directory (term
        // file included — the bootstrap chunk re-establishes it) and
        // cold-start.
        for (_, path) in snapshots {
            std::fs::remove_file(&path)
                .map_err(|e| ReplicaError::Store(StoreError::io_at(&path, e)))?;
        }
        for (_, path) in wal::list_segments(dir).map_err(ReplicaError::Store)? {
            std::fs::remove_file(&path)
                .map_err(|e| ReplicaError::Store(StoreError::io_at(&path, e)))?;
        }
        let term_file = wal::term_path(dir);
        if let Err(e) = std::fs::remove_file(&term_file) {
            if e.kind() != std::io::ErrorKind::NotFound {
                return Err(ReplicaError::Store(StoreError::io_at(&term_file, e)));
            }
        }
        Ok(Repair::Wiped)
    }
}

/// The first local segment start clock from which history must be
/// discarded, or `None` when local history is consistent with the
/// primary's.
///
/// Segments are compared by `(start_clock, bytes, crc)` identity. Local
/// segments older than the primary's oldest digest were pruned by a
/// primary checkpoint and cannot be verified — they are assumed good
/// (the fencing term, not this pass, is what guarantees forked *frames*
/// never apply). In `strict` mode (the primary's term is ahead) any
/// non-identical segment diverges; otherwise a local segment that is a
/// shorter prefix of the primary's is ordinary replication lag.
fn divergence_point(
    primary: &[SegmentDigest],
    local: &[SegmentDigest],
    strict: bool,
) -> Option<u64> {
    let oldest_primary = primary.first().map(|p| p.start_clock);
    for l in local {
        match primary.iter().find(|p| p.start_clock == l.start_clock) {
            Some(p) if p == l => continue,
            Some(p) => {
                if strict || l.bytes >= p.bytes {
                    return Some(l.start_clock);
                }
                // Equal term, shorter file: a clean prefix of the
                // segment the primary is still appending to.
            }
            None => match oldest_primary {
                // Pruned on the primary — unverifiable, assume good.
                Some(oldest) if l.start_clock < oldest => continue,
                None => continue,
                // A start clock the primary never sealed a segment at:
                // an unreplicated local tail (or misaligned segment
                // boundaries) — discard from here.
                Some(_) => return Some(l.start_clock),
            },
        }
    }
    None
}

/// Cold start: dial until the primary ships the bootstrap snapshot,
/// install it into `dir`, and hand back the opened store plus the live
/// connection (already mid-stream) for the apply thread to continue on.
fn bootstrap(
    addr: &str,
    dir: &Path,
    config: &ReplicaConfig,
    monitor: &ReplicationMonitor,
) -> Result<(Store, FeedConn, u64), ReplicaError> {
    let mut last: Option<ReplicaError> = None;
    let attempts = config.connect_attempts.max(1);
    for attempt in 0..attempts {
        match try_bootstrap(addr, dir, config) {
            Ok(done) => return Ok(done),
            Err(e) => {
                monitor.record_error(&e);
                last = Some(e);
                // Backoff *between* attempts only: the final failure
                // returns immediately instead of sleeping into an error.
                if attempt + 1 < attempts {
                    std::thread::sleep(config.reconnect_backoff);
                }
            }
        }
    }
    Err(last.unwrap_or_else(|| ReplicaError::protocol("no bootstrap attempt ran")))
}

fn try_bootstrap(
    addr: &str,
    dir: &Path,
    config: &ReplicaConfig,
) -> Result<(Store, FeedConn, u64), ReplicaError> {
    let mut conn = FeedConn::open(addr, 0, config.feed_read_timeout)?;
    // The first chunk of a from-zero subscription always carries the
    // bootstrap snapshot (frames cannot rebuild the lattice).
    let chunk = conn.next_chunk()?;
    let Some(snapshot) = &chunk.snapshot else {
        return Err(ReplicaError::protocol(
            "primary opened a cold subscription without a snapshot",
        ));
    };
    let clock = codec::decode(snapshot)
        .map_err(|e| ReplicaError::Protocol(format!("bootstrap snapshot does not decode: {e}")))?
        .clock;
    if clock != chunk.start_clock {
        return Err(ReplicaError::Protocol(format!(
            "bootstrap snapshot clock {clock} disagrees with chunk start {}",
            chunk.start_clock
        )));
    }
    wal::write_atomic(&wal::snapshot_path(dir, clock), snapshot).map_err(ReplicaError::Store)?;
    let store = Store::open_with(dir, config.durability).map_err(ReplicaError::Store)?;
    // Adopt (and durably record) the primary's fencing term before the
    // first frame applies.
    store
        .observe_replication_term(chunk.term)
        .map_err(ReplicaError::Store)?;
    apply_frames(&store, chunk.start_clock, &chunk.frames, chunk.term)?;
    Ok((store, conn, chunk.primary_epoch))
}

/// Sleeps `total` in small slices so a raised stop flag (or a
/// promotion) interrupts it promptly. Returns `true` when interrupted.
fn interruptible_sleep(stop: &AtomicBool, monitor: &ReplicationMonitor, total: Duration) -> bool {
    let deadline = Instant::now() + total;
    loop {
        if stop.load(Ordering::SeqCst) || monitor.is_promoted() {
            return true;
        }
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return false;
        }
        std::thread::sleep(left.min(Duration::from_millis(10)));
    }
}

/// The apply thread: stream chunks, reconnect with backoff, until
/// stopped or promoted.
fn run(
    addr: String,
    store: Arc<Store>,
    monitor: Arc<ReplicationMonitor>,
    stop: Arc<AtomicBool>,
    mut pending: Option<FeedConn>,
    config: ReplicaConfig,
) {
    while !stop.load(Ordering::SeqCst) && !monitor.is_promoted() {
        let conn = match pending.take() {
            Some(conn) => conn,
            None => match FeedConn::open(&addr, store.version(), config.feed_read_timeout) {
                Ok(conn) => conn,
                Err(e) => {
                    monitor.record_error(&e);
                    monitor.connected.store(false, Ordering::Relaxed);
                    interruptible_sleep(&stop, &monitor, config.reconnect_backoff);
                    continue;
                }
            },
        };
        // Register the live socket so shutdown can unblock the read.
        match conn.stream.try_clone() {
            Ok(clone) => monitor.set_live(Some(clone)),
            Err(_) => monitor.set_live(None),
        }
        let mut conn = conn;
        loop {
            if stop.load(Ordering::SeqCst) || monitor.is_promoted() {
                monitor.set_live(None);
                return;
            }
            let chunk = match conn.next_chunk() {
                Ok(chunk) => chunk,
                Err(e) => {
                    monitor.record_error(&e);
                    break;
                }
            };
            if let Err(e) = apply_chunk(&store, chunk, &monitor) {
                monitor.record_error(&e);
                break;
            }
            // Connected only once a chunk lands: a reconnect must not
            // report connected-with-zero-lag off a primary epoch that
            // predates the disconnect (the first chunk refreshes it).
            monitor.connected.store(true, Ordering::Relaxed);
            monitor.clear_error();
        }
        monitor.connected.store(false, Ordering::Relaxed);
        monitor.set_live(None);
        interruptible_sleep(&stop, &monitor, config.reconnect_backoff);
    }
}

/// Applies one chunk: fencing check, optional snapshot fast-forward,
/// then frames.
fn apply_chunk(
    store: &Store,
    chunk: WalChunk,
    monitor: &ReplicationMonitor,
) -> Result<(), ReplicaError> {
    // Fence before anything touches the store: a chunk from a deposed
    // primary must not even install its snapshot. (Every frame is
    // re-checked inside apply_replicated, so a promotion racing this
    // window still cannot let a forked frame in.)
    store
        .observe_replication_term(chunk.term)
        .map_err(ReplicaError::Store)?;
    if let Some(snapshot) = &chunk.snapshot {
        // install_snapshot no-ops when the local clock already covers
        // it, so an overlapping backfill is harmless.
        store
            .install_snapshot(snapshot)
            .map_err(ReplicaError::Store)?;
    }
    apply_frames(store, chunk.start_clock, &chunk.frames, chunk.term)?;
    monitor.term.store(chunk.term, Ordering::Relaxed);
    monitor
        .primary_epoch
        .store(chunk.primary_epoch, Ordering::Relaxed);
    Ok(())
}

/// Replays sealed frames (clock-contiguous from `start_clock`, stamped
/// with the feeder's fencing `term`) into the store, skipping any
/// overlap below the local clock.
fn apply_frames(
    store: &Store,
    start_clock: u64,
    frames: &[u8],
    term: u64,
) -> Result<(), ReplicaError> {
    let mut clock = start_clock;
    let mut pos = 0;
    while pos < frames.len() {
        match codec::decode_frame(&frames[pos..]) {
            FrameDecode::Complete { record, consumed } => {
                let local = store.version();
                if clock > local {
                    return Err(ReplicaError::Store(StoreError::ReplicationGap {
                        expected: local,
                        found: clock,
                    }));
                }
                if clock == local {
                    store
                        .apply_replicated(record, term)
                        .map_err(ReplicaError::Store)?;
                }
                clock += 1;
                pos += consumed;
            }
            // The outer wire frame's checksum already passed, so damage
            // inside the chunk means a buggy or hostile feeder — drop
            // the connection rather than guessing.
            FrameDecode::Torn => {
                return Err(ReplicaError::protocol("chunk ends mid-frame"));
            }
            FrameDecode::Corrupt(e) => {
                return Err(ReplicaError::Protocol(format!(
                    "corrupt frame in chunk: {e}"
                )));
            }
        }
    }
    Ok(())
}

/// `true` when `dir` already holds a replica (or any durable) store —
/// i.e. whether [`Replica::start`] would warm-start from it.
pub fn dir_has_store(dir: impl AsRef<Path>) -> bool {
    matches!(wal::list_snapshots(dir.as_ref()), Ok(snaps) if !snaps.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(start_clock: u64, bytes: u64, crc: u32) -> SegmentDigest {
        SegmentDigest {
            start_clock,
            bytes,
            crc,
        }
    }

    #[test]
    fn identical_histories_are_clean() {
        let p = vec![seg(0, 100, 1), seg(8, 200, 2)];
        assert_eq!(divergence_point(&p, &p, false), None);
        assert_eq!(divergence_point(&p, &p, true), None);
    }

    #[test]
    fn lagging_tail_segment_is_clean_at_equal_term() {
        let p = vec![seg(0, 100, 1), seg(8, 200, 2)];
        let l = vec![seg(0, 100, 1), seg(8, 120, 9)];
        assert_eq!(divergence_point(&p, &l, false), None);
        // ...but suspect when the primary's term is ahead.
        assert_eq!(divergence_point(&p, &l, true), Some(8));
    }

    #[test]
    fn longer_local_segment_diverges() {
        // A local segment longer than the primary's own: frames the
        // primary does not have, forked at any term.
        let p = vec![seg(0, 100, 1), seg(8, 200, 2)];
        let l = vec![seg(0, 100, 1), seg(8, 260, 9)];
        assert_eq!(divergence_point(&p, &l, false), Some(8));
    }

    #[test]
    fn equal_length_crc_mismatch_diverges() {
        let p = vec![seg(0, 100, 1)];
        let l = vec![seg(0, 100, 7)];
        assert_eq!(divergence_point(&p, &l, false), Some(0));
    }

    #[test]
    fn unreplicated_tail_segments_diverge() {
        let p = vec![seg(0, 100, 1)];
        let l = vec![seg(0, 100, 1), seg(8, 40, 5)];
        assert_eq!(divergence_point(&p, &l, false), Some(8));
    }

    #[test]
    fn pruned_history_is_assumed_good() {
        // The primary checkpointed past clock 16: older local segments
        // cannot be verified and are kept.
        let p = vec![seg(16, 300, 3)];
        let l = vec![seg(0, 100, 1), seg(8, 200, 2), seg(16, 300, 3)];
        assert_eq!(divergence_point(&p, &l, false), None);
        let p_empty: Vec<SegmentDigest> = Vec::new();
        assert_eq!(divergence_point(&p_empty, &l, false), None);
    }
}
