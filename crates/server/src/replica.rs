//! The read-replica runtime: tails a primary's write-ahead log over the
//! wire and replays it into a local durable store.
//!
//! # How a replica works
//!
//! A [`Replica`] owns a durable [`Store`] directory of its own and a
//! background **apply thread**. The thread dials the primary, performs
//! the ordinary Hello handshake, and sends
//! [`Subscribe`](plus_store::wire::Request::Subscribe) with the
//! replica's local clock. From then on the connection is a one-way
//! stream of [`WalChunk`]s:
//!
//! * **Frames** are the primary's sealed WAL frames, byte-identical to
//!   its segment contents. Each decodes through the same checksummed
//!   frame codec recovery uses and is applied through
//!   [`Store::apply_replicated`] — which logs it to the replica's *own*
//!   write-ahead log before applying, so the replica directory recovers
//!   by exactly the rules a primary's does.
//! * **Snapshots** arrive only when the replica must backfill: a cold
//!   start (clock 0), or a primary checkpoint that pruned the log past
//!   the replica's clock. [`Store::install_snapshot`] fast-forwards the
//!   store in place; the epoch stays monotone.
//! * **Heartbeats** (empty chunks) refresh the observed primary epoch,
//!   which is what makes [`Replica::lag`] meaningful while idle.
//!
//! The replica's [`AccountService`] serves the same query protocol as
//! the primary — bind it with [`Server::bind_replica`](crate::Server::bind_replica) —
//! at a **coherent but possibly lagging** epoch: every answer is a true
//! answer for some prefix of the primary's history, stamped with the
//! epoch it was computed at.
//!
//! # Failure model
//!
//! The apply thread reconnects with backoff on any transport failure and
//! resumes from the replica's local clock, so a primary restart (or a
//! replica restart — the local WAL recovers first) costs only the frames
//! appended while the link was down, never a full refetch. A replica is
//! **read-only** by contract: the replication thread is the store's
//! single writer, and nothing else may append to it.

use std::net::{Shutdown, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use plus_store::codec::{self, FrameDecode};
use plus_store::wire::{
    decode_response, encode_request, ReplicaRole, ReplicaStatus, Request, Response, WalChunk,
    PROTOCOL_VERSION,
};
use plus_store::{AccountService, DurabilityOptions, Store, StoreError};

use crate::error::{ClientError, ReplicaError};
use crate::frame::{read_frame, write_frame};

/// Tuning knobs for [`Replica::start_with`].
#[derive(Debug, Clone, Copy)]
pub struct ReplicaConfig {
    /// Durability options for the replica's own store directory.
    /// Defaults to the safe [`DurabilityOptions::default`] (fsync on);
    /// replicas that can afford to re-stream on power loss may turn
    /// fsync off for apply throughput.
    pub durability: DurabilityOptions,
    /// Dial attempts during a **cold start** (the replica has no local
    /// state and cannot serve anything until the primary answers), one
    /// [`reconnect_backoff`](Self::reconnect_backoff) apart.
    pub connect_attempts: usize,
    /// Sleep between reconnect attempts once running.
    pub reconnect_backoff: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            durability: DurabilityOptions::default(),
            connect_attempts: 50,
            reconnect_backoff: Duration::from_millis(100),
        }
    }
}

/// Link state shared between a [`Replica`]'s apply thread and the
/// [`Server`](crate::Server) fronting it (which answers
/// `Request::ReplicaStatus` from it).
#[derive(Debug, Default)]
pub struct ReplicationMonitor {
    primary_epoch: AtomicU64,
    connected: AtomicBool,
    last_error: Mutex<Option<String>>,
    /// The live feed socket, cloned so `Replica::shutdown` can unblock a
    /// read parked on it.
    live: Mutex<Option<TcpStream>>,
}

impl ReplicationMonitor {
    /// The status this monitor describes, for a replica at `local_epoch`.
    pub fn status(&self, local_epoch: u64) -> ReplicaStatus {
        ReplicaStatus {
            role: ReplicaRole::Replica,
            local_epoch,
            primary_epoch: self.primary_epoch.load(Ordering::Relaxed),
            connected: self.connected.load(Ordering::Relaxed),
            last_error: self.last_error.lock().clone(),
        }
    }

    fn record_error(&self, error: &ReplicaError) {
        *self.last_error.lock() = Some(error.to_string());
    }

    fn clear_error(&self) {
        *self.last_error.lock() = None;
    }

    fn set_live(&self, stream: Option<TcpStream>) {
        *self.live.lock() = stream;
    }

    fn hang_up_live(&self) {
        if let Some(stream) = self.live.lock().take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A running read replica: a local durable store kept in sync with a
/// primary by WAL shipping, plus the [`AccountService`] serving it.
///
/// See the [module docs](self) for the replication model. Dropping the
/// replica (or calling [`shutdown`](Self::shutdown)) stops the apply
/// thread; the local directory remains and a later
/// [`Replica::start`] resumes from its recovered clock.
pub struct Replica {
    service: Arc<AccountService>,
    store: Arc<Store>,
    monitor: Arc<ReplicationMonitor>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("epoch", &self.epoch())
            .field("status", &self.status())
            .finish()
    }
}

impl Replica {
    /// Starts a replica of the primary at `primary_addr`, keeping its
    /// durable store in `dir` with default [`ReplicaConfig`].
    ///
    /// A fresh `dir` **cold-starts**: the call blocks until the primary
    /// ships its bootstrap snapshot (so the returned replica can serve
    /// immediately), failing after
    /// [`ReplicaConfig::connect_attempts`] dials. A `dir` holding a
    /// previous replica's store **warm-starts**: local recovery runs
    /// first, the call returns at the recovered epoch, and catch-up
    /// streams in the background from the local clock.
    pub fn start(
        primary_addr: impl Into<String>,
        dir: impl AsRef<Path>,
    ) -> Result<Replica, ReplicaError> {
        Self::start_with(primary_addr, dir, ReplicaConfig::default())
    }

    /// [`start`](Self::start) with explicit tuning.
    pub fn start_with(
        primary_addr: impl Into<String>,
        dir: impl AsRef<Path>,
        config: ReplicaConfig,
    ) -> Result<Replica, ReplicaError> {
        let primary_addr = primary_addr.into();
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ReplicaError::Store(StoreError::io_at(&dir, e)))?;
        let monitor = Arc::new(ReplicationMonitor::default());

        let has_local_state = !plus_store::wal::list_snapshots(&dir)
            .map_err(ReplicaError::Store)?
            .is_empty();
        let (store, pending) = if has_local_state {
            // Warm start: the local WAL is the source of truth up to its
            // recovered clock; the primary only supplies what follows.
            let store = Store::open_with(&dir, config.durability).map_err(ReplicaError::Store)?;
            (Arc::new(store), None)
        } else {
            // Cold start: nothing local — block until the primary ships
            // the bootstrap snapshot, so the caller gets a servable
            // replica or a clear error.
            let (store, conn, primary_epoch) = bootstrap(&primary_addr, &dir, &config, &monitor)?;
            // The bootstrap chunk already proved the link and told us
            // the primary's epoch; without this, status would read
            // connected-with-zero-lag off a stale (zero) primary epoch.
            monitor
                .primary_epoch
                .store(primary_epoch, Ordering::Relaxed);
            monitor.connected.store(true, Ordering::Relaxed);
            (Arc::new(store), Some(conn))
        };
        let service = Arc::new(AccountService::new(store.clone()));
        let stop = Arc::new(AtomicBool::new(false));

        let thread = {
            let store = store.clone();
            let monitor = monitor.clone();
            let stop = stop.clone();
            let addr = primary_addr.clone();
            std::thread::Builder::new()
                .name("spgraph-replica".into())
                .spawn(move || run(addr, store, monitor, stop, pending, config))
                .expect("spawn replica apply thread")
        };

        Ok(Replica {
            service,
            store,
            monitor,
            stop,
            thread: Some(thread),
        })
    }

    /// The serving layer over the replica's store — bind it with
    /// [`Server::bind_replica`](crate::Server::bind_replica), or query
    /// it in-process. Read-only by contract: do not append through it.
    pub fn service(&self) -> &Arc<AccountService> {
        &self.service
    }

    /// The replica's local store. Owner-side introspection (state
    /// comparison, checkpointing the replica's own log); never mutate
    /// it — the apply thread is the single writer.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The link monitor, shared with a fronting server.
    pub fn monitor(&self) -> Arc<ReplicationMonitor> {
        self.monitor.clone()
    }

    /// The replica's local epoch (its store clock).
    pub fn epoch(&self) -> u64 {
        self.store.version()
    }

    /// `primary_epoch - local_epoch` as last observed: how many
    /// mutations behind the primary this replica is. A stale lower
    /// bound while disconnected.
    pub fn lag(&self) -> u64 {
        self.status().lag()
    }

    /// The replica's full status.
    pub fn status(&self) -> ReplicaStatus {
        self.monitor.status(self.epoch())
    }

    /// Waits until the replica is connected with zero observed lag, or
    /// the deadline passes. Returns whether it caught up.
    pub fn wait_caught_up(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status();
            if status.connected && status.lag() == 0 && status.primary_epoch >= self.epoch() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops the apply thread and disconnects. Equivalent to dropping
    /// the replica, but explicit.
    pub fn shutdown(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.monitor.hang_up_live();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        self.monitor.connected.store(false, Ordering::Relaxed);
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

/// A subscribed replication connection: Hello handshake done, Subscribe
/// sent, chunks ready to read.
struct FeedConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
}

impl FeedConn {
    /// Dials, handshakes, and subscribes from `from_clock`.
    fn open(addr: &str, from_clock: u64) -> Result<FeedConn, ReplicaError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        let mut conn = FeedConn {
            stream,
            inbuf: Vec::with_capacity(4096),
        };
        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
            consumer: "replica".to_string(),
            claims: Vec::new(),
        };
        match conn.call(&hello)? {
            Response::Hello(_) => {}
            Response::Error(e) => return Err(ReplicaError::Client(ClientError::Remote(e))),
            _ => return Err(ReplicaError::protocol("non-Hello answer to Hello")),
        }
        let mut outbuf = Vec::with_capacity(64);
        let payload = encode_request(&Request::Subscribe { from_clock })
            .map_err(|e| ReplicaError::Client(ClientError::Unencodable(e)))?;
        write_frame(&mut conn.stream, &payload, &mut outbuf).map_err(ClientError::Io)?;
        Ok(conn)
    }

    /// One strict request/response round trip (handshake only; after
    /// Subscribe the stream is one-way).
    fn call(&mut self, request: &Request) -> Result<Response, ReplicaError> {
        let mut outbuf = Vec::with_capacity(256);
        let payload = encode_request(request)
            .map_err(|e| ReplicaError::Client(ClientError::Unencodable(e)))?;
        write_frame(&mut self.stream, &payload, &mut outbuf).map_err(ClientError::Io)?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, ReplicaError> {
        match read_frame(&mut self.stream, &mut self.inbuf) {
            Ok(Some(payload)) => decode_response(payload)
                .map_err(|e| ReplicaError::Client(ClientError::Malformed(e))),
            Ok(None) => Err(ReplicaError::Client(ClientError::Disconnected)),
            Err(e) => Err(ReplicaError::Client(e.into())),
        }
    }

    /// The next chunk of the subscription stream. A typed error frame
    /// (the primary refusing or failing the feed) is terminal.
    fn next_chunk(&mut self) -> Result<WalChunk, ReplicaError> {
        match self.read_response()? {
            Response::WalChunk(chunk) => Ok(chunk),
            Response::Error(e) => Err(ReplicaError::Client(ClientError::Remote(e))),
            _ => Err(ReplicaError::protocol(
                "non-WalChunk frame on a subscription",
            )),
        }
    }
}

/// Cold start: dial until the primary ships the bootstrap snapshot,
/// install it into `dir`, and hand back the opened store plus the live
/// connection (already mid-stream) for the apply thread to continue on.
fn bootstrap(
    addr: &str,
    dir: &Path,
    config: &ReplicaConfig,
    monitor: &ReplicationMonitor,
) -> Result<(Store, FeedConn, u64), ReplicaError> {
    let mut last: Option<ReplicaError> = None;
    for _ in 0..config.connect_attempts.max(1) {
        match try_bootstrap(addr, dir, config) {
            Ok(done) => return Ok(done),
            Err(e) => {
                monitor.record_error(&e);
                last = Some(e);
                std::thread::sleep(config.reconnect_backoff);
            }
        }
    }
    Err(last.unwrap_or_else(|| ReplicaError::protocol("no bootstrap attempt ran")))
}

fn try_bootstrap(
    addr: &str,
    dir: &Path,
    config: &ReplicaConfig,
) -> Result<(Store, FeedConn, u64), ReplicaError> {
    let mut conn = FeedConn::open(addr, 0)?;
    // The first chunk of a from-zero subscription always carries the
    // bootstrap snapshot (frames cannot rebuild the lattice).
    let chunk = conn.next_chunk()?;
    let Some(snapshot) = chunk.snapshot else {
        return Err(ReplicaError::protocol(
            "primary opened a cold subscription without a snapshot",
        ));
    };
    let clock = codec::decode(&snapshot)
        .map_err(|e| ReplicaError::Protocol(format!("bootstrap snapshot does not decode: {e}")))?
        .clock;
    if clock != chunk.start_clock {
        return Err(ReplicaError::Protocol(format!(
            "bootstrap snapshot clock {clock} disagrees with chunk start {}",
            chunk.start_clock
        )));
    }
    plus_store::wal::write_atomic(&plus_store::wal::snapshot_path(dir, clock), &snapshot)
        .map_err(ReplicaError::Store)?;
    let store = Store::open_with(dir, config.durability).map_err(ReplicaError::Store)?;
    apply_frames(&store, chunk.start_clock, &chunk.frames)?;
    Ok((store, conn, chunk.primary_epoch))
}

/// The apply thread: stream chunks, reconnect with backoff, forever.
fn run(
    addr: String,
    store: Arc<Store>,
    monitor: Arc<ReplicationMonitor>,
    stop: Arc<AtomicBool>,
    mut pending: Option<FeedConn>,
    config: ReplicaConfig,
) {
    while !stop.load(Ordering::SeqCst) {
        let conn = match pending.take() {
            Some(conn) => conn,
            None => match FeedConn::open(&addr, store.version()) {
                Ok(conn) => conn,
                Err(e) => {
                    monitor.record_error(&e);
                    monitor.connected.store(false, Ordering::Relaxed);
                    std::thread::sleep(config.reconnect_backoff);
                    continue;
                }
            },
        };
        // Register the live socket so shutdown can unblock the read.
        match conn.stream.try_clone() {
            Ok(clone) => monitor.set_live(Some(clone)),
            Err(_) => monitor.set_live(None),
        }
        let mut conn = conn;
        loop {
            if stop.load(Ordering::SeqCst) {
                monitor.set_live(None);
                return;
            }
            let chunk = match conn.next_chunk() {
                Ok(chunk) => chunk,
                Err(e) => {
                    monitor.record_error(&e);
                    break;
                }
            };
            if let Err(e) = apply_chunk(&store, chunk, &monitor) {
                monitor.record_error(&e);
                break;
            }
            // Connected only once a chunk lands: a reconnect must not
            // report connected-with-zero-lag off a primary epoch that
            // predates the disconnect (the first chunk refreshes it).
            monitor.connected.store(true, Ordering::Relaxed);
            monitor.clear_error();
        }
        monitor.connected.store(false, Ordering::Relaxed);
        monitor.set_live(None);
        std::thread::sleep(config.reconnect_backoff);
    }
}

/// Applies one chunk: optional snapshot fast-forward, then frames.
fn apply_chunk(
    store: &Store,
    chunk: WalChunk,
    monitor: &ReplicationMonitor,
) -> Result<(), ReplicaError> {
    if let Some(snapshot) = &chunk.snapshot {
        // install_snapshot no-ops when the local clock already covers
        // it, so an overlapping backfill is harmless.
        store
            .install_snapshot(snapshot)
            .map_err(ReplicaError::Store)?;
    }
    apply_frames(store, chunk.start_clock, &chunk.frames)?;
    monitor
        .primary_epoch
        .store(chunk.primary_epoch, Ordering::Relaxed);
    Ok(())
}

/// Replays sealed frames (clock-contiguous from `start_clock`) into the
/// store, skipping any overlap below the local clock.
fn apply_frames(store: &Store, start_clock: u64, frames: &[u8]) -> Result<(), ReplicaError> {
    let mut clock = start_clock;
    let mut pos = 0;
    while pos < frames.len() {
        match codec::decode_frame(&frames[pos..]) {
            FrameDecode::Complete { record, consumed } => {
                let local = store.version();
                if clock > local {
                    return Err(ReplicaError::Store(StoreError::ReplicationGap {
                        expected: local,
                        found: clock,
                    }));
                }
                if clock == local {
                    store
                        .apply_replicated(record)
                        .map_err(ReplicaError::Store)?;
                }
                clock += 1;
                pos += consumed;
            }
            // The outer wire frame's checksum already passed, so damage
            // inside the chunk means a buggy or hostile feeder — drop
            // the connection rather than guessing.
            FrameDecode::Torn => {
                return Err(ReplicaError::protocol("chunk ends mid-frame"));
            }
            FrameDecode::Corrupt(e) => {
                return Err(ReplicaError::Protocol(format!(
                    "corrupt frame in chunk: {e}"
                )));
            }
        }
    }
    Ok(())
}

/// `true` when `dir` already holds a replica (or any durable) store —
/// i.e. whether [`Replica::start`] would warm-start from it.
pub fn dir_has_store(dir: impl AsRef<Path>) -> bool {
    matches!(plus_store::wal::list_snapshots(dir.as_ref()), Ok(snaps) if !snaps.is_empty())
}
